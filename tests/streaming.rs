//! Streaming trace pipeline integration: incremental statistics, the
//! record/replay format end-to-end through the simulator and the experiment
//! harness, fused/threaded/materialized fingerprint parity, the repaired
//! quiet-processor exhaustion window, and the fallible `try_run` surface.

use dsm_repro::bench::{Experiment, SystemSet};
use dsm_repro::prelude::*;

/// Satellite requirement: incremental `TraceStats` accumulated while a
/// stream is drained must equal batch `ProgramTrace::stats()` for all seven
/// workloads at `Reduced` scale.
#[test]
fn streamed_stats_equal_batch_stats_for_all_workloads() {
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        let batch = w.generate(&cfg).stats();
        let mut source = stream(by_name(w.name()).expect("catalog name"), cfg);
        for p in cfg.topology.proc_ids() {
            while source.next_event(p).is_some() {}
        }
        assert_eq!(
            source.stats_so_far(),
            batch,
            "incremental stats diverged from batch stats for {}",
            w.name()
        );
    }
}

/// All three source implementations report *identical* statistics
/// mid-stream: exactly the events the consumer has pulled, no matter
/// whether the source is a materialized cursor, a fused generator or a
/// generator thread.
#[test]
fn all_sources_report_identical_stats_mid_stream() {
    let cfg = WorkloadConfig::reduced_for_tests();
    let w = by_name("lu").unwrap();
    let trace = w.generate(&cfg);
    let mut cursor = trace.source();
    let mut fused_src = fused(w.as_ref(), &cfg);
    let mut threaded_src = stream_threaded(by_name("lu").unwrap(), cfg);

    // Pull an uneven prefix: 500 events of proc 0, 100 of proc 5.
    let pulls = [(ProcId(0), 500usize), (ProcId(5), 100)];
    for (p, n) in pulls {
        for _ in 0..n {
            let a = cursor.next_event(p);
            let b = fused_src.next_event(p);
            let c = threaded_src.next_event(p);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }
    let reference = cursor.stats_so_far();
    assert!(reference.accesses > 0);
    assert_eq!(
        fused_src.stats_so_far(),
        reference,
        "fused mid-stream stats"
    );
    assert_eq!(
        threaded_src.stats_so_far(),
        reference,
        "threaded mid-stream stats"
    );
}

/// The tentpole parity requirement: fused, threaded and materialized
/// deliveries of every workload produce bit-identical `SimResult`
/// fingerprints — at reduced scale and at a custom (non-Table-2) scale.
#[test]
fn fused_threaded_and_materialized_runs_are_fingerprint_identical() {
    let sim = ClusterSimulator::new(MachineConfig::PAPER, System::cc_numa().build());
    for cfg in [
        WorkloadConfig::reduced_for_tests(),
        WorkloadConfig::at_scale(Scale::Custom(CustomScale::new(1, 16))),
    ] {
        for w in catalog() {
            let materialized = sim.run(&w.generate(&cfg));
            let fused_run = sim.run_source(&mut fused(w.as_ref(), &cfg));
            let threaded_run =
                sim.run_source(&mut stream_threaded(by_name(w.name()).unwrap(), cfg));
            assert_eq!(
                materialized.fingerprint(),
                fused_run.fingerprint(),
                "{} fused diverged at {:?}",
                w.name(),
                cfg.scale
            );
            assert_eq!(
                materialized.fingerprint(),
                threaded_run.fingerprint(),
                "{} threaded diverged at {:?}",
                w.name(),
                cfg.scale
            );
            assert_eq!(materialized, fused_run);
            assert_eq!(materialized, threaded_run);
        }
    }
}

/// The quiet-processor regression (memsmoke-style, in-process): pulling a
/// ThreadedSource in the adversarial order — the quiet processor first —
/// against a stream with no early end marker must stop at the window cap
/// with `TraceError::StreamWindowExceeded` instead of buffering the whole
/// trace (the pre-repair behaviour, which this test's tight cap stands in
/// for a memory ceiling).
#[test]
fn adversarial_quiet_processor_pull_is_capped() {
    use dsm_repro::trace::StepWriter;

    const CAP: usize = 50_000;
    let topo = Topology::new(2, 1);
    let build = || {
        ThreadedSource::spawn("quiet", topo, move |sink| {
            let mut w = StepWriter::new(topo);
            for i in 0..2_000_000u64 {
                w.read(sink, ProcId(0), GlobalAddr((i % 100_000) * 64));
            }
            // No per-processor end markers until the very end: the
            // adversarial shape.
        })
        .with_window_cap(CAP)
    };

    // Direct pull of the quiet processor.
    let mut src = build();
    assert!(src.next_event(ProcId(1)).is_none());
    assert!(
        src.buffered_events() <= CAP,
        "demux parked {} events past the cap",
        src.buffered_events()
    );
    assert!(matches!(
        src.take_error(),
        Some(TraceError::StreamWindowExceeded { cap: CAP, .. })
    ));

    // And through the simulator: the error surfaces as a `TraceError`
    // value from `try_run_source`, not a panic or a silent wrong result.
    let sim = ClusterSimulator::new(
        MachineConfig::PAPER.with_topology(topo),
        System::cc_numa().build(),
    );
    let mut src = build();
    match sim.try_run_source(&mut src) {
        Err(TraceError::StreamWindowExceeded { cap, buffered }) => {
            assert_eq!(cap, CAP);
            assert!(buffered >= CAP);
        }
        other => panic!("expected StreamWindowExceeded from the simulator, got {other:?}"),
    }
}

/// Well-formed generators never trip the cap: end markers ride the stream,
/// so even fully draining one processor before touching the others stays
/// inside a phase-sized window.
#[test]
fn workload_streams_survive_adversarial_pull_orders_within_the_window() {
    let cfg = WorkloadConfig::reduced_for_tests();
    for w in catalog() {
        let mut src = fused(w.as_ref(), &cfg);
        // Drain processors in reverse order, each to exhaustion.
        let mut procs: Vec<ProcId> = cfg.topology.proc_ids().collect();
        procs.reverse();
        for p in procs {
            while src.next_event(p).is_some() {}
        }
        assert!(
            src.take_error().is_none(),
            "{}: reverse-order drain tripped the window cap",
            w.name()
        );
        assert_eq!(src.buffered_events(), 0, "{}: events left behind", w.name());
    }
}

/// Record a workload to a trace file, replay it through the simulator and
/// the experiment harness: every result must be bit-identical to the
/// generated workload's.
#[test]
fn recorded_traces_replay_bit_identically() {
    let cfg = WorkloadConfig::reduced();
    let path = std::env::temp_dir().join("dsm-repro-streaming-ocean.trc");
    let mut source = stream(by_name("ocean").unwrap(), cfg);
    dsm_repro::trace::record_to_file(&mut source, &path).expect("record ocean");
    // Recording drained the stream completely: stats match the batch path.
    assert_eq!(
        source.stats_so_far(),
        by_name("ocean").unwrap().generate(&cfg).stats()
    );

    let sim = ClusterSimulator::new(MachineConfig::PAPER, System::cc_numa().build());
    let direct = sim.run(&by_name("ocean").unwrap().generate(&cfg));
    let mut replay = ReplaySource::open(&path).expect("open recorded trace");
    assert_eq!(replay.name(), "ocean");
    let replayed = sim.run_source(&mut replay);
    assert_eq!(direct, replayed, "replayed SimResult diverged");

    // And through the experiment harness (fresh stream per job).
    let set = || SystemSet {
        experiment: "replay",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![System::cc_numa().build()],
    };
    let from_file = Experiment::new(MachineConfig::PAPER)
        .systems(set())
        .replay(&path)
        .run();
    let from_generator = Experiment::new(MachineConfig::PAPER)
        .systems(set())
        .workloads(["ocean"])
        .run();
    assert_eq!(
        from_file.per_workload[0].baseline,
        from_generator.per_workload[0].baseline
    );
    assert_eq!(
        from_file.per_workload[0].results,
        from_generator.per_workload[0].results
    );
    std::fs::remove_file(&path).ok();
}

/// `try_run` reports malformed traces as values; `run` stays the panicking
/// shim over it.
#[test]
fn try_run_surfaces_trace_errors_as_values() {
    let machine = MachineConfig::PAPER;
    let sim = ClusterSimulator::new(machine, System::cc_numa().build());

    let wrong_procs = TraceBuilder::new("tiny", Topology::new(1, 1)).build();
    assert!(matches!(
        sim.try_run(&wrong_procs),
        Err(TraceError::ProcCountMismatch { .. })
    ));

    let mut b = TraceBuilder::new("unlock-only", machine.topology);
    b.unlock(ProcId(5), 1);
    let err = sim.try_run(&b.build()).unwrap_err();
    assert!(matches!(err, TraceError::UnbalancedLock { .. }));
    // The error is a real std error with a human-readable message.
    let _: &dyn std::error::Error = &err;
    assert!(err.to_string().contains("lock"));

    let good = by_name("ocean")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    assert_eq!(sim.try_run(&good).expect("valid trace"), sim.run(&good));
}
