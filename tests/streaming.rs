//! Streaming trace pipeline integration: incremental statistics, the
//! record/replay format end-to-end through the simulator and the experiment
//! harness, and the fallible `try_run` surface.

use dsm_repro::bench::{Experiment, SystemSet};
use dsm_repro::prelude::*;

/// Satellite requirement: incremental `TraceStats` accumulated while a
/// stream is drained must equal batch `ProgramTrace::stats()` for all seven
/// workloads at `Reduced` scale.
#[test]
fn streamed_stats_equal_batch_stats_for_all_workloads() {
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        let batch = w.generate(&cfg).stats();
        let mut source = stream(by_name(w.name()).expect("catalog name"), cfg);
        for p in cfg.topology.proc_ids() {
            while source.next_event(p).is_some() {}
        }
        assert_eq!(
            source.stats_so_far(),
            batch,
            "incremental stats diverged from batch stats for {}",
            w.name()
        );
    }
}

/// Record a workload to a trace file, replay it through the simulator and
/// the experiment harness: every result must be bit-identical to the
/// generated workload's.
#[test]
fn recorded_traces_replay_bit_identically() {
    let cfg = WorkloadConfig::reduced();
    let path = std::env::temp_dir().join("dsm-repro-streaming-ocean.trc");
    let mut source = stream(by_name("ocean").unwrap(), cfg);
    dsm_repro::trace::record_to_file(&mut source, &path).expect("record ocean");
    // Recording drained the stream completely: stats match the batch path.
    assert_eq!(
        source.stats_so_far(),
        by_name("ocean").unwrap().generate(&cfg).stats()
    );

    let sim = ClusterSimulator::new(MachineConfig::PAPER, System::cc_numa().build());
    let direct = sim.run(&by_name("ocean").unwrap().generate(&cfg));
    let mut replay = ReplaySource::open(&path).expect("open recorded trace");
    assert_eq!(replay.name(), "ocean");
    let replayed = sim.run_source(&mut replay);
    assert_eq!(direct, replayed, "replayed SimResult diverged");

    // And through the experiment harness (fresh stream per job).
    let set = || SystemSet {
        experiment: "replay",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![System::cc_numa().build()],
    };
    let from_file = Experiment::new(MachineConfig::PAPER)
        .systems(set())
        .replay(&path)
        .run();
    let from_generator = Experiment::new(MachineConfig::PAPER)
        .systems(set())
        .workloads(["ocean"])
        .run();
    assert_eq!(
        from_file.per_workload[0].baseline,
        from_generator.per_workload[0].baseline
    );
    assert_eq!(
        from_file.per_workload[0].results,
        from_generator.per_workload[0].results
    );
    std::fs::remove_file(&path).ok();
}

/// `try_run` reports malformed traces as values; `run` stays the panicking
/// shim over it.
#[test]
fn try_run_surfaces_trace_errors_as_values() {
    let machine = MachineConfig::PAPER;
    let sim = ClusterSimulator::new(machine, System::cc_numa().build());

    let wrong_procs = TraceBuilder::new("tiny", Topology::new(1, 1)).build();
    assert!(matches!(
        sim.try_run(&wrong_procs),
        Err(TraceError::ProcCountMismatch { .. })
    ));

    let mut b = TraceBuilder::new("unlock-only", machine.topology);
    b.unlock(ProcId(5), 1);
    let err = sim.try_run(&b.build()).unwrap_err();
    assert!(matches!(err, TraceError::UnbalancedLock { .. }));
    // The error is a real std error with a human-readable message.
    let _: &dyn std::error::Error = &err;
    assert!(err.to_string().contains("lock"));

    let good = by_name("ocean")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    assert_eq!(sim.try_run(&good).expect("valid trace"), sim.run(&good));
}
