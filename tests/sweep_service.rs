//! End-to-end checks of the sweep service through the facade crate.
//!
//! Two properties the service must not lose:
//!
//! * **Persistence** — a sweep resubmitted to a *restarted* server backed by
//!   the same cache file completes with zero re-simulated points, and the
//!   warm pass is at least 10x faster than the cold one on a 16-point grid.
//! * **Fidelity** — results served through the protocol (fresh *and*
//!   cached) are bit-identical to the committed golden fingerprints in
//!   `tests/golden/api_parity.txt`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsm_repro::service::json::{parse, Value};
use dsm_repro::service::{ResultCache, SweepService};

const GOLDEN: &str = include_str!("golden/api_parity.txt");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsm-service-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Submit one request line and return the parsed response objects.
fn submit(service: &SweepService, line: &str) -> Vec<Value> {
    let mut lines: Vec<String> = Vec::new();
    let mut emit = |l: String| lines.push(l);
    service.handle_line(line, &mut emit);
    lines
        .iter()
        .map(|l| parse(l).expect("response is valid JSON"))
        .collect()
}

/// The streamed `baseline`/`point` events, keyed by every axis that
/// identifies a job, mapped to the fingerprint hex.
fn fingerprints(responses: &[Value]) -> BTreeMap<String, String> {
    responses
        .iter()
        .filter(|v| matches!(v.get_str("kind"), Some("baseline") | Some("point")))
        .map(|v| {
            let key = format!(
                "{}/{}/{}/{}/{}/{}",
                v.get_str("kind").unwrap(),
                v.get_str("workload").unwrap(),
                v.get_str("system").unwrap(),
                v.get_u64("nodes").unwrap(),
                v.get_u64("page_bytes").unwrap(),
                v.get_u64("block_bytes").unwrap(),
            );
            (key, v.get_str("fingerprint").unwrap().to_string())
        })
        .collect()
}

fn terminal<'a>(responses: &'a [Value], kind: &str) -> &'a Value {
    let last = responses.last().expect("at least one response");
    assert_eq!(last.get_str("kind"), Some(kind), "terminal response kind");
    last
}

/// A 16-point grid: 2 systems x 2 node counts x 2 page sizes x 2 block
/// sizes (plus 8 per-geometry baselines), all at a 1/32 problem scale.
const GRID: &str = concat!(
    r#"{"kind":"sweep","id":"grid","name":"restart grid","workloads":["ocean"],"#,
    r#""systems":["cc-numa","migrep"],"scale":"x1/32","nodes":[2,4],"#,
    r#""procs_per_node":[2],"page_bytes":[2048,4096],"block_bytes":[64,128]}"#
);

#[test]
fn restarted_server_replays_a_16_point_grid_from_the_cache_file() {
    let dir = temp_dir("restart");
    let cache_path = dir.join("results.cache");

    // Cold server: every job simulates, every result lands in the file.
    let service = SweepService::new(ResultCache::open(&cache_path).unwrap(), 0);
    let started = Instant::now();
    let cold = submit(&service, GRID);
    let cold_elapsed = started.elapsed();
    let done = terminal(&cold, "sweep-done");
    assert_eq!(done.get_u64("points"), Some(16));
    assert_eq!(done.get_u64("baselines"), Some(8));
    assert_eq!(done.get_u64("cached"), Some(0));
    assert_eq!(done.get_u64("simulated"), Some(24));
    drop(service);

    // Restarted server, same cache file: zero re-simulated jobs.
    let service = SweepService::new(ResultCache::open(&cache_path).unwrap(), 0);
    let started = Instant::now();
    let warm = submit(&service, GRID);
    let warm_elapsed = started.elapsed();
    let done = terminal(&warm, "sweep-done");
    assert_eq!(
        done.get_u64("cached"),
        Some(24),
        "everything from the cache"
    );
    assert_eq!(done.get_u64("simulated"), Some(0), "nothing re-simulated");

    // Cached replay is bit-identical to the fresh run.
    assert_eq!(fingerprints(&cold), fingerprints(&warm));

    // And it is fast: at least 10x faster than simulating the grid.
    assert!(
        warm_elapsed * 10 <= cold_elapsed.max(Duration::from_millis(10)),
        "warm pass ({warm_elapsed:?}) should be >=10x faster than cold ({cold_elapsed:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden fingerprints keyed `workload/system` (system in the golden file's
/// own naming: perfect, cc-numa, migrep, r-numa, hybrid).
fn parse_golden() -> BTreeMap<String, String> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let key = parts.next().unwrap().to_string();
            (key, parts.next().unwrap().to_string())
        })
        .collect()
}

#[test]
fn service_results_match_the_committed_golden_fingerprints() {
    use dsm_repro::service::catalog::{parse_scale, system_by_name};

    let golden = parse_golden();
    // The golden matrix was generated on the paper machine at the reduced
    // workload scale; the catalog names map onto the golden file's keys.
    let catalog_to_golden = [
        ("perfect-cc-numa", "perfect"),
        ("cc-numa", "cc-numa"),
        ("migrep", "migrep"),
        ("r-numa-paper-cache", "r-numa"),
    ];
    let scale = parse_scale("reduced").unwrap();
    let display_to_golden: BTreeMap<String, &str> = catalog_to_golden
        .iter()
        .map(|(catalog, golden)| {
            let cfg = system_by_name(catalog, scale).unwrap();
            (cfg.name.clone(), *golden)
        })
        .collect();

    let request = concat!(
        r#"{"kind":"sweep","id":"golden","workloads":["lu","ocean"],"#,
        r#""systems":["cc-numa","migrep","r-numa-paper-cache"],"#,
        r#""baseline":"perfect-cc-numa","scale":"reduced"}"#
    );
    let service = SweepService::in_memory();
    let fresh = submit(&service, request);
    let done = terminal(&fresh, "sweep-done");
    assert_eq!(done.get_u64("points"), Some(6));
    assert_eq!(done.get_u64("baselines"), Some(2));

    let check = |responses: &[Value], pass: &str| {
        let mut checked = 0;
        for event in responses {
            if !matches!(event.get_str("kind"), Some("baseline") | Some("point")) {
                continue;
            }
            let workload = event.get_str("workload").unwrap();
            let system = event.get_str("system").unwrap();
            let golden_system = display_to_golden
                .get(system)
                .unwrap_or_else(|| panic!("no golden mapping for system `{system}`"));
            let want = golden
                .get(&format!("{workload}/{golden_system}"))
                .unwrap_or_else(|| panic!("no golden entry for {workload}/{golden_system}"));
            assert_eq!(
                event.get_str("fingerprint").unwrap(),
                want,
                "{pass}: {workload}/{golden_system} must match the golden fingerprint"
            );
            checked += 1;
        }
        assert_eq!(checked, 8, "{pass}: 2 baselines + 6 points checked");
    };
    check(&fresh, "fresh");

    // Resubmission: all 8 jobs come from the cache, still golden-identical.
    let cached = submit(&service, request);
    let done = terminal(&cached, "sweep-done");
    assert_eq!(done.get_u64("simulated"), Some(0));
    assert_eq!(done.get_u64("cached"), Some(8));
    check(&cached, "cached");
}
