//! Property-style tests over the core data structures and the simulator's
//! invariants.
//!
//! The original proptest version of this file is preserved in spirit: each
//! test runs the same invariant over 64 pseudo-random cases.  Cases are
//! generated with the repository's own deterministic `SplitMix64` (the
//! `proptest` crate is unavailable in the offline build environment), so
//! failures reproduce exactly from the fixed seed.

use dsm_repro::prelude::*;
use dsm_repro::protocol::{
    BlockCache, BlockCacheConfig, BlockState, Directory, DirectoryState, PageCache, PageCacheConfig,
};
use dsm_repro::sim::SplitMix64;
use mem_trace::{
    BlockId, BlockIdx, BlockRef, GlobalAddr, NodeId, PageId, PageIdx, PageRef, BLOCK_SIZE,
    PAGE_SIZE,
};
use smp_node::{CacheConfig, DataCache, LineState};

const CASES: u64 = 64;

/// Identity interning for the protocol-structure tests: block id n ↔ index
/// n (a valid assignment when page ids are dense from zero, as here).
fn bref(n: u64) -> BlockRef {
    BlockRef::new(BlockId(n), BlockIdx(n as u32))
}

fn pref(n: u64) -> PageRef {
    PageRef::new(PageId(n), PageIdx(n as u32))
}

/// A fresh generator per (test, case) pair so tests stay order-independent.
fn rng_for(test: &str, case: u64) -> SplitMix64 {
    let tag: u64 = test.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    SplitMix64::new(tag ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// `len` values uniform below `bound`, with `len` itself in `1..=max_len`.
fn random_vec(rng: &mut SplitMix64, max_len: u64, bound: u64) -> Vec<u64> {
    let len = 1 + rng.next_below(max_len);
    (0..len).map(|_| rng.next_below(bound)).collect()
}

/// Address decomposition round-trips for arbitrary addresses.
#[test]
fn address_decomposition_is_consistent() {
    for case in 0..CASES {
        let mut rng = rng_for("addr", case);
        let raw = rng.next_below(u64::MAX / 2);
        let addr = GlobalAddr(raw);
        let block = addr.block();
        let page = addr.page();
        assert_eq!(block.page(), page);
        assert!(block.base_addr().0 <= raw);
        assert!(raw - block.base_addr().0 < BLOCK_SIZE);
        assert!(page.base_addr().0 <= raw);
        assert!(raw - page.base_addr().0 < PAGE_SIZE);
        assert!(page.contains(block));
    }
}

/// A direct-mapped cache never holds two blocks in the same set and a fill
/// always makes the block resident.
#[test]
fn data_cache_fill_makes_resident() {
    for case in 0..CASES {
        let mut rng = rng_for("data-cache", case);
        let blocks = random_vec(&mut rng, 200, 4096);
        let mut cache = DataCache::new(CacheConfig {
            size_bytes: 4 * 1024,
            block_bytes: 64,
        });
        for &b in &blocks {
            let block = bref(b);
            cache.fill(block, LineState::Shared);
            assert!(cache.contains(block));
        }
        // Residency never exceeds the number of lines.
        assert!(cache.resident_blocks().count() <= cache.config().lines());
    }
}

/// The block cache's resident count never exceeds its capacity and flushing
/// a page removes exactly that page's blocks.
#[test]
fn block_cache_respects_capacity() {
    for case in 0..CASES {
        let mut rng = rng_for("block-cache", case);
        let blocks = random_vec(&mut rng, 300, 10_000);
        let cfg = BlockCacheConfig::Finite {
            size_bytes: 16 * 1024,
        };
        let mut bc = BlockCache::new(cfg);
        let lines = cfg.lines().unwrap();
        for &b in &blocks {
            bc.fill(bref(b), BlockState::Clean);
            assert!(bc.resident() <= lines);
        }
        let page = pref(3);
        let flushed = bc.flush_page(page);
        for (block, _) in &flushed {
            assert_eq!(block.id.page(), page.id);
            assert!(!bc.contains(*block));
        }
    }
}

/// The page cache never exceeds its frame budget, whatever the allocation
/// sequence.
#[test]
fn page_cache_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = rng_for("page-cache", case);
        let pages = random_vec(&mut rng, 300, 500);
        let frames = 8usize;
        let mut pc = PageCache::new(PageCacheConfig::Finite {
            size_bytes: frames as u64 * PAGE_SIZE,
        });
        for &p in &pages {
            pc.allocate(pref(p));
            assert!(pc.allocated_frames() <= frames);
        }
    }
}

/// Directory invariant: after any sequence of reads/writes/evictions a block
/// in the Modified state has exactly one sharer, and Uncached blocks have
/// none.
#[test]
fn directory_sharer_counts_match_state() {
    for case in 0..CASES {
        let mut rng = rng_for("directory", case);
        let ops = 1 + rng.next_below(300);
        let mut dir = Directory::new();
        for _ in 0..ops {
            let op = rng.next_below(3);
            let block = BlockIdx(rng.next_below(32) as u32);
            let node = NodeId(rng.next_below(8) as u16);
            match op {
                0 => {
                    dir.handle_read(block, node);
                }
                1 => {
                    dir.handle_write(block, node);
                }
                _ => {
                    dir.handle_eviction(block, node);
                }
            }
            let entry = dir.entry(block);
            match entry.state {
                DirectoryState::Uncached => assert_eq!(entry.sharer_count(), 0),
                DirectoryState::Modified => assert_eq!(entry.sharer_count(), 1),
                DirectoryState::Shared => assert!(entry.sharer_count() >= 1),
            }
        }
    }
}

/// Simulator invariant: for any small random trace, execution time is
/// positive and deterministic across runs.
#[test]
fn simulator_is_deterministic_on_random_traces() {
    for case in 0..CASES {
        let mut rng = rng_for("simulator", case);
        let machine = MachineConfig::tiny();
        let n_accesses = 1 + rng.next_below(120);
        let mut builder = TraceBuilder::new("proptest", machine.topology);
        for _ in 0..n_accesses {
            let proc = ProcId(rng.next_below(machine.topology.total_procs() as u64) as u16);
            let addr = GlobalAddr(rng.next_below(64) * BLOCK_SIZE);
            if rng.next_below(2) == 1 {
                builder.write(proc, addr);
            } else {
                builder.read(proc, addr);
            }
        }
        builder.barrier_all();
        let trace = builder.build();
        assert!(trace.validate().is_ok());

        let sim = ClusterSimulator::new(machine, System::cc_numa().build());
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.total_remote_misses(), b.total_remote_misses());
        assert!(a.execution_time.raw() > 0);
        assert_eq!(a.accesses, n_accesses);
    }
}

/// Workload generation is deterministic in the seed and always produces a
/// valid trace, for every workload and any seed.
#[test]
fn workload_generation_is_seed_deterministic() {
    for case in 0..CASES {
        let mut rng = rng_for("workloads", case);
        let seed = rng.next_u64();
        let workload = &catalog()[rng.next_below(7) as usize];
        // Use a tiny topology to keep the cases fast.
        let cfg = WorkloadConfig::reduced()
            .with_seed(seed)
            .with_topology(Topology::new(2, 2));
        let a = workload.generate(&cfg);
        let b = workload.generate(&cfg);
        assert!(a.validate().is_ok());
        assert_eq!(a.stats(), b.stats());
    }
}

/// Interning round-trips: every distinct page gets a dense index in
/// first-touch order, `PageId -> PageIdx -> PageId` is the identity, and an
/// interner replaying the same reference stream (the record/replay
/// scenario) assigns bit-identical indices.
#[test]
fn page_interning_round_trips_and_replays_stably() {
    use dsm_repro::trace::PageInterner;
    for case in 0..CASES {
        let mut rng = rng_for("interner", case);
        // Sparse, repetitive page-id stream, like a real trace's.
        let ids: Vec<u64> = random_vec(&mut rng, 400, 1 << 40);
        let mut record = PageInterner::new();
        let mut firsts: Vec<u64> = Vec::new();
        for &id in &ids {
            let r = record.intern_ref(PageId(id));
            assert_eq!(r.id, PageId(id));
            if !firsts.contains(&id) {
                // First touch: the next dense index.
                assert_eq!(r.idx.index(), firsts.len());
                firsts.push(id);
            }
            // Round trips, both directions.
            assert_eq!(record.page(r.idx), r.id);
            assert_eq!(record.get(r.id), Some(r.idx));
            // Block indices stay inside the page's 64-slot band.
            let block = r.block_at(rng.next_below(64));
            assert_eq!(block.idx.page(), r.idx);
            assert_eq!(record.block_id(block.idx), block.id);
        }
        assert_eq!(record.len(), firsts.len());

        // Replay: a fresh interner fed the same stream assigns the same
        // indices (what makes interning invisible across record/replay).
        let mut replay = PageInterner::new();
        for &id in &ids {
            assert_eq!(replay.intern(PageId(id)), record.get(PageId(id)).unwrap());
        }
    }
}

/// `SharerSet` on members below 64 is bit-for-bit the `u64` mask it
/// replaced: same membership, same count, same ascending iteration, same
/// first-member (`trailing_zeros`) answer, after any operation sequence.
#[test]
fn sharer_set_is_u64_mask_equivalent_below_64() {
    use mem_trace::SharerSet;
    for case in 0..CASES {
        let mut rng = rng_for("sharer-small", case);
        let ops = 1 + rng.next_below(200);
        let mut set = SharerSet::new();
        let mut mask: u64 = 0;
        for _ in 0..ops {
            let i = rng.next_below(64) as usize;
            match rng.next_below(3) {
                0 => {
                    let fresh = set.insert(i);
                    assert_eq!(fresh, mask & (1 << i) == 0);
                    mask |= 1 << i;
                }
                1 => {
                    let had = set.remove(i);
                    assert_eq!(had, mask & (1 << i) != 0);
                    mask &= !(1 << i);
                }
                _ => assert_eq!(set.contains(i), mask & (1 << i) != 0),
            }
            assert_eq!(set.count(), mask.count_ones());
            assert_eq!(set.is_empty(), mask == 0);
            assert_eq!(
                set.first(),
                (mask != 0).then(|| mask.trailing_zeros() as usize)
            );
            let members: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> = (0..64).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(members, expected);
        }
    }
}

/// `SharerSet` beyond 64 members' worth of index space (random 65–512-node
/// sets): insert/remove/count/contains/iterate agree with a reference
/// `BTreeSet`, across promotions.
#[test]
fn sharer_set_tracks_random_large_node_sets() {
    use mem_trace::SharerSet;
    use std::collections::BTreeSet;
    for case in 0..CASES {
        let mut rng = rng_for("sharer-large", case);
        let universe = 65 + rng.next_below(448); // 65..=512 node indices
        let ops = 1 + rng.next_below(300);
        let mut set = SharerSet::new();
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..ops {
            let i = rng.next_below(universe) as usize;
            match rng.next_below(3) {
                0 => assert_eq!(set.insert(i), reference.insert(i)),
                1 => assert_eq!(set.remove(i), reference.remove(&i)),
                _ => assert_eq!(set.contains(i), reference.contains(&i)),
            }
            assert_eq!(set.count() as usize, reference.len());
            assert_eq!(set.first(), reference.first().copied());
        }
        let members: Vec<usize> = set.iter().collect();
        let expected: Vec<usize> = reference.into_iter().collect();
        assert_eq!(members, expected, "universe {universe}");
        assert_eq!(
            set.nodes().len(),
            members.len(),
            "NodeId view matches membership"
        );
    }
}

/// The tiered representation's promotion edges: operation sequences
/// concentrated exactly where `SharerSet` switches tiers (index 64, the
/// inline-u64 → inline-u128 edge; index 128, the inline-u128 →
/// hierarchical edge) mirror a `BTreeSet` in every observable, up to the
/// full 512-node cluster the sweep grids commit to.  Promotion order is
/// randomized by construction: a set may jump straight from one word to
/// the hierarchical tier or climb through both.
#[test]
fn sharer_set_matches_btreeset_at_tier_boundaries() {
    use mem_trace::SharerSet;
    use std::collections::BTreeSet;
    const EDGES: [usize; 10] = [0, 1, 62, 63, 64, 65, 126, 127, 128, 129];
    for case in 0..CASES {
        let mut rng = rng_for("sharer-boundary", case);
        let ops = 1 + rng.next_below(300);
        let mut set = SharerSet::new();
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..ops {
            // Half the indices sit exactly on a promotion edge, the rest
            // anywhere in a 512-node cluster.
            let i = if rng.next_below(2) == 0 {
                EDGES[rng.next_below(EDGES.len() as u64) as usize]
            } else {
                rng.next_below(512) as usize
            };
            match rng.next_below(4) {
                // Insert-biased so sets actually cross the edges.
                0 | 3 => assert_eq!(set.insert(i), reference.insert(i)),
                1 => assert_eq!(set.remove(i), reference.remove(&i)),
                _ => assert_eq!(set.contains(i), reference.contains(&i)),
            }
            assert_eq!(set.count() as usize, reference.len());
            assert_eq!(set.is_empty(), reference.is_empty());
            assert_eq!(set.first(), reference.first().copied());
        }
        let members: Vec<usize> = set.iter().collect();
        let expected: Vec<usize> = reference.iter().copied().collect();
        assert_eq!(members, expected, "case {case}");
        // Logical equality is representation-blind: a set rebuilt from the
        // final membership (never promoted past what it needs) compares
        // equal to the one that wandered across tiers to get here.
        let mut rebuilt = SharerSet::new();
        for &i in &expected {
            rebuilt.insert(i);
        }
        assert_eq!(set, rebuilt, "case {case}");
    }
}

/// End-to-end determinism past the old 64-node cap: a 96-node cluster
/// running CC-NUMA+MigRep (directory sharer sets *and* replica sets reach
/// node indices above 64) produces bit-identical `SimResult`s across runs.
#[test]
fn simulation_beyond_64_nodes_is_run_twice_bit_identical() {
    let nodes: u16 = 96;
    let machine = MachineConfig::PAPER.with_topology(Topology::new(nodes, 1));
    let mut b = TraceBuilder::new("wide-cluster", machine.topology);
    // Node 0 writes two pages; every node then reads them repeatedly
    // (sharer sets span all 96 nodes and replication triggers on high
    // node indices), then a late writer forces the switch back.
    b.write(ProcId(0), GlobalAddr(0));
    b.write(ProcId(0), GlobalAddr(PAGE_SIZE));
    b.barrier_all();
    for round in 0..12u64 {
        for p in machine.topology.proc_ids().skip(1) {
            // A fresh block of the page each round, so every read is a miss
            // that reaches the home node's policy counters.
            b.read(p, GlobalAddr(round % 2 * PAGE_SIZE + round * BLOCK_SIZE));
        }
    }
    b.barrier_all();
    b.write(ProcId(95), GlobalAddr(0));
    b.barrier_all();
    let trace = b.build();

    let sys = || {
        System::cc_numa()
            .with(MigRep::both())
            .with(Thresholds {
                migrep_threshold: 4,
                migrep_reset_interval: 1_000,
                rnuma_threshold: 8,
                rnuma_relocation_delay: 0,
            })
            .build()
    };
    let a = ClusterSimulator::new(machine, sys()).run(&trace);
    let c = ClusterSimulator::new(machine, sys()).run(&trace);
    assert_eq!(a, c, ">64-node run must be bit-identical across runs");
    assert_eq!(a.per_node.len(), nodes as usize);
    let replications: u64 = a.per_node.iter().map(|n| n.replications).sum();
    assert!(replications > 0, "replica sets never engaged");
    assert!(
        a.per_node[90].replications > 0 || a.per_node[90].remote_misses > 0,
        "nodes above index 64 never participated"
    );
    let switches: u64 = a.per_node.iter().map(|n| n.switches_to_rw).sum();
    assert!(switches > 0, "the late write never tore down the replicas");
}

/// Scheduler invariant: whatever the push order, pops come out sorted by
/// `(clock, proc id)` — equal clocks break toward the smaller proc id.
#[test]
fn scheduler_pops_sorted_by_clock_then_proc_id() {
    use dsm_repro::sim::{Cycles, ProcScheduler};
    for case in 0..CASES {
        let mut rng = rng_for("scheduler", case);
        let n = 1 + rng.next_below(100);
        // Few distinct clock values, so ties are common.
        let entries: Vec<(u64, u16)> = (0..n)
            .map(|_| (rng.next_below(8), rng.next_below(32) as u16))
            .collect();
        let mut sched = ProcScheduler::new();
        for &(t, p) in &entries {
            sched.push(Cycles::new(t), p);
        }
        let popped: Vec<(u64, u16)> = std::iter::from_fn(|| sched.pop())
            .map(|(t, p)| (t.raw(), p))
            .collect();
        let mut expected = entries.clone();
        expected.sort();
        assert_eq!(popped, expected, "case {case}");
    }
}
