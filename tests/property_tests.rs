//! Property-based tests (proptest) over the core data structures and the
//! simulator's invariants.

use dsm_repro::prelude::*;
use dsm_repro::protocol::{BlockCache, BlockCacheConfig, BlockState, Directory, PageCache, PageCacheConfig};
use mem_trace::{BlockId, GlobalAddr, NodeId, PageId, BLOCK_SIZE, PAGE_SIZE};
use proptest::prelude::*;
use smp_node::{CacheConfig, DataCache, LineState};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address decomposition round-trips for arbitrary addresses.
    #[test]
    fn address_decomposition_is_consistent(raw in 0u64..u64::MAX / 2) {
        let addr = GlobalAddr(raw);
        let block = addr.block();
        let page = addr.page();
        prop_assert_eq!(block.page(), page);
        prop_assert!(block.base_addr().0 <= raw);
        prop_assert!(raw - block.base_addr().0 < BLOCK_SIZE);
        prop_assert!(page.base_addr().0 <= raw);
        prop_assert!(raw - page.base_addr().0 < PAGE_SIZE);
        prop_assert!(page.contains(block));
    }

    /// A direct-mapped cache never holds two blocks in the same set and a
    /// fill always makes the block resident.
    #[test]
    fn data_cache_fill_makes_resident(blocks in prop::collection::vec(0u64..4096, 1..200)) {
        let mut cache = DataCache::new(CacheConfig { size_bytes: 4 * 1024, block_bytes: 64 });
        for &b in &blocks {
            let block = BlockId(b);
            cache.fill(block, LineState::Shared);
            prop_assert!(cache.contains(block));
        }
        // Residency never exceeds the number of lines.
        prop_assert!(cache.resident_blocks().count() <= cache.config().lines());
    }

    /// The block cache's resident count never exceeds its capacity and
    /// flushing a page removes exactly that page's blocks.
    #[test]
    fn block_cache_respects_capacity(blocks in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut bc = BlockCache::new(BlockCacheConfig::Finite { size_bytes: 16 * 1024 });
        let lines = BlockCacheConfig::Finite { size_bytes: 16 * 1024 }.lines().unwrap();
        for &b in &blocks {
            bc.fill(BlockId(b), BlockState::Clean);
            prop_assert!(bc.resident() <= lines);
        }
        let page = PageId(3);
        let flushed = bc.flush_page(page);
        for (block, _) in &flushed {
            prop_assert_eq!(block.page(), page);
            prop_assert!(!bc.contains(*block));
        }
    }

    /// The page cache never exceeds its frame budget, whatever the
    /// allocation sequence.
    #[test]
    fn page_cache_never_exceeds_capacity(pages in prop::collection::vec(0u64..500, 1..300)) {
        let frames = 8usize;
        let mut pc = PageCache::new(PageCacheConfig::Finite {
            size_bytes: frames as u64 * PAGE_SIZE,
        });
        for &p in &pages {
            pc.allocate(PageId(p));
            prop_assert!(pc.allocated_frames() <= frames);
        }
    }

    /// Directory invariant: after any sequence of reads/writes/evictions a
    /// block in the Modified state has exactly one sharer, and Uncached
    /// blocks have none.
    #[test]
    fn directory_sharer_counts_match_state(
        ops in prop::collection::vec((0u8..3, 0u64..32, 0u16..8), 1..300)
    ) {
        let mut dir = Directory::new();
        for (op, block, node) in ops {
            let block = BlockId(block);
            let node = NodeId(node);
            match op {
                0 => { dir.handle_read(block, node); }
                1 => { dir.handle_write(block, node); }
                _ => { dir.handle_eviction(block, node); }
            }
            let entry = dir.entry(block);
            match entry.state {
                dsm_repro::protocol::DirectoryState::Uncached =>
                    prop_assert_eq!(entry.sharer_count(), 0),
                dsm_repro::protocol::DirectoryState::Modified =>
                    prop_assert_eq!(entry.sharer_count(), 1),
                dsm_repro::protocol::DirectoryState::Shared =>
                    prop_assert!(entry.sharer_count() >= 1),
            }
        }
    }

    /// Simulator invariant: for any small random trace, execution time is
    /// positive, monotone in the number of accesses, and deterministic.
    #[test]
    fn simulator_is_deterministic_on_random_traces(
        accesses in prop::collection::vec((0u16..8, 0u64..64, prop::bool::ANY), 1..120)
    ) {
        let machine = MachineConfig::tiny();
        let mut builder = TraceBuilder::new("proptest", machine.topology);
        for (proc, line, is_write) in &accesses {
            let proc = ProcId(*proc % machine.topology.total_procs() as u16);
            let addr = GlobalAddr(line * BLOCK_SIZE);
            if *is_write {
                builder.write(proc, addr);
            } else {
                builder.read(proc, addr);
            }
        }
        builder.barrier_all();
        let trace = builder.build();
        prop_assert!(trace.validate().is_ok());

        let sim = ClusterSimulator::new(machine, SystemConfig::cc_numa());
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        prop_assert_eq!(a.execution_time, b.execution_time);
        prop_assert_eq!(a.total_remote_misses(), b.total_remote_misses());
        prop_assert!(a.execution_time.raw() > 0);
        prop_assert_eq!(a.accesses, accesses.len() as u64);
    }

    /// Workload generation is deterministic in the seed and always produces
    /// a valid trace, for every workload and any seed.
    #[test]
    fn workload_generation_is_seed_deterministic(seed in any::<u64>(), idx in 0usize..7) {
        let workload = &catalog()[idx];
        // Use a tiny topology to keep the proptest cases fast.
        let cfg = WorkloadConfig::reduced().with_seed(seed).with_topology(Topology::new(2, 2));
        let a = workload.generate(&cfg);
        let b = workload.generate(&cfg);
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a.stats(), b.stats());
    }
}
