//! Cost-cliff attribution harness (`--features profile-counters`).
//!
//! The sweep engine's >64-node points cost ~10x their 64-node neighbours.
//! Two suspects: `SharerSet`s promoting off their inline tiers (every
//! membership op on a promoted set walks a boxed bitset), and the
//! simulator's O(nodes) gather loop in `migrate_page` (every migration
//! updates every node's view, touched or not).  This run counts both at 8
//! vs 96 nodes and prints per-access rates so the dominant term is a fact,
//! not a guess.  It also prints the batched run loop's burst-occupancy
//! histogram: mass piled into bucket 0 means the schedule forces
//! single-event bursts and batching is not paying.  Findings are recorded
//! in ROADMAP.md.
//!
//! Run deliberately (release, ignored, nocapture):
//! `cargo test --release --features profile-counters --test profile_cliff
//!  -- --ignored --nocapture`
#![cfg(feature = "profile-counters")]

use dsm_repro::core::profile;
use dsm_repro::prelude::*;

fn run_at(nodes: u16) {
    let topo = Topology::new(nodes, 4);
    let machine = MachineConfig::PAPER.with_topology(topo);
    let cfg = WorkloadConfig::reduced().with_topology(topo);
    let system = System::cc_numa()
        .with(MigRep::both())
        .with(Thresholds {
            migrep_threshold: 250,
            migrep_reset_interval: 8_000,
            rnuma_threshold: 8,
            rnuma_relocation_delay: 0,
        })
        .build();
    for w in catalog() {
        profile::reset();
        let start = std::time::Instant::now();
        let result =
            ClusterSimulator::new(machine, system.clone()).run_source(&mut fused(w.as_ref(), &cfg));
        let elapsed = start.elapsed().as_secs_f64();
        let (gathers, gather_visits) = profile::snapshot();
        let tiers = profile::sharers::snapshot();
        let (batches, batch_events, occupancy) = profile::batch_snapshot();
        let per_access = |n: u64| n as f64 / result.accesses as f64;
        let mean_burst = batch_events as f64 / batches.max(1) as f64;
        println!(
            "{nodes:>3} nodes {:<10} {elapsed:>7.3}s {:>11} accesses | \
             gathers {gathers:>9} visits {gather_visits:>12} ({:.4}/access) | \
             sharer promotions {:>7} ops u64 {:>12} u128 {:>12} hier {:>12} \
             ({:.4} hier/access)",
            w.name(),
            result.accesses,
            per_access(gather_visits),
            tiers.promotions,
            tiers.inline64_ops,
            tiers.inline128_ops,
            tiers.hier_ops,
            per_access(tiers.hier_ops),
        );
        println!(
            "          burst occupancy: {batches} bursts, mean {mean_burst:.1} ev/burst, \
             hist(2^i..2^(i+1)) {occupancy:?}"
        );
    }
}

#[test]
#[ignore = "profiling run; release build, prints counter attribution"]
fn attribute_the_cost_cliff_at_96_nodes() {
    run_at(8);
    run_at(96);
}
