//! Determinism regression: every (workload, system) pair, run twice through
//! the production streaming path, must produce bit-identical [`SimResult`]s.
//!
//! The simulator's state is spread across many per-page/per-block tables; a
//! single remaining `HashMap`/`HashSet` iteration on a path that orders
//! network messages or page operations would show up here as run-to-run
//! drift (PR 1 found exactly that in `migrate_page`'s gather set).  After
//! the arena-indexed flattening, every hot-path table is a `Vec` keyed by
//! interned index — iteration order is structural — but this test keeps the
//! property pinned for whatever state the next subsystem adds.

use dsm_repro::prelude::*;
use dsm_repro::protocol::PageCacheConfig;

/// Thresholds small enough for the reduced traces to exercise migration,
/// replication and relocation in every policy system.
fn thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

/// The paper's four systems (the perfect baseline shares CC-NUMA's
/// machinery, so the finite-cache variants cover every code path).
fn systems() -> Vec<SystemConfig> {
    let t = thresholds();
    vec![
        System::cc_numa().build(),
        System::cc_numa().with(MigRep::both()).with(t).build(),
        System::r_numa().with(t).build(),
        System::r_numa()
            .with(PageCaching::config(PageCacheConfig::PAPER_HALF))
            .with(MigRep::both())
            .with(t)
            .named("R-NUMA-1/2+MigRep")
            .build(),
    ]
}

#[test]
fn every_workload_system_pair_is_bit_deterministic_across_runs() {
    let machine = MachineConfig::PAPER;
    let cfg = WorkloadConfig::reduced();
    for workload in catalog() {
        for system in systems() {
            let sim = ClusterSimulator::new(machine, system.clone());
            let run = || {
                let mut source = stream(by_name(workload.name()).expect("catalog name"), cfg);
                sim.run_source(&mut source)
            };
            let a = run();
            let b = run();
            // `SimResult` is `Eq`: execution time, every per-node counter
            // and the full interconnect traffic matrix must all agree.
            assert_eq!(
                a,
                b,
                "SimResult drifted between two runs of {}/{}",
                workload.name(),
                system.name
            );
            // The pair actually exercised its machinery (a trivially empty
            // run would make this test vacuous).
            assert!(a.accesses > 0, "{} simulated no accesses", workload.name());
        }
    }
}
