//! Batched-vs-serial golden parity.
//!
//! The simulator's run loop pulls per-processor *bursts* of events
//! (`TraceSource::next_burst`) and consumes them one at a time against the
//! scheduler's next-wakeup horizon; burst size must therefore be invisible
//! in every result.  This suite forces the degenerate burst size of one —
//! the exact serial pull order the pre-batching loop used — through the
//! full committed 7×5 workload × system matrix and requires bit-identical
//! fingerprints against `tests/golden/api_parity.txt`.  Together with
//! `tests/api_parity.rs` (full-size bursts, same goldens) and
//! `tests/sharded.rs` (the same batched loop at `--workers 4`), this pins
//! batching as a pure supply-side optimization: serial, degenerate and
//! sharded pulls all reproduce the same committed bits.

use std::collections::BTreeMap;

use dsm_repro::prelude::*;
use mem_trace::{ProcId, Topology, TraceError, TraceEvent, TraceSource, TraceStats};

const GOLDEN: &str = include_str!("golden/api_parity.txt");

fn thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

/// The same system matrix `api_parity` pins (keys are the golden format).
fn golden_systems() -> Vec<(&'static str, SystemConfig)> {
    let t = thresholds();
    vec![
        ("perfect", System::perfect_cc_numa().build()),
        ("cc-numa", System::cc_numa().build()),
        (
            "migrep",
            System::cc_numa().with(MigRep::both()).with(t).build(),
        ),
        ("r-numa", System::r_numa().with(t).build()),
        (
            "hybrid",
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .with(t)
                .relocation_delay(2_000)
                .named("R-NUMA-1/2+MigRep")
                .build(),
        ),
    ]
}

fn parse_golden() -> BTreeMap<(String, String), u64> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let key = parts.next().expect("golden line has a key");
            let fp = parts.next().expect("golden line has a fingerprint");
            let (workload, system) = key.split_once('/').expect("key is workload/system");
            (
                (workload.to_string(), system.to_string()),
                u64::from_str_radix(fp.trim_start_matches("0x"), 16).expect("hex fingerprint"),
            )
        })
        .collect()
}

/// Forwards every `TraceSource` call but caps each burst at a single
/// event: the consumer sees exactly the pull sequence of a per-event
/// `next_event` loop, whatever burst size it asks for.
struct OneAtATime<S>(S);

impl<S: TraceSource> TraceSource for OneAtATime<S> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn topology(&self) -> Topology {
        self.0.topology()
    }
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        self.0.next_event(proc)
    }
    fn exhausted(&mut self, proc: ProcId) -> bool {
        self.0.exhausted(proc)
    }
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, _max: usize) -> usize {
        self.0.next_burst(proc, out, 1)
    }
    fn stats_so_far(&self) -> TraceStats {
        self.0.stats_so_far()
    }
    fn buffered_events(&self) -> usize {
        self.0.buffered_events()
    }
    fn take_error(&mut self) -> Option<TraceError> {
        self.0.take_error()
    }
}

/// Degenerate single-event bursts reproduce every committed golden
/// fingerprint: batch size is invisible, bit for bit, across the full
/// 7×5 matrix.
#[test]
fn single_event_bursts_match_committed_golden_fingerprints() {
    let golden = parse_golden();
    assert_eq!(
        golden.len(),
        7 * golden_systems().len(),
        "golden file does not cover the full workload x system matrix"
    );
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        for (key, system) in golden_systems() {
            let mut source = OneAtATime(fused(w.as_ref(), &cfg));
            let result =
                ClusterSimulator::new(MachineConfig::PAPER, system).run_source(&mut source);
            let expected = golden
                .get(&(w.name().to_string(), key.to_string()))
                .unwrap_or_else(|| panic!("no golden fingerprint for {}/{key}", w.name()));
            assert_eq!(
                result.fingerprint(),
                *expected,
                "burst-size-1 run diverged from the committed golden for {}/{key}",
                w.name()
            );
        }
    }
}

/// Burst supply does not leak across a mid-trace poisoning: a capped
/// burst source and a per-event source agree on where a stream ends.
/// (The window-cap position contract lives on `TraceSource::next_burst`;
/// `tests/streaming.rs` exercises the poisoned paths in depth.)
#[test]
fn full_and_degenerate_bursts_agree_on_stream_ends() {
    let cfg = WorkloadConfig::reduced();
    let w = &catalog()[3]; // lu: cheap, multi-proc
    let mut a = fused(w.as_ref(), &cfg);
    let mut b = OneAtATime(fused(w.as_ref(), &cfg));
    let procs = a.topology().total_procs();
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    for round in 0..2_000u64 {
        let p = ProcId((round % procs as u64) as u16);
        buf_a.clear();
        buf_b.clear();
        let na = a.next_burst(p, &mut buf_a, 4);
        // The degenerate source needs up to 4 pulls for the same events.
        while buf_b.len() < na && b.next_burst(p, &mut buf_b, 4) > 0 {}
        let nb = buf_b.len();
        assert_eq!(na, nb, "burst supply diverged at round {round}");
        assert_eq!(buf_a, buf_b, "burst contents diverged at round {round}");
        if na == 0 {
            assert!(a.exhausted(p));
            assert!(b.exhausted(p));
        }
    }
}
