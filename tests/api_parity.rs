//! Old-vs-new API parity: the deprecated `SystemConfig` constructors and the
//! legacy `run_experiment` free function must produce **bit-identical**
//! `SimResult`s to the `System` builder / `Experiment` builder path.
//!
//! Simulation is deterministic (no wall clock, no OS randomness), so
//! equality here is exact: execution time, every per-node counter and the
//! full interconnect traffic matrix.  This is the proof that the
//! `RelocationPolicy` refactor of the simulator core preserved the paper's
//! systems exactly.

// Exercising the deprecated shims is this test's entire purpose.
#![allow(deprecated)]

use dsm_repro::bench::{run_experiment, Experiment, ExperimentScale, SystemSet};
use dsm_repro::prelude::*;
use dsm_repro::protocol::PageCacheConfig;

/// Thresholds small enough for the reduced trace to exercise migration,
/// replication and relocation (so the parity check covers the policy paths,
/// not just the plain cache hierarchy).
fn thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

fn run(system: SystemConfig, trace: &ProgramTrace) -> SimResult {
    ClusterSimulator::new(MachineConfig::PAPER, system).run(trace)
}

/// The old constructor and the new builder expression for each of the
/// paper's systems (plus the perfect baseline and the Section 6.4 hybrid).
fn old_and_new_pairs() -> Vec<(SystemConfig, SystemConfig)> {
    let t = thresholds();
    vec![
        (
            SystemConfig::perfect_cc_numa(),
            System::perfect_cc_numa().build(),
        ),
        (SystemConfig::cc_numa(), System::cc_numa().build()),
        (
            SystemConfig::cc_numa_migrep().with_thresholds(t),
            System::cc_numa().with(MigRep::both()).with(t).build(),
        ),
        (
            SystemConfig::r_numa().with_thresholds(t),
            System::r_numa().with(t).build(),
        ),
        (
            SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 2_000)
                .with_thresholds(t.with_relocation_delay(2_000)),
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .with(t)
                .relocation_delay(2_000)
                .named("R-NUMA-1/2+MigRep")
                .build(),
        ),
    ]
}

#[test]
fn old_constructors_and_builder_yield_identical_configs() {
    for (old, new) in old_and_new_pairs() {
        assert_eq!(old, new, "config mismatch for {}", old.name);
    }
}

#[test]
fn old_and_new_apis_produce_bit_identical_results() {
    // One reduced workload with enough sharing to trigger every mechanism.
    let trace = by_name("lu")
        .expect("lu is in the catalog")
        .generate(&WorkloadConfig::reduced());

    for (old, new) in old_and_new_pairs() {
        let name = old.name.clone();
        let a = run(old, &trace);
        let b = run(new, &trace);
        // `SimResult` is `Eq`: this compares execution time, every per-node
        // counter and the full traffic matrix.
        assert_eq!(a, b, "SimResult diverged for {name}");
        // The policy paths were actually exercised for the policy systems.
        if name.contains("MigRep") || name.contains("R-NUMA") {
            assert!(
                a.total_page_operations() > 0,
                "{name}: no page operations — parity test lost its teeth"
            );
        }
    }
}

#[test]
fn legacy_run_experiment_matches_the_experiment_builder() {
    let t = thresholds();
    let set = SystemSet {
        experiment: "parity",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa().with(MigRep::both()).with(t).build(),
            System::r_numa().with(t).build(),
        ],
    };

    let old = run_experiment(&set, &["lu"], ExperimentScale::Reduced, 4);
    let new = Experiment::new(MachineConfig::PAPER)
        .systems(set)
        .workloads(["lu"])
        .scale(ExperimentScale::Reduced)
        .threads(4)
        .run();

    assert_eq!(old.system_names, new.system_names);
    assert_eq!(old.per_workload.len(), new.per_workload.len());
    for (a, b) in old.per_workload.iter().zip(&new.per_workload) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.results, b.results);
    }
}
