//! Old-vs-new API parity: the deprecated `SystemConfig` constructors and the
//! legacy `run_experiment` free function must produce **bit-identical**
//! `SimResult`s to the `System` builder / `Experiment` builder path.
//!
//! Simulation is deterministic (no wall clock, no OS randomness), so
//! equality here is exact: execution time, every per-node counter and the
//! full interconnect traffic matrix.  This is the proof that the
//! `RelocationPolicy` refactor of the simulator core preserved the paper's
//! systems exactly.

// Exercising the deprecated shims is this test's entire purpose.
#![allow(deprecated)]

use dsm_repro::bench::{run_experiment, Experiment, ExperimentScale, SystemSet};
use dsm_repro::prelude::*;
use dsm_repro::protocol::PageCacheConfig;

/// Thresholds small enough for the reduced trace to exercise migration,
/// replication and relocation (so the parity check covers the policy paths,
/// not just the plain cache hierarchy).
fn thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

fn run(system: SystemConfig, trace: &ProgramTrace) -> SimResult {
    ClusterSimulator::new(MachineConfig::PAPER, system).run(trace)
}

/// The old constructor and the new builder expression for each of the
/// paper's systems (plus the perfect baseline and the Section 6.4 hybrid).
fn old_and_new_pairs() -> Vec<(SystemConfig, SystemConfig)> {
    let t = thresholds();
    vec![
        (
            SystemConfig::perfect_cc_numa(),
            System::perfect_cc_numa().build(),
        ),
        (SystemConfig::cc_numa(), System::cc_numa().build()),
        (
            SystemConfig::cc_numa_migrep().with_thresholds(t),
            System::cc_numa().with(MigRep::both()).with(t).build(),
        ),
        (
            SystemConfig::r_numa().with_thresholds(t),
            System::r_numa().with(t).build(),
        ),
        (
            SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 2_000)
                .with_thresholds(t.with_relocation_delay(2_000)),
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .with(t)
                .relocation_delay(2_000)
                .named("R-NUMA-1/2+MigRep")
                .build(),
        ),
    ]
}

#[test]
fn old_constructors_and_builder_yield_identical_configs() {
    for (old, new) in old_and_new_pairs() {
        assert_eq!(old, new, "config mismatch for {}", old.name);
    }
}

#[test]
fn old_and_new_apis_produce_bit_identical_results() {
    // One reduced workload with enough sharing to trigger every mechanism.
    let trace = by_name("lu")
        .expect("lu is in the catalog")
        .generate(&WorkloadConfig::reduced());

    for (old, new) in old_and_new_pairs() {
        let name = old.name.clone();
        let a = run(old, &trace);
        let b = run(new, &trace);
        // `SimResult` is `Eq`: this compares execution time, every per-node
        // counter and the full traffic matrix.
        assert_eq!(a, b, "SimResult diverged for {name}");
        // The policy paths were actually exercised for the policy systems.
        if name.contains("MigRep") || name.contains("R-NUMA") {
            assert!(
                a.total_page_operations() > 0,
                "{name}: no page operations — parity test lost its teeth"
            );
        }
    }
}

/// The flattening-era extension of the old-vs-new proof: for **every**
/// Table 2 workload, the deprecated constructor path and the builder path
/// produce bit-identical `SimResult`s on the Section 6.4 hybrid — the one
/// system that exercises the page cache, the migration/replication engine
/// and the relocation delay at once.
///
/// Scope, precisely: both sides run the *current* (arena-indexed)
/// simulator, so what this pins is that every configuration surface drives
/// the flattened state identically — not a literal old-binary-vs-new-binary
/// diff (the scheduler's proc-id tie-break intentionally shifted absolute
/// cycle counts a hair vs PR 2; see CHANGES.md).  The cross-*source* parity
/// (streamed vs materialized, below) and the run-twice determinism suite
/// (`tests/determinism.rs`) close the remaining directions.
#[test]
fn old_and_new_apis_agree_on_every_workload() {
    let t = thresholds();
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        let trace = w.generate(&cfg);
        let old = SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 2_000)
            .with_thresholds(t.with_relocation_delay(2_000));
        let new = System::r_numa()
            .with(PageCaching::half())
            .with(MigRep::both())
            .with(t)
            .relocation_delay(2_000)
            .named("R-NUMA-1/2+MigRep")
            .build();
        let a = run(old, &trace);
        let b = run(new, &trace);
        assert_eq!(a, b, "SimResult diverged for {}", w.name());
        assert!(
            a.accesses > 0,
            "{}: no accesses — parity test lost its teeth",
            w.name()
        );
    }
}

/// The tentpole proof for the streaming trace pipeline: for **every** Table 2
/// workload, driving the simulator from a streaming generator
/// (`run_source` + `splash_workloads::stream`) produces a `SimResult`
/// bit-identical to materializing the whole trace first (`run`).  The system
/// under test is the Section 6.4 hybrid so the parity covers relocation,
/// migration and replication paths, not just the cache hierarchy.
#[test]
fn streamed_and_materialized_runs_are_bit_identical_for_all_workloads() {
    let sys = System::r_numa()
        .with(PageCaching::half())
        .with(MigRep::both())
        .with(thresholds())
        .build();
    let sim = ClusterSimulator::new(MachineConfig::PAPER, sys);
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        let trace = w.generate(&cfg);
        let materialized = sim.run(&trace);
        let mut source = stream(by_name(w.name()).expect("catalog name"), cfg);
        let streamed = sim.run_source(&mut source);
        assert_eq!(
            materialized,
            streamed,
            "streamed SimResult diverged from materialized for {}",
            w.name()
        );
    }
}

/// Scale half of the streaming proof: a paper-scale radix simulation
/// completes inside a 50 MB address-space ceiling when streamed, while the
/// materialized path aborts under the same ceiling trying to hold the trace.
/// (The ceiling was 80 MB before the arena-indexed state flattening; the
/// dense slabs cut the simulator's own footprint enough that the
/// materialized path now fits 80 MB, so the ceiling moved down with it.)
#[test]
fn paper_scale_radix_streams_inside_a_ceiling_the_materialized_path_exceeds() {
    const CEILING_KB: u64 = 50 * 1024;
    let bin = env!("CARGO_BIN_EXE_memsmoke");
    let run = |mode: &str| {
        std::process::Command::new("sh")
            .arg("-c")
            .arg(format!(
                "ulimit -v {CEILING_KB} && exec '{bin}' {mode} --paper --workload radix"
            ))
            // glibc otherwise reserves a 64 MB address-space arena per
            // contended thread on a timing-dependent whim, which is most of
            // the ceiling; one arena makes the footprint deterministic.
            .env("MALLOC_ARENA_MAX", "1")
            .output()
            .expect("spawn memsmoke under ulimit")
    };

    let streamed = run("--stream");
    let stdout = String::from_utf8_lossy(&streamed.stdout);
    assert!(
        streamed.status.success() && stdout.contains("mode=streamed"),
        "streamed paper-scale radix failed under the {CEILING_KB} KB ceiling: {stdout}\n{}",
        String::from_utf8_lossy(&streamed.stderr)
    );

    let materialized = run("--materialize");
    assert!(
        !materialized.status.success(),
        "materialized paper-scale radix unexpectedly fit the {CEILING_KB} KB ceiling \
         — the streaming pipeline's memory advantage regressed"
    );
    // It must have died *on allocation*, not on some unrelated defect of the
    // materialized mode — otherwise this proves nothing about memory.
    let mat_err = String::from_utf8_lossy(&materialized.stderr);
    assert!(
        mat_err.contains("memory allocation"),
        "materialized run failed for a non-memory reason under the ceiling: {mat_err}"
    );
}

#[test]
fn legacy_run_experiment_matches_the_experiment_builder() {
    let t = thresholds();
    let set = SystemSet {
        experiment: "parity",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa().with(MigRep::both()).with(t).build(),
            System::r_numa().with(t).build(),
        ],
    };

    let old = run_experiment(&set, &["lu"], ExperimentScale::Reduced, 4);
    let new = Experiment::new(MachineConfig::PAPER)
        .systems(set)
        .workloads(["lu"])
        .scale(ExperimentScale::Reduced)
        .threads(4)
        .run();

    assert_eq!(old.system_names, new.system_names);
    assert_eq!(old.per_workload.len(), new.per_workload.len());
    for (a, b) in old.per_workload.iter().zip(&new.per_workload) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.results, b.results);
    }
}
