//! Sharded-execution parity: the node-sharded parallel simulator
//! ([`ShardedSimulator`] driving per-shard supply threads and the
//! cross-shard scheduler) must reproduce the committed golden fingerprints
//! (`tests/golden/api_parity.txt`) bit-for-bit at *any* worker count.
//!
//! The sharded split is deterministic by construction — each shard runs a
//! full generator replica filtered to its own processors, and the
//! cross-shard scheduler preserves the serial `(clock, proc)` wakeup
//! order — so these tests pin the strongest possible claim: `SimResult`
//! equality (not just fingerprints) between serial and sharded runs, run
//! twice, at 1/2/4/8 workers, on >64-node machines, and under scripted
//! adversarial supply interleavings — both the lockstep backend's sampled
//! seed sweep (the smoke tier) and an *exhaustive* enumeration of every
//! bounded-depth lane interleaving (`ShardedSource::explore`), which turns
//! "no sampled schedule perturbed the result" into "no schedule in the
//! enumerated space can".

use std::collections::BTreeMap;

use dsm_repro::bench::report;
use dsm_repro::prelude::*;

const GOLDEN: &str = include_str!("golden/api_parity.txt");

/// Same thresholds as `tests/api_parity.rs`: small enough for the reduced
/// traces to exercise migration, replication and relocation.
fn thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

/// The golden system matrix (keys are part of the golden-file format; see
/// `tests/api_parity.rs`, which owns regeneration).
fn golden_systems() -> Vec<(&'static str, SystemConfig)> {
    let t = thresholds();
    vec![
        ("perfect", System::perfect_cc_numa().build()),
        ("cc-numa", System::cc_numa().build()),
        (
            "migrep",
            System::cc_numa().with(MigRep::both()).with(t).build(),
        ),
        ("r-numa", System::r_numa().with(t).build()),
        (
            "hybrid",
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .with(t)
                .relocation_delay(2_000)
                .named("R-NUMA-1/2+MigRep")
                .build(),
        ),
    ]
}

fn parse_golden() -> BTreeMap<(String, String), u64> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let key = parts.next().expect("golden line has a key");
            let fp = parts.next().expect("golden line has a fingerprint");
            let (workload, system) = key.split_once('/').expect("key is workload/system");
            (
                (workload.to_string(), system.to_string()),
                u64::from_str_radix(fp.trim_start_matches("0x"), 16).expect("hex fingerprint"),
            )
        })
        .collect()
}

/// The headline acceptance check: multi-worker sharded runs reproduce every
/// committed golden fingerprint across the full workload x system matrix.
#[test]
fn sharded_runs_match_committed_goldens_across_the_full_matrix() {
    let golden = parse_golden();
    let cfg = WorkloadConfig::reduced();
    for w in catalog() {
        for (key, system) in golden_systems() {
            let sim = ShardedSimulator::new(MachineConfig::PAPER, system, 4);
            let mut source = sharded(w.as_ref(), &cfg, 4);
            let result = sim.run_source(&mut source);
            let expected = golden
                .get(&(w.name().to_string(), key.to_string()))
                .unwrap_or_else(|| panic!("no golden fingerprint for {}/{key}", w.name()));
            assert_eq!(
                result.fingerprint(),
                *expected,
                "sharded run diverged from the committed golden for {}/{key}",
                w.name()
            );
        }
    }
}

/// Run-twice determinism at every interesting worker count, with full
/// `SimResult` equality against the serial fused pipeline (8 workers on the
/// 8-node paper machine is the one-node-per-shard extreme).
#[test]
fn sharded_runs_are_deterministic_and_bit_identical_to_serial_at_1_2_4_8_workers() {
    let cfg = WorkloadConfig::reduced();
    let w = by_name("ocean").expect("catalog workload");
    let system = golden_systems().remove(4).1; // the Section 6.4 hybrid
    let serial = ClusterSimulator::new(MachineConfig::PAPER, system.clone())
        .run_source(&mut fused(w.as_ref(), &cfg));
    for workers in [1usize, 2, 4, 8] {
        let run = || {
            ShardedSimulator::new(MachineConfig::PAPER, system.clone(), workers)
                .run_source(&mut sharded(w.as_ref(), &cfg, workers))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "run-twice divergence at {workers} workers");
        assert_eq!(a, serial, "serial/sharded divergence at {workers} workers");
    }
}

/// Beyond the paper machine: a 96-node sharded run (the cost-cliff regime
/// where parallelism pays most) stays pinned to the serial result.
#[test]
fn a_96_node_sharded_run_is_pinned_to_the_serial_result() {
    let topo = Topology::new(96, 4);
    let machine = MachineConfig::PAPER.with_topology(topo);
    let cfg = WorkloadConfig::reduced().with_topology(topo);
    let w = by_name("lu").expect("catalog workload");
    let system = golden_systems().remove(2).1; // CC-NUMA + MigRep
    let serial =
        ClusterSimulator::new(machine, system.clone()).run_source(&mut fused(w.as_ref(), &cfg));
    assert!(serial.accesses > 0);
    assert_eq!(serial.per_node.len(), 96);
    for workers in [3usize, 8] {
        let result = ShardedSimulator::new(machine, system.clone(), workers)
            .run_source(&mut sharded(w.as_ref(), &cfg, workers));
        assert_eq!(
            result, serial,
            "96-node sharded run diverged from serial at {workers} workers"
        );
    }
}

/// Model-checking-style interleaving sweep, smoke tier: the deterministic
/// lockstep backend scripts a different supply-lane interleaving per seed;
/// none of them may perturb a single bit of the result.  The seeded bursts
/// reach deeper overtakes than the exhaustive explorer's bounded alphabet
/// (many lane pumps per demand), so this stays alongside the proof below
/// rather than being replaced by it.
#[test]
fn scripted_supply_interleavings_cannot_perturb_the_result() {
    let cfg = WorkloadConfig::reduced();
    let w = by_name("radix").expect("catalog workload");
    let system = golden_systems().remove(2).1; // CC-NUMA + MigRep
    let expected = ClusterSimulator::new(MachineConfig::PAPER, system.clone())
        .run_source(&mut fused(w.as_ref(), &cfg));
    let sim = ShardedSimulator::new(MachineConfig::PAPER, system, 3);
    for seed in 0..16u64 {
        let mut source = sharded_lockstep(w.as_ref(), &cfg, 3, seed);
        let result = sim.run_source(&mut source);
        assert_eq!(
            result, expected,
            "lockstep seed {seed} perturbed the result"
        );
    }
}

/// The exhaustive tier: every lane interleaving the bounded explorer can
/// express — all `3^4 = 81` pump scripts over 3 supply lanes at depth 4 —
/// must produce a simulation bit-identical to the serial fused pipeline.
/// Unlike the seed sweep above, this is a proof over the whole enumerated
/// space, not a sample: if any cross-lane overtaking at the first four
/// demand points could leak into the merged stream, exactly one of these
/// scripts would expose it.  Runs at the test sliver scale so 81 full
/// simulations stay cheap.
#[test]
fn every_bounded_depth_interleaving_is_bit_identical_to_serial() {
    let cfg = WorkloadConfig::reduced_for_tests();
    let w = by_name("radix").expect("catalog workload");
    let system = golden_systems().remove(2).1; // CC-NUMA + MigRep
    let expected = ClusterSimulator::new(MachineConfig::PAPER, system.clone())
        .run_source(&mut fused(w.as_ref(), &cfg));
    assert!(expected.accesses > 0);
    let workers = 3usize;
    let sim = ShardedSimulator::new(MachineConfig::PAPER, system, workers);
    let scripts = ShardedSource::explore(workers as u16, 4);
    assert_eq!(scripts.len(), 81, "3 lanes at depth 4");
    for script in scripts {
        let mut source = sharded_scripted(w.as_ref(), &cfg, workers, script.clone());
        let result = sim.run_source(&mut source);
        assert_eq!(
            result, expected,
            "interleaving {script:?} perturbed the result"
        );
    }
}

/// The sweep engine's worker plumbing: a multi-worker `Sweep` still hits
/// the committed golden on the default-geometry paper point, and the
/// emitted JSON records what produced it.
#[test]
fn a_multi_worker_sweep_matches_the_goldens_and_records_its_worker_count() {
    let golden = parse_golden();
    let t = thresholds();
    let result = Sweep::new("sharded parity")
        .system(System::cc_numa().with(MigRep::both()).with(t).build())
        .baseline(System::perfect_cc_numa().build())
        .workloads(["lu"])
        .scale(ExperimentScale::Reduced)
        .threads(2)
        .workers(4)
        .run();
    assert_eq!(result.workers, 4);
    assert_eq!(result.points.len(), 1, "default geometry is a single point");
    assert_eq!(
        result.points[0].result.fingerprint(),
        golden[&("lu".to_string(), "migrep".to_string())],
        "multi-worker sweep diverged from the committed golden"
    );
    let json = report::sweep_to_json(&result);
    assert!(
        json.contains("\"workers\":4"),
        "sweep JSON does not record the worker count: {json}"
    );
}
