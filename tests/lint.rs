//! Seed-violation self-tests for `dsm-lint`: every rule must fire on a
//! fixture reconstruction of the bug class it exists for — including the
//! actual PR 1 `HashSet`-iteration bug in `migrate_page` that motivated the
//! whole pass — and the workspace itself must scan clean against the
//! committed baseline.  If a rule regresses into silence, the fixture test
//! catches it; if the tree regresses into a new violation, the workspace
//! test catches it (the same check CI's `dsm-lint` job runs, kept in tier-1
//! so it can't be skipped).

use dsm_lint::{scan_source, scan_workspace, Baseline, Finding, RULES};

/// Scan a fixture as if it lived in a simulation crate (all rules in
/// scope).
fn scan_sim(source: &str) -> Vec<Finding> {
    scan_source("crates/dsm-protocol/src/fixture.rs", source)
}

fn fired(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// D1, reconstructed from PR 1: `migrate_page` gathered the sharer set out
/// of a `HashSet`, so invalidation messages went out in hash-iteration
/// order and MigRep runs differed run-to-run.  (The fix was `BTreeSet`;
/// the rule exists so the *pattern* can't come back.)
#[test]
fn the_pr1_hash_iteration_bug_fires_exactly_once() {
    let fixture = r#"
pub fn migrate_page(&mut self, page: PageIdx, to: NodeId) {
    let sharers: std::collections::HashSet<NodeId> = self.directory.sharers(page);
    for node in &sharers {
        self.send_invalidate(*node, page);
    }
    self.directory.set_home(page, to);
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(
        fired(&findings, "hash-iter"),
        1,
        "the PR 1 bug pattern must fire hash-iter exactly once: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "and nothing else: {findings:?}");
    assert_eq!(findings[0].line, 3);
}

/// D2: wall-clock in a simulation crate.  Simulated time comes from the
/// cost model; an `Instant::now` here is either dead code or a
/// nondeterminism leak.
#[test]
fn wall_clock_in_a_sim_crate_fires_exactly_once() {
    let fixture = r#"
pub fn relocation_deadline(&self) -> u64 {
    let started = std::time::Instant::now();
    self.delay + started.elapsed().as_nanos() as u64
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "wall-clock"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// D3: panicking on a poisoned lock in library code — the pattern the PR 9
/// sweep-service fix removed (a long-running server must recover or return
/// an error, not die with the first worker panic).
#[test]
fn lock_unwrap_in_library_code_fires_exactly_once() {
    let fixture = r#"
pub fn stats(&self) -> CacheStats {
    self.cache.lock().expect("cache lock poisoned").stats()
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "lock-unwrap"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// D4: floating-point accumulation whose order the scheduler could choose.
/// Float addition doesn't commute under reassociation, so this is a
/// bit-parity leak unless the merge order is documented.
#[test]
fn float_accumulation_fires_exactly_once() {
    let fixture = r#"
pub fn merge(&mut self, worker_latency: f64) {
    self.total_latency += worker_latency * self.weight as f64;
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "float-order"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// The suppression grammar: an allow comment with a reason silences the
/// finding on its own line or the line below; an allow *without* a reason
/// suppresses nothing and is itself reported.
#[test]
fn allow_comments_require_a_reason() {
    let suppressed = r#"
// dsm-lint: allow(hash-iter, drained into a BTreeSet before any iteration)
pub fn vetted(seen: &mut std::collections::HashSet<u64>) {}
"#;
    assert!(
        scan_sim(suppressed).is_empty(),
        "a reasoned allow must suppress the finding"
    );

    let reasonless = r#"
// dsm-lint: allow(hash-iter)
pub fn vetted(seen: &mut std::collections::HashSet<u64>) {}
"#;
    let findings = scan_sim(reasonless);
    assert_eq!(
        fired(&findings, "allow-syntax"),
        1,
        "a reasonless allow is itself a finding: {findings:?}"
    );
    assert_eq!(
        fired(&findings, "hash-iter"),
        1,
        "and it suppresses nothing: {findings:?}"
    );
}

/// Test code is out of scope: the same patterns inside `#[cfg(test)]` /
/// `#[test]` items must not fire (tests legitimately unwrap locks and use
/// wall-clock timeouts).
#[test]
fn test_gated_code_is_out_of_scope() {
    let fixture = r#"
pub fn live() {}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn locks_and_clocks_are_fine_here() {
        let _ = std::time::Instant::now();
        let _ = MUTEX.lock().unwrap();
        let mut seen = HashSet::new();
        seen.insert(1u64);
    }
}
"#;
    assert_eq!(scan_sim(fixture), Vec::new());
}

/// The acceptance criterion itself, kept in tier-1: scanning the real
/// workspace yields zero findings above the committed baseline, and every
/// baseline entry still matches a real site (no stale grandfathering).
#[test]
fn the_workspace_scans_clean_against_the_committed_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = scan_workspace(root).expect("workspace scan");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses (reasons mandatory)");
    let fresh = baseline.new_violations(&findings);
    assert!(
        fresh.is_empty(),
        "new lint violations above the baseline:\n{}",
        fresh
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        baseline.stale(&findings).is_empty(),
        "stale baseline entries — run dsm-lint --fix-baseline and re-justify"
    );
    // The grandfathered set only ever shrinks; growing it is a review
    // decision, not a drive-by (2 = the scoped sweep workers in
    // crates/bench/src/sweep.rs, where propagating a sibling panic is the
    // intended failure mode).
    assert!(
        baseline.entries.len() <= 2,
        "baseline grew to {} entries",
        baseline.entries.len()
    );
}

/// The rule registry is what the README documents: four determinism rules
/// plus the allow-grammar diagnostic.
#[test]
fn the_rule_set_is_the_documented_one() {
    let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "hash-iter",
            "wall-clock",
            "lock-unwrap",
            "float-order",
            "allow-syntax"
        ]
    );
}
