//! Seed-violation self-tests for `dsm-lint`: every rule must fire on a
//! fixture reconstruction of the bug class it exists for — including the
//! actual PR 1 `HashSet`-iteration bug in `migrate_page` that motivated the
//! whole pass, now also reconstructed as an inter-procedural *taint chain*
//! — and the workspace itself must scan clean against the committed
//! baseline.  If a rule regresses into silence, the fixture test catches
//! it; if the tree regresses into a new violation, the workspace test
//! catches it (the same check CI's `dsm-lint` job runs, kept in tier-1 so
//! it can't be skipped).

use dsm_lint::{scan_files, scan_source, scan_workspace, Baseline, Config, Finding, Scan, RULES};

/// Scan a fixture as if it lived in a simulation crate (all rules in
/// scope).
fn scan_sim(source: &str) -> Vec<Finding> {
    scan_source("crates/dsm-protocol/src/fixture.rs", source)
}

/// Scan a multi-file fixture workspace through the full pipeline (token
/// rules + call graph + flow rules), under the committed configuration.
fn scan_fixture_workspace(files: &[(&str, &str)]) -> Scan {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    scan_files(&owned, &Config::default())
}

fn fired(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// D1, reconstructed from PR 1: `migrate_page` gathered the sharer set out
/// of a `HashSet`, so invalidation messages went out in hash-iteration
/// order and MigRep runs differed run-to-run.  (The fix was `BTreeSet`;
/// the rule exists so the *pattern* can't come back.)
#[test]
fn the_pr1_hash_iteration_bug_fires_exactly_once() {
    let fixture = r#"
pub fn migrate_page(&mut self, page: PageIdx, to: NodeId) {
    let sharers: std::collections::HashSet<NodeId> = self.directory.sharers(page);
    for node in &sharers {
        self.send_invalidate(*node, page);
    }
    self.directory.set_home(page, to);
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(
        fired(&findings, "hash-iter"),
        1,
        "the PR 1 bug pattern must fire hash-iter exactly once: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "and nothing else: {findings:?}");
    assert_eq!(findings[0].line, 3);
}

/// D2: wall-clock in a simulation crate.  Simulated time comes from the
/// cost model; an `Instant::now` here is either dead code or a
/// nondeterminism leak.
#[test]
fn wall_clock_in_a_sim_crate_fires_exactly_once() {
    let fixture = r#"
pub fn relocation_deadline(&self) -> u64 {
    let started = std::time::Instant::now();
    self.delay + started.elapsed().as_nanos() as u64
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "wall-clock"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// D3: panicking on a poisoned lock in library code — the pattern the PR 9
/// sweep-service fix removed (a long-running server must recover or return
/// an error, not die with the first worker panic).
#[test]
fn lock_unwrap_in_library_code_fires_exactly_once() {
    let fixture = r#"
pub fn stats(&self) -> CacheStats {
    self.cache.lock().expect("cache lock poisoned").stats()
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "lock-unwrap"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// D4: floating-point accumulation whose order the scheduler could choose.
/// Float addition doesn't commute under reassociation, so this is a
/// bit-parity leak unless the merge order is documented.
#[test]
fn float_accumulation_fires_exactly_once() {
    let fixture = r#"
pub fn merge(&mut self, worker_latency: f64) {
    self.total_latency += worker_latency * self.weight as f64;
}
"#;
    let findings = scan_sim(fixture);
    assert_eq!(fired(&findings, "float-order"), 1, "{findings:?}");
    assert_eq!(findings.len(), 1);
}

/// D5 (panic-path): a panic buried two calls below a serve loop must be
/// reported *at the loop's entry*, with the shortest call chain as the
/// witness.  The fixture is a miniature of the sweep service: the
/// `serve_stream` entry (matched from `lint.toml`) dispatches each request
/// line to a parser that panics on malformed input — exactly the
/// kill-the-server-with-one-request shape the rule exists for.
#[test]
fn a_reachable_panic_fires_once_with_its_call_chain() {
    let scan = scan_fixture_workspace(&[(
        "crates/sweep-service/src/lib.rs",
        r#"
pub fn serve_stream(lines: &[String]) {
    for line in lines {
        dispatch(line);
    }
}

fn dispatch(line: &str) -> u64 {
    parse_spec(line)
}

fn parse_spec(line: &str) -> u64 {
    if line.is_empty() {
        panic!("empty request line");
    }
    line.len() as u64
}
"#,
    )]);
    let findings: Vec<&Finding> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "panic-path")
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", scan.findings);
    let f = findings[0];
    assert_eq!(f.line, 14, "anchored at the panic site");
    assert!(
        f.chain.iter().any(|s| s.contains("serve_stream")),
        "chain names the entry: {:?}",
        f.chain
    );
    assert!(
        f.chain.iter().any(|s| s.contains("dispatch")),
        "chain walks through the dispatcher: {:?}",
        f.chain
    );
}

/// D6 (det-taint): the PR 1 `migrate_page` bug again, but this time as the
/// *inter-procedural* leak the token rule cannot see — the hash-ordered
/// sharer list escapes `migrate_page` as a return value and flows into the
/// `SimResult` a caller builds.  The rule must connect source to sink
/// through the call graph and report the chain.
#[test]
fn the_pr1_bug_reconstructed_as_a_taint_chain() {
    let scan = scan_fixture_workspace(&[(
        "crates/core/src/lib.rs",
        r#"
pub fn migrate_page(dir: &Directory) -> Vec<NodeId> {
    let sharers: std::collections::HashSet<NodeId> = dir.sharers();
    sharers.iter().copied().collect()
}

pub fn finish_run(dir: &Directory) -> SimResult {
    let invalidation_order = migrate_page(dir);
    SimResult { invalidation_order }
}
"#,
    )]);
    let findings: Vec<&Finding> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "det-taint")
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", scan.findings);
    let f = findings[0];
    assert_eq!(f.line, 3, "anchored at the HashSet source");
    assert!(
        f.chain.iter().any(|s| s.contains("migrate_page")),
        "chain starts at the tainted fn: {:?}",
        f.chain
    );
    assert!(
        f.chain.iter().any(|s| s.contains("finish_run")),
        "chain reaches the SimResult construction: {:?}",
        f.chain
    );
    // The per-file token rule fires on the same line too; the point of
    // det-taint is the *chain*, which hash-iter cannot produce.
    assert_eq!(fired(&scan.findings, "hash-iter"), 1);
}

/// D7 (cast-truncation): a narrowing `as` cast inside byte/cost
/// accounting.  `bytes as u32` silently wraps for page sizes over 4 GiB of
/// accumulated traffic — the cost model must widen, not truncate.
#[test]
fn a_narrowing_cast_in_cost_accounting_fires_exactly_once() {
    let scan = scan_fixture_workspace(&[(
        "crates/core/src/lib.rs",
        r#"
pub fn page_copy_cost(total_bytes: u64, per_block: u64) -> u64 {
    let cost = total_bytes as u32;
    u64::from(cost) * per_block
}
"#,
    )]);
    let findings: Vec<&Finding> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "cast-truncation")
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", scan.findings);
    assert_eq!(findings[0].line, 3);
}

/// The suppression grammar: an allow comment with a reason silences the
/// finding on its own line or the line below; an allow *without* a reason
/// suppresses nothing and is itself reported.
#[test]
fn allow_comments_require_a_reason() {
    let suppressed = r#"
// dsm-lint: allow(hash-iter, drained into a BTreeSet before any iteration)
pub fn vetted(seen: &mut std::collections::HashSet<u64>) {}
"#;
    assert!(
        scan_sim(suppressed).is_empty(),
        "a reasoned allow must suppress the finding"
    );

    let reasonless = r#"
// dsm-lint: allow(hash-iter)
pub fn vetted(seen: &mut std::collections::HashSet<u64>) {}
"#;
    let findings = scan_sim(reasonless);
    assert_eq!(
        fired(&findings, "allow-syntax"),
        1,
        "a reasonless allow is itself a finding: {findings:?}"
    );
    assert_eq!(
        fired(&findings, "hash-iter"),
        1,
        "and it suppresses nothing: {findings:?}"
    );
}

/// Test code is out of scope: the same patterns inside `#[cfg(test)]` /
/// `#[test]` items must not fire (tests legitimately unwrap locks and use
/// wall-clock timeouts).
#[test]
fn test_gated_code_is_out_of_scope() {
    let fixture = r#"
pub fn live() {}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn locks_and_clocks_are_fine_here() {
        let _ = std::time::Instant::now();
        let _ = MUTEX.lock().unwrap();
        let mut seen = HashSet::new();
        seen.insert(1u64);
    }
}
"#;
    assert_eq!(scan_sim(fixture), Vec::new());
}

/// The acceptance criterion itself, kept in tier-1: scanning the real
/// workspace yields zero findings above the committed baseline, and the
/// baseline itself is *empty* — PR 10 burned the last grandfathered
/// entries, so from here on every finding is either fixed or carries a
/// reasoned inline allow.  Growing the baseline again is a review
/// decision, not a drive-by.
#[test]
fn the_workspace_scans_clean_against_the_committed_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let scan = scan_workspace(root).expect("workspace scan");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses (reasons mandatory)");
    assert!(
        baseline.rules_match_registry(),
        "baseline pins a different rule registry — bump the schema deliberately"
    );
    let fresh = baseline.new_violations(&scan.findings);
    assert!(
        fresh.is_empty(),
        "new lint violations above the baseline:\n{}",
        fresh
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        baseline.stale(&scan.findings).is_empty(),
        "stale baseline entries — run dsm-lint --fix-baseline and re-justify"
    );
    assert!(
        baseline.entries.is_empty(),
        "the baseline was burned to empty in PR 10 and must stay empty; \
         it has {} entries",
        baseline.entries.len()
    );
}

/// The service hardening claim, proved rather than asserted: from the
/// sweep-service request loop (`SweepService::handle_line`, `serve_stream`)
/// no panic site is reachable without a reasoned justification.  Every
/// surviving `panic!`/`expect` on a service path carries an inline allow
/// naming the invariant that makes it unreachable from request input.
#[test]
fn no_unjustified_panic_is_reachable_from_the_service_loop() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let scan = scan_workspace(root).expect("workspace scan");
    let service_panics: Vec<&Finding> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "panic-path")
        .collect();
    assert!(
        service_panics.is_empty(),
        "panic sites reachable from a declared entry without justification: {service_panics:?}"
    );
    // Guard against the rule matching nothing at all: the entry points
    // named in lint.toml must actually resolve in the workspace graph.
    let cfg = Config::default();
    let entries = scan.graph.match_entries(&cfg.entries);
    assert!(
        entries.len() >= 3,
        "lint.toml entry specs resolved only {} workspace functions",
        entries.len()
    );
}

/// The rule registry is what the README and the baseline schema document:
/// four token rules, three call-graph rules, and the allow-grammar
/// diagnostic — in this order, because the baseline pins it.
#[test]
fn the_rule_set_is_the_documented_one() {
    let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "hash-iter",
            "wall-clock",
            "lock-unwrap",
            "float-order",
            "panic-path",
            "det-taint",
            "cast-truncation",
            "allow-syntax"
        ]
    );
}
