//! Cross-crate integration tests: run real workloads end-to-end on every
//! system and assert the qualitative relationships the paper's conclusions
//! rest on.

use dsm_repro::prelude::*;

fn run(system: SystemConfig, trace: &ProgramTrace) -> SimResult {
    ClusterSimulator::new(MachineConfig::PAPER, system).run(trace)
}

/// Thresholds tuned for the reduced workload sizes (mirrors the bench
/// presets without depending on the bench crate).
fn reduced_thresholds() -> Thresholds {
    Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    }
}

#[test]
fn perfect_cc_numa_lower_bounds_every_system_on_every_workload() {
    for workload in catalog() {
        let trace = workload.generate(&WorkloadConfig::reduced());
        let baseline = run(System::perfect_cc_numa().build(), &trace);
        for config in [
            System::cc_numa().build(),
            System::cc_numa()
                .with(MigRep::both())
                .with(reduced_thresholds())
                .build(),
            System::r_numa().with(reduced_thresholds()).build(),
        ] {
            let result = run(config, &trace);
            assert!(
                result.normalized_against(&baseline) >= 0.99,
                "{} ran faster than perfect CC-NUMA on {} ({:.3})",
                result.system,
                workload.name(),
                result.normalized_against(&baseline)
            );
        }
    }
}

#[test]
fn r_numa_infinite_page_cache_never_loses_to_the_finite_one() {
    for name in ["raytrace", "radix", "barnes"] {
        let workload = by_name(name).unwrap();
        let trace = workload.generate(&WorkloadConfig::reduced());
        let finite = run(System::r_numa().with(reduced_thresholds()).build(), &trace);
        let infinite = run(
            System::r_numa()
                .with(PageCaching::infinite())
                .with(reduced_thresholds())
                .build(),
            &trace,
        );
        assert!(
            infinite.execution_time <= finite.execution_time,
            "{name}: infinite page cache slower than finite"
        );
        assert_eq!(infinite.total_page_cache_replacements(), 0);
    }
}

#[test]
fn r_numa_reduces_capacity_conflict_remote_misses_on_thrashing_workloads() {
    for name in ["raytrace", "barnes", "lu"] {
        let workload = by_name(name).unwrap();
        let trace = workload.generate(&WorkloadConfig::reduced());
        let cc = run(System::cc_numa().build(), &trace);
        let rn = run(
            System::r_numa()
                .with(PageCaching::infinite())
                .with(reduced_thresholds())
                .build(),
            &trace,
        );
        assert!(
            rn.total_remote_capacity_misses() < cc.total_remote_capacity_misses(),
            "{name}: R-NUMA-Inf did not reduce capacity/conflict remote misses \
             ({} vs {})",
            rn.total_remote_capacity_misses(),
            cc.total_remote_capacity_misses()
        );
        assert!(rn.total_page_operations() > 0, "{name}: no relocations");
    }
}

#[test]
fn replication_triggers_on_the_read_shared_scene_of_raytrace() {
    let trace = by_name("raytrace")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    let rep = run(
        System::cc_numa()
            .with(MigRep::replication_only())
            .with(reduced_thresholds())
            .build(),
        &trace,
    );
    let cc = run(System::cc_numa().build(), &trace);
    let replications: u64 = rep.per_node.iter().map(|n| n.replications).sum();
    assert!(replications > 0, "no replications on raytrace");
    assert!(
        rep.total_remote_misses() < cc.total_remote_misses(),
        "replication did not remove remote misses"
    );
}

#[test]
fn migration_triggers_on_fmm_boxes_owned_by_a_single_remote_node() {
    let trace = by_name("fmm").unwrap().generate(&WorkloadConfig::reduced());
    let mig = run(
        System::cc_numa()
            .with(MigRep::migration_only())
            .with(reduced_thresholds())
            .build(),
        &trace,
    );
    let cc = run(System::cc_numa().build(), &trace);
    let migrations: u64 = mig.per_node.iter().map(|n| n.migrations).sum();
    assert!(migrations > 0, "no migrations on fmm");
    assert!(
        mig.total_remote_misses() < cc.total_remote_misses(),
        "migration did not remove remote misses"
    );
}

#[test]
fn slow_page_operations_hurt_r_numa_more_than_migrep() {
    // Figure 6's conclusion: R-NUMA performs many more page operations, so a
    // ten-fold increase in page-operation cost costs it more.
    let trace = by_name("raytrace")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    let baseline = run(System::perfect_cc_numa().build(), &trace);
    let t = reduced_thresholds();

    let migrep_fast = run(
        System::cc_numa().with(MigRep::both()).with(t).build(),
        &trace,
    );
    let migrep_slow = run(
        System::cc_numa()
            .with(MigRep::both())
            .with(CostModel::slow())
            .with(t)
            .build(),
        &trace,
    );
    let rnuma_fast = run(System::r_numa().with(t).build(), &trace);
    let rnuma_slow = run(
        System::r_numa().with(CostModel::slow()).with(t).build(),
        &trace,
    );

    let migrep_penalty =
        migrep_slow.normalized_against(&baseline) - migrep_fast.normalized_against(&baseline);
    let rnuma_penalty =
        rnuma_slow.normalized_against(&baseline) - rnuma_fast.normalized_against(&baseline);
    assert!(
        rnuma_penalty >= migrep_penalty,
        "R-NUMA should be at least as sensitive to slow page operations \
         (R-NUMA penalty {rnuma_penalty:.3}, MigRep penalty {migrep_penalty:.3})"
    );
}

#[test]
fn longer_network_latency_amplifies_cc_numa_degradation() {
    // Figure 7: with a 4x longer remote path, CC-NUMA's normalized execution
    // time gets worse while R-NUMA stays closer to perfect CC-NUMA.
    let trace = by_name("raytrace")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    let far = CostModel::base().with_remote_latency_factor(4);

    let base_perfect = run(System::perfect_cc_numa().build(), &trace);
    let base_cc = run(System::cc_numa().build(), &trace);
    let far_perfect = run(System::perfect_cc_numa().with(far).build(), &trace);
    let far_cc = run(System::cc_numa().with(far).build(), &trace);
    let far_rnuma = run(
        System::r_numa()
            .with(reduced_thresholds())
            .with(far)
            .build(),
        &trace,
    );

    let base_ratio = base_cc.normalized_against(&base_perfect);
    let far_ratio = far_cc.normalized_against(&far_perfect);
    assert!(
        far_ratio > base_ratio,
        "CC-NUMA should degrade more at 4x latency ({far_ratio:.2} vs {base_ratio:.2})"
    );
    assert!(
        far_rnuma.normalized_against(&far_perfect) < far_ratio,
        "R-NUMA should beat CC-NUMA at long latencies"
    );
}

#[test]
fn table4_style_counters_are_consistent() {
    let trace = by_name("barnes")
        .unwrap()
        .generate(&WorkloadConfig::reduced());
    let result = run(System::r_numa().with(reduced_thresholds()).build(), &trace);
    // Capacity/conflict remote misses are a subset of remote misses.
    assert!(result.total_remote_capacity_misses() <= result.total_remote_misses());
    // Per-node averages are consistent with totals.
    let avg = result.per_node_remote_misses();
    assert!((avg * result.per_node.len() as f64 - result.total_remote_misses() as f64).abs() < 1.0);
    // The run actually simulated the whole trace.
    assert_eq!(result.accesses, trace.stats().accesses);
    assert_eq!(result.barriers as u64, trace.stats().barriers);
}
