//! Bounded-memory smoke binary: runs one workload simulation through the
//! fused or threaded streaming trace pipeline, or by materializing the
//! whole trace first.
//!
//! The CI bounded-memory job (and `tests/streaming.rs`) runs this under a
//! `ulimit -v` address-space ceiling sized so that the streamed paths
//! complete while the materialized path aborts on allocation — the
//! executable proof that streaming keeps peak memory flat at paper scale.
//!
//! `--adversarial` is the quiet-processor regression mode: it drives a
//! ThreadedSource over a synthetic stream whose processor 1 goes quiet
//! immediately (no end marker until the very end) and pulls processor 1
//! first — the pull order that used to buffer the entire remaining trace.
//! With the window cap the drain now stops at the cap and reports
//! `TraceError::StreamWindowExceeded`, so the run fits the same ceiling
//! under which the old unbounded demux would abort.
//!
//! ```text
//! memsmoke [--materialize|--stream|--fused|--threaded|--adversarial]
//!          [--paper] [--workload NAME] [--system cc-numa|r-numa]
//! ```

use dsm_repro::prelude::*;

enum Mode {
    Materialize,
    /// Automatic fused-vs-threaded pick (whatever `stream()` chooses).
    Auto,
    Fused,
    Threaded,
    Adversarial,
}

fn main() {
    let mut mode = Mode::Auto;
    let mut scale = Scale::Paper;
    let mut workload = String::from("radix");
    let mut system = String::from("cc-numa");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--materialize" => mode = Mode::Materialize,
            "--stream" => mode = Mode::Auto,
            "--fused" => mode = Mode::Fused,
            "--threaded" => mode = Mode::Threaded,
            "--adversarial" => mode = Mode::Adversarial,
            "--paper" => scale = Scale::Paper,
            "--reduced" => scale = Scale::Reduced,
            "--workload" => {
                workload = args
                    .next()
                    .unwrap_or_else(|| usage("--workload needs a value"))
            }
            "--system" => {
                system = args
                    .next()
                    .unwrap_or_else(|| usage("--system needs a value"))
            }
            "-h" | "--help" => {
                println!(
                    "usage: memsmoke [--materialize|--stream|--fused|--threaded|--adversarial] \
                     [--paper|--reduced] [--workload NAME] [--system cc-numa|r-numa]"
                );
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    if let Mode::Adversarial = mode {
        adversarial_quiet_processor_pull();
        return;
    }

    let wl = by_name(&workload).unwrap_or_else(|| usage(&format!("unknown workload {workload}")));
    let cfg = WorkloadConfig::at_scale(scale);
    let sys = match system.as_str() {
        "cc-numa" => System::cc_numa().build(),
        "r-numa" => System::r_numa().build(),
        other => usage(&format!("unknown system {other}")),
    };
    let sim = ClusterSimulator::new(MachineConfig::PAPER, sys);

    let (mode_name, result) = match mode {
        Mode::Materialize => {
            let trace = wl.generate(&cfg);
            ("materialized", sim.run(&trace))
        }
        Mode::Auto => {
            let mut source = stream(wl, cfg);
            ("streamed", sim.run_source(&mut source))
        }
        Mode::Fused => {
            let mut source = fused(wl.as_ref(), &cfg);
            ("fused", sim.run_source(&mut source))
        }
        Mode::Threaded => {
            let mut source = stream_threaded(wl, cfg);
            ("threaded", sim.run_source(&mut source))
        }
        Mode::Adversarial => unreachable!("handled above"),
    };
    println!(
        "mode={} workload={} system={} accesses={} barriers={} execution_time={}",
        mode_name,
        result.workload,
        result.system,
        result.accesses,
        result.barriers,
        result.execution_time.raw()
    );
}

/// The quiet-processor blow-up, contained: pull an (endless-ish) stream in
/// the adversarial order and prove the demux gives up at its cap instead
/// of buffering the trace.  Exits 0 when the cap fired as designed.
fn adversarial_quiet_processor_pull() {
    use dsm_repro::trace::{StepWriter, TraceEvent};

    const EVENTS: u64 = 40_000_000; // ~640 MB if the demux parked them all
    const CAP: usize = 1 << 20;

    let topo = Topology::new(2, 1);
    let mut source = ThreadedSource::spawn("quiet-proc", topo, move |sink| {
        let mut w = StepWriter::new(topo);
        for i in 0..EVENTS {
            w.read(sink, ProcId(0), GlobalAddr((i % 1_000_000) * 64));
        }
        sink.end_of_stream(ProcId(0));
        // Proc 1's end marker only lands here, after the whole stream:
        // exactly the shape that used to reintroduce O(trace) memory.
        sink.event(ProcId(1), TraceEvent::Compute(1));
        sink.end_of_stream(ProcId(1));
    })
    .with_window_cap(CAP);

    // The adversarial order: ask for the quiet processor first.
    let got = source.next_event(ProcId(1));
    let parked = source.buffered_events();
    match source.take_error() {
        Some(TraceError::StreamWindowExceeded { buffered, cap }) => {
            assert!(got.is_none(), "poisoned source must not yield events");
            assert!(parked <= cap, "demux kept {parked} events past its cap");
            println!(
                "mode=adversarial outcome=capped buffered={buffered} cap={cap} parked={parked}"
            );
        }
        other => {
            eprintln!(
                "error: adversarial pull was expected to trip the window cap, got {other:?} \
                 (event: {got:?})"
            );
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
