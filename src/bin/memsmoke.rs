//! Bounded-memory smoke binary: runs one workload simulation either through
//! the streaming trace pipeline or by materializing the whole trace first.
//!
//! The CI bounded-memory job (and `tests/streaming.rs`) runs this under a
//! `ulimit -v` address-space ceiling sized so that the streamed path
//! completes while the materialized path aborts on allocation — the
//! executable proof that streaming keeps peak memory flat at paper scale.
//!
//! ```text
//! memsmoke [--materialize] [--paper] [--workload NAME] [--system cc-numa|r-numa]
//! ```

use dsm_repro::prelude::*;

fn main() {
    let mut materialize = false;
    let mut scale = Scale::Paper;
    let mut workload = String::from("radix");
    let mut system = String::from("cc-numa");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--materialize" => materialize = true,
            "--stream" => materialize = false,
            "--paper" => scale = Scale::Paper,
            "--reduced" => scale = Scale::Reduced,
            "--workload" => {
                workload = args
                    .next()
                    .unwrap_or_else(|| usage("--workload needs a value"))
            }
            "--system" => {
                system = args
                    .next()
                    .unwrap_or_else(|| usage("--system needs a value"))
            }
            "-h" | "--help" => {
                println!(
                    "usage: memsmoke [--materialize|--stream] [--paper|--reduced] \
                     [--workload NAME] [--system cc-numa|r-numa]"
                );
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let wl = by_name(&workload).unwrap_or_else(|| usage(&format!("unknown workload {workload}")));
    let cfg = WorkloadConfig::at_scale(scale);
    let sys = match system.as_str() {
        "cc-numa" => System::cc_numa().build(),
        "r-numa" => System::r_numa().build(),
        other => usage(&format!("unknown system {other}")),
    };
    let sim = ClusterSimulator::new(MachineConfig::PAPER, sys);

    let result = if materialize {
        let trace = wl.generate(&cfg);
        sim.run(&trace)
    } else {
        let mut source = stream(wl, cfg);
        sim.run_source(&mut source)
    };
    println!(
        "mode={} workload={} system={} accesses={} barriers={} execution_time={}",
        if materialize {
            "materialized"
        } else {
            "streamed"
        },
        result.workload,
        result.system,
        result.accesses,
        result.barriers,
        result.execution_time.raw()
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
