//! `dsm-repro` — facade crate for the reproduction of
//! *"Comparing the Effectiveness of Fine-Grain Memory Caching against Page
//! Migration/Replication in Reducing Traffic in DSM Clusters"*
//! (Lai & Falsafi, SPAA 2000).
//!
//! This crate simply re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`sim`] — discrete-time simulation primitives (cycles, queueing
//!   resources, deterministic RNG, statistics);
//! * [`trace`] — the global address-space model and shared-memory reference
//!   traces;
//! * [`node`] — the SMP node model (processor caches, miss classification,
//!   memory bus, page tables);
//! * [`protocol`] — DSM coherence mechanisms (directory, block cache,
//!   S-COMA page cache, interconnect);
//! * [`core`] — the systems under study (CC-NUMA, CC-NUMA+MigRep, R-NUMA,
//!   R-NUMA+MigRep), the [`RelocationPolicy`](core::RelocationPolicy) trait
//!   they implement, the [`System`](core::System) builder that composes
//!   them, and the cluster simulator;
//! * [`workloads`] — the seven SPLASH-2-like workload generators (Table 2);
//! * [`mod@bench`] — the [`Sweep`](bench::Sweep) parameter grids, the
//!   [`Experiment`](bench::Experiment) harness and the presets/report
//!   formatters behind every figure and table;
//! * [`service`] — the long-running sweep server (`serve` binary): a
//!   JSON-lines protocol over stdio/Unix sockets backed by a
//!   content-addressed result cache.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use dsm_bench as bench;
pub use dsm_core as core;
pub use dsm_protocol as protocol;
pub use mem_trace as trace;
pub use sim_engine as sim;
pub use smp_node as node;
pub use splash_workloads as workloads;
pub use sweep_service as service;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use dsm_bench::{
        Axis, Experiment, ExperimentScale, Metric, MetricSet, SourceMode, Sweep, SweepResult,
        SystemSet,
    };
    pub use dsm_core::{
        resolve_workers, BlockCaching, ClusterSimulator, CostModel, MachineConfig, MigRep,
        MigRepConfig, PageCaching, PageOp, PolicyStats, RelocationPolicy, ShardedSimulator,
        SimResult, System, SystemBuilder, SystemConfig, SystemFeature, Thresholds,
    };
    pub use mem_trace::{
        FusedSource, Geometry, GlobalAddr, ProcId, ProgramTrace, PumpScript, ReplaySource,
        ShardMap, ShardedSource, SharerSet, StepGenerator, ThreadedSource, Topology, TraceBuilder,
        TraceError, TraceSource, BLOCK_SIZE, PAGE_SIZE,
    };
    pub use splash_workloads::{
        by_name, catalog, fused, sharded, sharded_lockstep, sharded_scripted, stream,
        stream_threaded, CustomScale, Scale, Workload, WorkloadConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired_up() {
        use crate::prelude::*;
        let cfg = System::cc_numa().build();
        assert_eq!(cfg.name, "CC-NUMA");
        assert_eq!(Topology::PAPER.total_procs(), 32);
        assert_eq!(catalog().len(), 7);
    }
}
