//! The JSON-lines wire protocol: request parsing and response rendering.
//!
//! One request per line in, one response object per line out.  A `sweep`
//! (or `report`) request streams one `baseline`/`point` object per
//! completed job before its terminal object; every other request answers
//! with a single terminal object.  Terminal kinds are `sweep-done`,
//! `report`, `trend`, `cache-stats`, `ok` and `error` — a client reads
//! until it sees one.  Every response carries the request's `id` (empty
//! string if the request had none) so clients can multiplex.
//!
//! See the repository README ("Sweep service") for the full field tables.

use crate::cache::CacheStats;
use crate::json::{escape, parse, Value};
use dsm_bench::SweepEvent;

/// A parsed, not-yet-resolved request.  Name-shaped fields (systems, costs,
/// scales, workloads) stay strings here; resolution against the catalog
/// happens in the service so unknown names become `error` responses, not
/// parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a sweep, streaming per-job results.
    Sweep {
        /// Client-chosen correlation id.
        id: String,
        /// The parameter space to run.
        spec: SweepSpec,
    },
    /// Run a sweep and render report artifacts (pivot table, per-point
    /// listing, CSV) in the terminal response.
    Report {
        /// Client-chosen correlation id.
        id: String,
        /// The parameter space to run.
        spec: SweepSpec,
        /// Pivot row axis (an [`dsm_bench::Axis::name`]).
        rows: String,
        /// Pivot column axis.
        cols: String,
        /// Pivot cell metric (a [`dsm_bench::Metric::name`]).
        metric: String,
    },
    /// Render the perf trend table from `BENCH_*.json` files in `dir`.
    Trend {
        /// Client-chosen correlation id.
        id: String,
        /// Directory to scan (default `"."`).
        dir: String,
    },
    /// Report cache entry/hit/miss counters.
    CacheStats {
        /// Client-chosen correlation id.
        id: String,
    },
    /// Stop the server after acknowledging.
    Shutdown {
        /// Client-chosen correlation id.
        id: String,
    },
}

/// The sweep-shaped fields shared by `sweep` and `report` requests.  Empty
/// vectors mean "axis not swept" (the engine's defaults apply).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSpec {
    /// Display name of the sweep.
    pub name: String,
    /// Workload names (default: all seven Table 2 workloads).
    pub workloads: Option<Vec<String>>,
    /// Compared-system catalog names (default: `cc-numa`, `migrep`,
    /// `r-numa`).
    pub systems: Vec<String>,
    /// Baseline catalog name (default `perfect-cc-numa`).
    pub baseline: Option<String>,
    /// Scale labels (default `["reduced"]`).
    pub scales: Vec<String>,
    /// Cluster-node axis.
    pub nodes: Vec<u16>,
    /// Processors-per-node axis.
    pub procs_per_node: Vec<u16>,
    /// Page-size axis (bytes).
    pub page_bytes: Vec<u64>,
    /// Block-size axis (bytes).
    pub block_bytes: Vec<u64>,
    /// Cost-model axis (catalog names).
    pub costs: Vec<String>,
    /// R-NUMA relocation-delay axis.
    pub relocation_delays: Vec<u64>,
    /// Worker threads (default: the server's configured count).
    pub threads: Option<usize>,
    /// Per-simulation shard workers (`0` = auto; default: the server's
    /// configured count).  Simulation results are bit-identical at any
    /// worker count.
    pub workers: Option<usize>,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse(line)?;
        let id = v.get_str("id").unwrap_or("").to_string();
        match v.get_str("kind") {
            Some("sweep") => Ok(Request::Sweep {
                id,
                spec: SweepSpec::from_value(&v)?,
            }),
            Some("report") => Ok(Request::Report {
                id,
                spec: SweepSpec::from_value(&v)?,
                rows: v.get_str("rows").unwrap_or("system").to_string(),
                cols: v.get_str("cols").unwrap_or("workload").to_string(),
                metric: v.get_str("metric").unwrap_or("normalized_time").to_string(),
            }),
            Some("trend") => Ok(Request::Trend {
                id,
                dir: v.get_str("dir").unwrap_or(".").to_string(),
            }),
            Some("cache-stats") => Ok(Request::CacheStats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some(other) => Err(format!(
                "unknown request kind `{other}` \
                 (known: sweep, report, trend, cache-stats, shutdown)"
            )),
            None => Err("request needs a string `kind` field".to_string()),
        }
    }

    /// The request's correlation id.
    pub fn id(&self) -> &str {
        match self {
            Request::Sweep { id, .. }
            | Request::Report { id, .. }
            | Request::Trend { id, .. }
            | Request::CacheStats { id }
            | Request::Shutdown { id } => id,
        }
    }
}

impl SweepSpec {
    fn from_value(v: &Value) -> Result<SweepSpec, String> {
        let u16_list = |key: &str| -> Result<Vec<u16>, String> {
            v.get_u64_list(key)?
                .unwrap_or_default()
                .into_iter()
                .map(|n| u16::try_from(n).map_err(|_| format!("`{key}` value {n} is out of range")))
                .collect()
        };
        let mut scales = v.get_str_list("scales")?.unwrap_or_default();
        if let Some(one) = v.get_str("scale") {
            scales.insert(0, one.to_string());
        }
        Ok(SweepSpec {
            name: v.get_str("name").unwrap_or("service sweep").to_string(),
            workloads: v.get_str_list("workloads")?,
            systems: v.get_str_list("systems")?.unwrap_or_else(|| {
                vec![
                    "cc-numa".to_string(),
                    "migrep".to_string(),
                    "r-numa".to_string(),
                ]
            }),
            baseline: v.get_str("baseline").map(str::to_string),
            scales,
            nodes: u16_list("nodes")?,
            procs_per_node: u16_list("procs_per_node")?,
            page_bytes: v.get_u64_list("page_bytes")?.unwrap_or_default(),
            block_bytes: v.get_u64_list("block_bytes")?.unwrap_or_default(),
            costs: v.get_str_list("costs")?.unwrap_or_default(),
            relocation_delays: v.get_u64_list("relocation_delays")?.unwrap_or_default(),
            threads: v.get_u64("threads").map(|n| n as usize),
            workers: v.get_u64("workers").map(|n| n as usize),
        })
    }
}

/// Render an `error` response.
pub fn error_line(id: &str, message: &str) -> String {
    format!(
        r#"{{"kind":"error","id":"{}","message":"{}"}}"#,
        escape(id),
        escape(message)
    )
}

/// Render the `ok` acknowledgement (shutdown).
pub fn ok_line(id: &str) -> String {
    format!(r#"{{"kind":"ok","id":"{}"}}"#, escape(id))
}

/// Render one streamed job completion (`baseline` or `point`).
pub fn event_line(id: &str, event: &SweepEvent<'_>) -> String {
    let (kind, index, point, normalized, elapsed) = match event {
        SweepEvent::Baseline {
            index,
            point,
            elapsed_seconds,
            ..
        } => ("baseline", *index, *point, None, *elapsed_seconds),
        SweepEvent::Point {
            index,
            point,
            normalized_time,
            elapsed_seconds,
            ..
        } => (
            "point",
            *index,
            *point,
            Some(*normalized_time),
            *elapsed_seconds,
        ),
    };
    let result = event.result();
    let a = &point.axes;
    let normalized = normalized
        .map(|n| format!("{n:.6}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        concat!(
            r#"{{"kind":"{kind}","id":"{id}","index":{index},"cached":{cached},"#,
            r#""cache_key":"{key}","fingerprint":"{fp:#018x}","#,
            r#""workload":"{workload}","system":"{system}","#,
            r#""nodes":{nodes},"procs_per_node":{ppn},"page_bytes":{page},"#,
            r#""block_bytes":{block},"cost":"{cost}","scale":"{scale}","#,
            r#""normalized_time":{normalized},"execution_time":{exec},"#,
            r#""accesses":{accesses},"elapsed_seconds":{elapsed:.6}}}"#
        ),
        kind = kind,
        id = escape(id),
        index = index,
        cached = event.cached(),
        key = event.cache_key(),
        fp = result.fingerprint(),
        workload = escape(&a.workload),
        system = escape(&a.system),
        nodes = a.nodes,
        ppn = a.procs_per_node,
        page = a.page_bytes,
        block = a.block_bytes,
        cost = escape(&a.cost),
        scale = escape(&a.scale),
        normalized = normalized,
        exec = result.execution_time.raw(),
        accesses = result.accesses,
        elapsed = elapsed,
    )
}

/// Per-request job accounting for the terminal `sweep-done` object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Compared points completed.
    pub points: usize,
    /// Baseline jobs completed.
    pub baselines: usize,
    /// Jobs served from the cache.
    pub cached: usize,
    /// Jobs that actually simulated.
    pub simulated: usize,
}

/// Render the terminal `sweep-done` response.
pub fn sweep_done_line(id: &str, name: &str, counts: SweepCounts, elapsed_seconds: f64) -> String {
    format!(
        concat!(
            r#"{{"kind":"sweep-done","id":"{}","name":"{}","points":{},"baselines":{},"#,
            r#""cached":{},"simulated":{},"elapsed_seconds":{:.6}}}"#
        ),
        escape(id),
        escape(name),
        counts.points,
        counts.baselines,
        counts.cached,
        counts.simulated,
        elapsed_seconds,
    )
}

/// Render the terminal `report` response (table/listing/csv are the
/// rendered artifacts of `dsm_bench::report`).
pub fn report_line(id: &str, table: &str, listing: &str, csv: &str) -> String {
    format!(
        r#"{{"kind":"report","id":"{}","table":"{}","listing":"{}","csv":"{}"}}"#,
        escape(id),
        escape(table),
        escape(listing),
        escape(csv)
    )
}

/// Render the terminal `trend` response.
pub fn trend_line(id: &str, dir: &str, entries: usize, text: &str) -> String {
    format!(
        r#"{{"kind":"trend","id":"{}","dir":"{}","entries":{},"text":"{}"}}"#,
        escape(id),
        escape(dir),
        entries,
        escape(text)
    )
}

/// Render the terminal `cache-stats` response.
pub fn cache_stats_line(id: &str, stats: &CacheStats) -> String {
    let path = match &stats.path {
        Some(p) => format!("\"{}\"", escape(&p.display().to_string())),
        None => "null".to_string(),
    };
    format!(
        r#"{{"kind":"cache-stats","id":"{}","entries":{},"hits":{},"misses":{},"path":{}}}"#,
        escape(id),
        stats.entries,
        stats.hits,
        stats.misses,
        path
    )
}

/// `true` if a response line of this kind ends a request's stream.
pub fn is_terminal_kind(kind: &str) -> bool {
    matches!(
        kind,
        "sweep-done" | "report" | "trend" | "cache-stats" | "ok" | "error"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_requests_parse_with_defaults_and_overrides() {
        let r = Request::parse(r#"{"kind":"sweep","id":"s1"}"#).unwrap();
        let Request::Sweep { id, spec } = r else {
            panic!("expected sweep")
        };
        assert_eq!(id, "s1");
        assert_eq!(spec.systems, vec!["cc-numa", "migrep", "r-numa"]);
        assert_eq!(spec.workloads, None);
        assert_eq!(spec.baseline, None);
        assert!(spec.scales.is_empty());
        assert_eq!(spec.threads, None);
        assert_eq!(spec.workers, None);

        let r = Request::parse(
            r#"{"kind":"sweep","id":"s2","name":"grid","workloads":["lu"],
                "systems":["cc-numa"],"baseline":"perfect-cc-numa","scale":"x1/32",
                "nodes":[2,4],"procs_per_node":[2],"page_bytes":[2048,4096],
                "block_bytes":[64],"costs":["base","slow"],
                "relocation_delays":[0,2000],"threads":4,"workers":2}"#,
        )
        .unwrap();
        let Request::Sweep { spec, .. } = r else {
            panic!("expected sweep")
        };
        assert_eq!(spec.name, "grid");
        assert_eq!(spec.workloads.as_deref(), Some(&["lu".to_string()][..]));
        assert_eq!(spec.scales, vec!["x1/32"]);
        assert_eq!(spec.nodes, vec![2, 4]);
        assert_eq!(spec.page_bytes, vec![2048, 4096]);
        assert_eq!(spec.costs, vec!["base", "slow"]);
        assert_eq!(spec.relocation_delays, vec![0, 2000]);
        assert_eq!(spec.threads, Some(4));
        assert_eq!(spec.workers, Some(2));
    }

    #[test]
    fn other_request_kinds_parse() {
        assert_eq!(
            Request::parse(r#"{"kind":"trend","id":"t","dir":"/tmp"}"#).unwrap(),
            Request::Trend {
                id: "t".to_string(),
                dir: "/tmp".to_string()
            }
        );
        assert_eq!(
            Request::parse(r#"{"kind":"trend"}"#).unwrap(),
            Request::Trend {
                id: String::new(),
                dir: ".".to_string()
            }
        );
        assert_eq!(
            Request::parse(r#"{"kind":"cache-stats","id":"c"}"#).unwrap(),
            Request::CacheStats {
                id: "c".to_string()
            }
        );
        assert_eq!(
            Request::parse(r#"{"kind":"shutdown","id":"x"}"#).unwrap(),
            Request::Shutdown {
                id: "x".to_string()
            }
        );
        let Request::Report {
            rows, cols, metric, ..
        } = Request::parse(r#"{"kind":"report","rows":"nodes","metric":"network_bytes"}"#).unwrap()
        else {
            panic!("expected report")
        };
        assert_eq!((rows.as_str(), cols.as_str()), ("nodes", "workload"));
        assert_eq!(metric, "network_bytes");
    }

    #[test]
    fn bad_requests_are_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"id":"x"}"#).is_err());
        assert!(Request::parse(r#"{"kind":"frobnicate"}"#).is_err());
        assert!(Request::parse(r#"{"kind":"sweep","nodes":[70000]}"#).is_err());
        assert!(Request::parse(r#"{"kind":"sweep","nodes":"2"}"#).is_err());
        assert!(Request::parse(r#"{"kind":"sweep","systems":[1]}"#).is_err());
    }

    #[test]
    fn response_lines_are_valid_json_with_the_request_id() {
        use crate::json::parse;
        let err = error_line("q\"1", "bad \"name\"");
        let v = parse(&err).unwrap();
        assert_eq!(v.get_str("kind"), Some("error"));
        assert_eq!(v.get_str("id"), Some("q\"1"));
        assert_eq!(v.get_str("message"), Some("bad \"name\""));

        let done = sweep_done_line(
            "s",
            "grid",
            SweepCounts {
                points: 4,
                baselines: 2,
                cached: 6,
                simulated: 0,
            },
            0.25,
        );
        let v = parse(&done).unwrap();
        assert_eq!(v.get_u64("points"), Some(4));
        assert_eq!(v.get_u64("cached"), Some(6));
        assert!(is_terminal_kind(v.get_str("kind").unwrap()));

        let stats = cache_stats_line(
            "c",
            &CacheStats {
                entries: 3,
                hits: 2,
                misses: 1,
                path: None,
            },
        );
        let v = parse(&stats).unwrap();
        assert_eq!(v.get_u64("entries"), Some(3));
        assert_eq!(v.get("path"), Some(&crate::json::Value::Null));

        assert!(is_terminal_kind("ok"));
        assert!(is_terminal_kind("report"));
        assert!(!is_terminal_kind("point"));
        assert!(!is_terminal_kind("baseline"));
    }
}
