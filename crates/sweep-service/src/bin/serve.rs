//! `serve` — the sweep server (and its line-mode client).
//!
//! Server mode (default): answer JSON-lines requests from stdin, or from a
//! Unix domain socket with `--socket`.  With `--cache FILE` every simulated
//! point persists to a content-addressed cache file and is served from
//! memory on re-request — across clients and across server restarts.
//!
//! Client mode: `serve --connect PATH --request '<json>'` sends one request
//! to a running server and prints each response line as it streams back.

use std::process::ExitCode;

use dsm_bench::CliError;
use sweep_service::cli::{ServeOptions, USAGE};
use sweep_service::{send_request, serve_stdio, serve_unix, ResultCache, SweepService};

fn main() -> ExitCode {
    let opts = match ServeOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(CliError::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(server) = &opts.connect {
        let request = opts
            .request
            .as_deref()
            .unwrap_or(r#"{"kind":"cache-stats"}"#);
        return match send_request(server, request) {
            Ok(lines) => {
                let mut failed = false;
                for line in &lines {
                    println!("{line}");
                    failed |= line.starts_with(r#"{"kind":"error""#);
                }
                if failed {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("error: talking to {}: {e}", server.display());
                ExitCode::from(2)
            }
        };
    }

    let cache = match &opts.cache {
        Some(path) => match ResultCache::open(path) {
            Ok(c) => {
                eprintln!("serve: cache {} ({} entries)", path.display(), c.len());
                c
            }
            Err(e) => {
                eprintln!("error: opening cache {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => ResultCache::in_memory(),
    };
    let service = SweepService::with_workers(cache, opts.threads, opts.workers);

    let served = match &opts.socket {
        Some(path) => {
            eprintln!("serve: listening on {}", path.display());
            serve_unix(&service, path)
        }
        None => serve_stdio(&service).map(|_| ()),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
