//! `sweep-service` — a long-running sweep server with a content-addressed
//! result cache.
//!
//! The experiment binaries regenerate one figure per process; parameter
//! studies re-simulate every point on every invocation.  This crate turns
//! the sweep engine ([`dsm_bench::Sweep`]) into a *service*: a `serve`
//! process accepts sweep requests as JSON lines (over stdio or a Unix
//! domain socket), streams each point's result the moment its simulation
//! completes, and memoizes every completed job in a [`cache::ResultCache`]
//! keyed by the job's content address ([`dsm_bench::CacheKey`] — a stable
//! digest of workload + scale, machine geometry, system configuration,
//! cost model and thresholds).  Simulation is deterministic, so a cache
//! hit is bit-identical to a fresh run; backed by a cache file, hits
//! survive server restarts and are shared across clients.
//!
//! ```text
//! $ serve --socket /tmp/dsm.sock --cache results.cache &
//! $ serve --connect /tmp/dsm.sock --request \
//!     '{"kind":"sweep","id":"g1","workloads":["lu"],"systems":["cc-numa","r-numa"],
//!       "nodes":[2,4],"page_bytes":[2048,4096]}'
//! {"kind":"baseline","id":"g1","index":0,"cached":false,...}
//! {"kind":"point","id":"g1","index":0,"cached":false,"normalized_time":1.27,...}
//! ...
//! {"kind":"sweep-done","id":"g1","points":8,"baselines":4,"cached":0,"simulated":12,...}
//! ```
//!
//! Re-submitting the same request — to the same server or to a restarted
//! one sharing the cache file — answers every point from the cache
//! (`"cached":true`, `"simulated":0`) with identical fingerprints.  See
//! the repository README ("Sweep service") for the protocol reference.

pub mod cache;
pub mod catalog;
pub mod cli;
pub mod json;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{CacheStats, ResultCache};
pub use cli::ServeOptions;
pub use proto::{Request, SweepSpec};
pub use server::{send_request, serve_stdio, serve_stream, serve_unix};
pub use service::{Action, SweepService};
