//! Transports: JSON-lines over stdio and over a Unix domain socket.
//!
//! Both transports drive the same [`SweepService::handle_line`] loop: read
//! one request line, write every response line (flushing per line so
//! clients see jobs stream in as they complete), repeat until EOF or a
//! `shutdown` request.  The socket server accepts one connection at a time
//! — requests are simulation-bound and the sweep engine already spreads one
//! request across every core, so interleaving connections would only slow
//! both down.  The cache persists across connections (and across server
//! restarts, when backed by a file).

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use crate::proto::is_terminal_kind;
use crate::service::{Action, SweepService};

/// Serve every request line of `reader`, writing responses to `writer`
/// (flushed per line).  Returns the action that ended the loop:
/// [`Action::Shutdown`] for a shutdown request, [`Action::Continue`] for
/// EOF.
pub fn serve_stream<R, W>(service: &SweepService, reader: R, writer: &mut W) -> io::Result<Action>
where
    R: BufRead,
    W: Write + Send,
{
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut write_error = None;
        let mut emit = |response: String| {
            if write_error.is_none() {
                let attempt = writeln!(writer, "{response}").and_then(|()| writer.flush());
                if let Err(e) = attempt {
                    write_error = Some(e);
                }
            }
        };
        let action = service.handle_line(&line, &mut emit);
        if let Some(e) = write_error {
            return Err(e);
        }
        if action == Action::Shutdown {
            return Ok(Action::Shutdown);
        }
    }
    Ok(Action::Continue)
}

/// Serve requests from stdin to stdout until EOF or shutdown.
pub fn serve_stdio(service: &SweepService) -> io::Result<Action> {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    serve_stream(service, stdin.lock(), &mut stdout)
}

/// Serve connections on a Unix domain socket at `path` until a client
/// sends `shutdown`.  A stale socket file from a dead server is replaced;
/// the file is removed again on clean shutdown.  Connections are served
/// one at a time; a client disconnecting mid-response only ends its own
/// connection.
pub fn serve_unix(service: &SweepService, path: &Path) -> io::Result<()> {
    // Binding over a stale socket fails with AddrInUse even though nobody
    // is listening; remove the file first.  A *live* server would be
    // stomped too — callers pick per-server socket paths.
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(path)?;
    let mut outcome = Ok(());
    for connection in listener.incoming() {
        let stream = match connection {
            Ok(s) => s,
            Err(_) => continue, // one failed accept is not fatal
        };
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => continue,
        };
        let mut writer = stream;
        match serve_stream(service, reader, &mut writer) {
            Ok(Action::Shutdown) => break,
            Ok(Action::Continue) => {} // client hung up; await the next one
            Err(_) => {}               // broken pipe mid-response; same
        }
    }
    if let Err(e) = std::fs::remove_file(path) {
        if e.kind() != io::ErrorKind::NotFound {
            outcome = Err(e);
        }
    }
    outcome
}

/// Client side: connect to the socket at `path`, send one request line,
/// and collect every response line up to and including the terminal one.
pub fn send_request(path: &Path, request: &str) -> io::Result<Vec<String>> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut responses = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let terminal = crate::json::parse(&line)
            .ok()
            .and_then(|v| v.get_str("kind").map(is_terminal_kind))
            .unwrap_or(false);
        responses.push(line);
        if terminal {
            return Ok(responses);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection before a terminal response",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn stdio_style_stream_serves_multiple_requests() {
        let service = SweepService::in_memory();
        let input = concat!(
            r#"{"kind":"cache-stats","id":"a"}"#,
            "\n\n", // blank lines are ignored
            r#"{"kind":"cache-stats","id":"b"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let action = serve_stream(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(action, Action::Continue, "EOF ends the loop");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse(lines[0]).unwrap().get_str("id"), Some("a"));
        assert_eq!(parse(lines[1]).unwrap().get_str("id"), Some("b"));
    }

    #[test]
    fn shutdown_stops_the_stream_loop_after_acknowledging() {
        let service = SweepService::in_memory();
        let input = concat!(
            r#"{"kind":"shutdown","id":"s"}"#,
            "\n",
            r#"{"kind":"cache-stats","id":"never"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let action = serve_stream(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(action, Action::Shutdown);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "nothing served after shutdown");
        assert_eq!(
            parse(out.lines().next().unwrap()).unwrap().get_str("kind"),
            Some("ok")
        );
    }

    #[test]
    fn unix_socket_round_trips_requests_and_persists_the_cache_across_connections() {
        let dir = std::env::temp_dir().join(format!("dsm-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("server.sock");
        // A stale file at the socket path must not prevent binding.
        std::fs::write(&socket, "stale").unwrap();

        let service = SweepService::in_memory();
        // Request lines must be single lines — the protocol is JSON-lines.
        let sweep = concat!(
            r#"{"kind":"sweep","id":"u1","workloads":["ocean"],"systems":["cc-numa"],"#,
            r#""scale":"x1/32","nodes":[2],"procs_per_node":[2],"threads":2}"#
        );
        // Collect inside the scope, assert outside: a panic inside the
        // scope would block forever joining a server that never got its
        // shutdown request.
        let (cold, warm, bye, server) = std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve_unix(&service, &socket));
            // The server binds asynchronously; retry the first connect.
            let mut cold = None;
            for _ in 0..100 {
                match send_request(&socket, sweep) {
                    Ok(r) => {
                        cold = Some(r);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
                }
            }
            // Second connection: served entirely from the cache.
            let warm = cold
                .as_ref()
                .and_then(|_| send_request(&socket, sweep).ok());
            // Always attempt the shutdown so the server thread can exit
            // even when the earlier requests misbehaved.
            let bye = send_request(&socket, r#"{"kind":"shutdown","id":"z"}"#).ok();
            (cold, warm, bye, handle.join().expect("server thread"))
        });
        server.expect("server exits cleanly");

        let cold = cold.expect("server came up");
        assert_eq!(cold.len(), 3, "{cold:?}");
        let done = parse(cold.last().unwrap()).unwrap();
        assert_eq!(done.get_str("kind"), Some("sweep-done"));
        assert_eq!(done.get_u64("simulated"), Some(2));

        let warm = warm.expect("warm resubmission answered");
        let done = parse(warm.last().unwrap()).unwrap();
        assert_eq!(done.get_u64("cached"), Some(2));
        assert_eq!(done.get_u64("simulated"), Some(0));

        let bye = bye.expect("shutdown acknowledged");
        assert_eq!(parse(&bye[0]).unwrap().get_str("kind"), Some("ok"));
        assert!(!socket.exists(), "socket file removed on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
