//! Flag parsing for the `serve` binary, following the experiment
//! binaries' conventions (`dsm_bench::cli`): `--help`/`-h` exits 0 with
//! usage, unknown flags and bad values exit 2 naming the flag, and a
//! flag's value may not itself look like a flag.

use std::path::PathBuf;

use dsm_bench::cli::parse_workers;
use dsm_bench::CliError;

/// Usage text printed by `--help` and pointed to by flag errors.
pub const USAGE: &str = "\
usage: serve [OPTIONS]

Long-running sweep server: accepts JSON-lines requests (kinds: sweep,
report, trend, cache-stats, shutdown), streams per-job results as they
complete, and serves repeated points from a content-addressed result
cache.

options:
  --socket PATH   listen on a Unix domain socket at PATH (default: serve
                  requests from stdin to stdout)
  --cache FILE    persist the result cache to FILE; results survive
                  restarts and are shared by every client of the file
  --threads N     default simulation worker threads per request (requests
                  may override with their own \"threads\" field)
  --workers N     default per-simulation shard workers per request
                  (`auto` = available cores, default 1 = serial; requests
                  may override with their own \"workers\" field); results
                  are bit-identical at any worker count
  --connect PATH  client mode: send one request to the server listening at
                  PATH and print its response lines
  --request JSON  the request line to send in client mode (default:
                  {\"kind\":\"cache-stats\"})
  -h, --help      print this help and exit";

/// Parsed `serve` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen on this Unix socket instead of stdio.
    pub socket: Option<PathBuf>,
    /// Persist the cache to this file.
    pub cache: Option<PathBuf>,
    /// Default worker threads (`0` = the engine's per-core default).
    pub threads: usize,
    /// Default per-simulation shard workers (`0` = auto, `1` = serial).
    pub workers: usize,
    /// Client mode: connect to the server at this socket.
    pub connect: Option<PathBuf>,
    /// Client mode: the request line to send.
    pub request: Option<String>,
}

impl ServeOptions {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ServeOptions, CliError> {
        let mut opts = ServeOptions {
            socket: None,
            cache: None,
            threads: 0,
            workers: 1,
            connect: None,
            request: None,
        };
        let mut iter = args.into_iter();
        let value_of = |iter: &mut I::IntoIter, flag: &str| -> Result<String, CliError> {
            match iter.next() {
                Some(v) if !v.starts_with('-') => Ok(v),
                _ => Err(CliError::BadValue(format!("flag `{flag}` needs a value"))),
            }
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--socket" => opts.socket = Some(PathBuf::from(value_of(&mut iter, "--socket")?)),
                "--cache" => opts.cache = Some(PathBuf::from(value_of(&mut iter, "--cache")?)),
                "--threads" => {
                    let v = value_of(&mut iter, "--threads")?;
                    opts.threads = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::BadValue(format!("bad value `{v}` for `--threads`"))
                    })?;
                }
                "--workers" => {
                    opts.workers = parse_workers(&value_of(&mut iter, "--workers")?)?;
                }
                "--connect" => {
                    opts.connect = Some(PathBuf::from(value_of(&mut iter, "--connect")?));
                }
                "--request" => opts.request = Some(value_of(&mut iter, "--request")?),
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
        }
        if opts.request.is_some() && opts.connect.is_none() {
            return Err(CliError::BadValue(
                "`--request` only makes sense with `--connect`".to_string(),
            ));
        }
        if opts.connect.is_some() && (opts.socket.is_some() || opts.cache.is_some()) {
            return Err(CliError::BadValue(
                "`--connect` is client mode and cannot be combined with \
                 `--socket` or `--cache`"
                    .to_string(),
            ));
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOptions, CliError> {
        ServeOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_serve_stdio_with_an_in_memory_cache() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.socket, None);
        assert_eq!(o.cache, None);
        assert_eq!(o.threads, 0);
        assert_eq!(o.workers, 1, "default is the exact serial path");
        assert_eq!(o.connect, None);
    }

    #[test]
    fn server_flags_parse() {
        let o = parse(&[
            "--socket",
            "/tmp/s.sock",
            "--cache",
            "r.cache",
            "--threads",
            "4",
            "--workers",
            "2",
        ])
        .unwrap();
        assert_eq!(o.socket, Some(PathBuf::from("/tmp/s.sock")));
        assert_eq!(o.cache, Some(PathBuf::from("r.cache")));
        assert_eq!(o.threads, 4);
        assert_eq!(o.workers, 2);
        assert_eq!(parse(&["--workers", "auto"]).unwrap().workers, 0);
    }

    #[test]
    fn client_mode_parses_and_rejects_server_flags() {
        let o = parse(&[
            "--connect",
            "/tmp/s.sock",
            "--request",
            r#"{"kind":"shutdown"}"#,
        ])
        .unwrap();
        assert_eq!(o.connect, Some(PathBuf::from("/tmp/s.sock")));
        assert_eq!(o.request.as_deref(), Some(r#"{"kind":"shutdown"}"#));
        assert!(
            parse(&["--request", "{}"]).is_err(),
            "--request needs --connect"
        );
        assert!(parse(&["--connect", "s", "--socket", "s"]).is_err());
        assert!(parse(&["--connect", "s", "--cache", "c"]).is_err());
    }

    #[test]
    fn errors_follow_the_experiment_binary_conventions() {
        assert!(matches!(parse(&["--help"]), Err(CliError::Help)));
        assert!(matches!(parse(&["-h"]), Err(CliError::Help)));
        assert!(matches!(
            parse(&["--bogus"]),
            Err(CliError::UnknownFlag(f)) if f == "--bogus"
        ));
        // A missing value must not swallow the next flag.
        assert!(matches!(
            parse(&["--socket", "--cache"]),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse(&["--threads", "x"]),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse(&["--workers", "x"]),
            Err(CliError::BadValue(_))
        ));
    }
}
