//! The content-addressed result cache.
//!
//! Every sweep job is addressed by its [`CacheKey`] — a stable digest of
//! (workload + scale, machine geometry/topology, system configuration,
//! cost model, thresholds; see `dsm_bench::cache_key`).  Simulation is
//! deterministic, so equal keys mean bit-identical [`SimResult`]s, and a
//! stored result can substitute for a run outright.  The cache persists
//! results to an append-only text file so they survive server restarts and
//! are shared by every client of the same cache file.
//!
//! # File format (`# dsm-sweep-cache v1`)
//!
//! One header line, then one line per entry:
//!
//! ```text
//! <key:32hex> <fingerprint:16hex> <system> <workload> <exec> <accesses>
//!   <barriers> <nodes> <14 counters per node>... <10 messages> <10 bytes>
//! ```
//!
//! All fields are space-separated on a single line; `system` and `workload`
//! are percent-escaped so they cannot contain separators.  Entries are
//! verified on load: a line whose re-computed [`SimResult::fingerprint`]
//! does not match its stored fingerprint (truncated write, hand edit,
//! format drift) is dropped, never served.  A file with an unknown header
//! is left untouched and the cache starts empty against a fresh path.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use dsm_bench::CacheKey;
use dsm_core::{NodeStats, SimResult};
use dsm_protocol::{MsgKind, TrafficStats};
use sim_engine::Cycles;

/// Header line identifying the cache-file format.
pub const CACHE_HEADER: &str = "# dsm-sweep-cache v1";

/// An in-memory result cache, optionally backed by an append-only file.
#[derive(Debug)]
pub struct ResultCache {
    // Ordered map: cache contents feed service responses, and an ordered
    // container keeps every observable path free of iteration-order
    // nondeterminism (the same policy the sim crates follow).
    entries: BTreeMap<CacheKey, SimResult>,
    path: Option<PathBuf>,
    file: Option<File>,
    hits: u64,
    misses: u64,
}

/// A point-in-time view of the cache counters (the `cache-stats` response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct results held.
    pub entries: usize,
    /// Lifetime lookup hits (since this process opened the cache).
    pub hits: u64,
    /// Lifetime lookup misses.
    pub misses: u64,
    /// Backing file, if persistent.
    pub path: Option<PathBuf>,
}

impl ResultCache {
    /// A cache with no backing file (results live for the process only).
    pub fn in_memory() -> Self {
        ResultCache {
            entries: BTreeMap::new(),
            path: None,
            file: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Open (or create) a persistent cache at `path`.  Existing entries are
    /// loaded and fingerprint-verified; corrupt lines are skipped.  New
    /// inserts append to the file immediately, so results survive even an
    /// unclean shutdown.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut entries = BTreeMap::new();
        match File::open(&path) {
            Ok(f) => load_entries(BufReader::new(f), &mut entries)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{CACHE_HEADER}")?;
        }
        Ok(ResultCache {
            entries,
            path: Some(path),
            file: Some(file),
            hits: 0,
            misses: 0,
        })
    }

    /// Look up `key`, counting the hit or miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<SimResult> {
        match self.entries.get(&key) {
            Some(r) => {
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// `true` if `key` is cached (no counter effect).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Store `result` under `key`, appending to the backing file.  A key
    /// already present is left as-is (equal keys mean equal results, so
    /// re-writing would only duplicate the file line).
    pub fn insert(&mut self, key: CacheKey, result: &SimResult) {
        if self.entries.contains_key(&key) {
            return;
        }
        if let Some(file) = &mut self.file {
            // An append failure (disk full, file deleted) degrades to
            // in-memory caching for this entry; the in-memory copy still
            // serves this process.
            let _ = writeln!(file, "{}", encode_entry(key, result));
        }
        self.entries.insert(key, result.clone());
    }

    /// Distinct results held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no results are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            hits: self.hits,
            misses: self.misses,
            path: self.path.clone(),
        }
    }
}

fn load_entries(
    reader: impl BufRead,
    entries: &mut BTreeMap<CacheKey, SimResult>,
) -> io::Result<()> {
    let mut lines = reader.lines();
    match lines.next() {
        // Unknown header: a different format (or not a cache file at all).
        // Serving nothing is always safe; appends will extend the file with
        // v1 lines, which a future loader with a different header ignores
        // wholesale — so refuse to adopt the file instead.
        Some(Ok(header)) if header.trim_end() != CACHE_HEADER => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not a dsm-sweep-cache file (header `{header}`)"),
            ));
        }
        Some(Err(e)) => return Err(e),
        _ => {}
    }
    for line in lines {
        let line = line?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, result)) = decode_entry(&line) {
            entries.insert(key, result);
        }
        // A line that fails to decode or verify is dropped silently: the
        // cache is a pure accelerator, and the worst case of dropping is
        // re-simulating one point.
    }
    Ok(())
}

fn encode_entry(key: CacheKey, r: &SimResult) -> String {
    let mut out = format!(
        "{} {:016x} {} {} {} {} {} {}",
        key.to_hex(),
        r.fingerprint(),
        escape_field(&r.system),
        escape_field(&r.workload),
        r.execution_time.raw(),
        r.accesses,
        r.barriers,
        r.per_node.len(),
    );
    for n in &r.per_node {
        for v in node_counters(n) {
            out.push(' ');
            out.push_str(&v.to_string());
        }
    }
    for kind in MsgKind::ALL {
        out.push(' ');
        out.push_str(&r.traffic.messages_of(kind).to_string());
    }
    for kind in MsgKind::ALL {
        out.push(' ');
        out.push_str(&r.traffic.bytes_of(kind).to_string());
    }
    out
}

fn decode_entry(line: &str) -> Option<(CacheKey, SimResult)> {
    let mut fields = line.split_ascii_whitespace();
    let key = CacheKey::from_hex(fields.next()?)?;
    let fingerprint = u64::from_str_radix(fields.next()?, 16).ok()?;
    let system = unescape_field(fields.next()?)?;
    let workload = unescape_field(fields.next()?)?;
    let mut num = move || fields.next()?.parse::<u64>().ok();
    let execution_time = Cycles::new(num()?);
    let accesses = num()?;
    let barriers = num()?;
    let nodes = num()?;
    // A node count beyond any real cluster means a corrupt line; bail
    // before trying to allocate for it.
    if nodes > 1 << 20 {
        return None;
    }
    let mut per_node = Vec::with_capacity(nodes as usize);
    for _ in 0..nodes {
        per_node.push(NodeStats {
            l1_hits: num()?,
            local_misses: num()?,
            remote_misses: num()?,
            remote_capacity_misses: num()?,
            cold_misses: num()?,
            coherence_misses: num()?,
            capacity_conflict_misses: num()?,
            migrations: num()?,
            replications: num()?,
            relocations: num()?,
            page_cache_replacements: num()?,
            switches_to_rw: num()?,
            page_op_cycles: Cycles::new(num()?),
            memory_stall_cycles: Cycles::new(num()?),
        });
    }
    let mut messages = [0u64; 10];
    for m in &mut messages {
        *m = num()?;
    }
    let mut bytes = [0u64; 10];
    for b in &mut bytes {
        *b = num()?;
    }
    if num().is_some() {
        return None; // trailing garbage
    }
    let result = SimResult {
        system,
        workload,
        execution_time,
        per_node,
        traffic: TrafficStats::from_counts(messages, bytes),
        accesses,
        barriers,
    };
    // The stored fingerprint must match the result re-derived from the
    // decoded fields — this catches truncated writes, hand edits, and any
    // drift in the entry format itself.
    if result.fingerprint() != fingerprint {
        return None;
    }
    Some((key, result))
}

/// The 14 `NodeStats` counters in [`SimResult::fingerprint`] order.
fn node_counters(n: &NodeStats) -> [u64; 14] {
    [
        n.l1_hits,
        n.local_misses,
        n.remote_misses,
        n.remote_capacity_misses,
        n.cold_misses,
        n.coherence_misses,
        n.capacity_conflict_misses,
        n.migrations,
        n.replications,
        n.relocations,
        n.page_cache_replacements,
        n.switches_to_rw,
        n.page_op_cycles.raw(),
        n.memory_stall_cycles.raw(),
    ]
}

/// Percent-escape a name so it contains no whitespace (fields are
/// space-separated) and no `%` ambiguity.
fn escape_field(s: &str) -> String {
    if s.is_empty() {
        return "%00".to_string(); // an empty field would vanish when split
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_whitespace() || b == b'%' || b < 0x21 {
            out.push_str(&format!("%{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

fn unescape_field(s: &str) -> Option<String> {
    if s == "%00" {
        return Some(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Load and verify every entry of a cache file without opening it for
/// appends (used by tests and tooling).
pub fn read_cache_file(path: &Path) -> io::Result<BTreeMap<CacheKey, SimResult>> {
    let mut entries = BTreeMap::new();
    load_entries(BufReader::new(File::open(path)?), &mut entries)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(seed: u64) -> SimResult {
        let mut traffic = TrafficStats::new();
        for _ in 0..seed % 7 {
            traffic.record(MsgKind::ReadReply);
        }
        traffic.record(MsgKind::PageControl);
        SimResult {
            system: "R-NUMA 1/2".to_string(),
            workload: "lu contig".to_string(),
            execution_time: Cycles::new(1_000 + seed),
            per_node: (0..2)
                .map(|n| NodeStats {
                    l1_hits: seed * 10 + n,
                    remote_misses: 3 * n,
                    page_op_cycles: Cycles::new(seed + n),
                    ..Default::default()
                })
                .collect(),
            traffic,
            accesses: 5_000 + seed,
            barriers: 12,
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey::from_hex(&format!("{:032x}", 0xabc0 + n)).unwrap()
    }

    #[test]
    fn entries_round_trip_through_the_line_format() {
        let r = sample_result(42);
        let line = encode_entry(key(1), &r);
        let (k, decoded) = decode_entry(&line).expect("decodes");
        assert_eq!(k, key(1));
        assert_eq!(decoded, r, "decoded result is bit-identical");
        assert_eq!(decoded.fingerprint(), r.fingerprint());
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let r = sample_result(7);
        let line = encode_entry(key(2), &r);
        // Truncation, trailing garbage, and a flipped counter (fingerprint
        // mismatch) must all fail closed.
        assert!(decode_entry(&line[..line.len() - 4]).is_none());
        assert!(decode_entry(&format!("{line} 99")).is_none());
        let flipped = {
            let mut fields: Vec<String> = line.split(' ').map(str::to_string).collect();
            let last = fields.len() - 1;
            fields[last] = (fields[last].parse::<u64>().unwrap() + 1).to_string();
            fields.join(" ")
        };
        assert!(decode_entry(&flipped).is_none());
        assert!(decode_entry("").is_none());
        assert!(decode_entry("zz nonsense").is_none());
    }

    #[test]
    fn cache_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("dsm-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.cache");
        let _ = std::fs::remove_file(&path);

        let r1 = sample_result(1);
        let r2 = sample_result(2);
        {
            let mut cache = ResultCache::open(&path).unwrap();
            assert!(cache.is_empty());
            assert_eq!(cache.lookup(key(1)), None);
            cache.insert(key(1), &r1);
            cache.insert(key(2), &r2);
            cache.insert(key(1), &r1); // duplicate insert is a no-op
            assert_eq!(cache.len(), 2);
            assert_eq!(cache.lookup(key(1)), Some(r1.clone()));
            let s = cache.stats();
            assert_eq!((s.entries, s.hits, s.misses), (2, 1, 1));
        }
        // A fresh process sees both entries, counters reset.
        let mut cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(key(1)), Some(r1));
        assert_eq!(cache.lookup(key(2)), Some(r2));
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().path.as_deref(), Some(path.as_path()));

        // A truncated final line (simulated crash mid-append) drops only
        // that entry.
        let content = std::fs::read_to_string(&path).unwrap();
        let cut = content.len() - 10;
        std::fs::write(&path, &content[..cut]).unwrap();
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1, "only the damaged entry is lost");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = std::env::temp_dir().join(format!("dsm-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.cache");
        std::fs::write(&path, "not a cache file\n").unwrap();
        assert!(ResultCache::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn name_escaping_round_trips() {
        for name in ["plain", "has space", "pct%sign", "tab\tname", ""] {
            let escaped = escape_field(name);
            assert!(!escaped.contains(' ') && !escaped.contains('\t'));
            assert!(!escaped.is_empty());
            assert_eq!(unescape_field(&escaped).as_deref(), Some(name));
        }
        assert!(unescape_field("%zz").is_none());
        assert!(unescape_field("%2").is_none());
    }

    #[test]
    fn in_memory_cache_counts_without_a_file() {
        let mut cache = ResultCache::in_memory();
        let r = sample_result(9);
        assert!(cache.lookup(key(9)).is_none());
        cache.insert(key(9), &r);
        assert!(cache.contains(key(9)));
        assert_eq!(cache.lookup(key(9)), Some(r));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.path, None);
    }
}
