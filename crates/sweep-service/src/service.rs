//! Request execution: the bridge between the wire protocol and the sweep
//! engine.
//!
//! [`SweepService`] owns the [`ResultCache`] and handles one request at a
//! time, emitting response lines through a caller-supplied sink (stdout,
//! a Unix-socket stream, or a test buffer).  Sweeps run on
//! [`Sweep::run_streaming`]: each job first consults the cache by its
//! content address, each completed job is emitted to the client the moment
//! it finishes, and every freshly simulated result is inserted back into
//! the cache (and its backing file) before the next client could ask for
//! it.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::cache::{CacheStats, ResultCache};
use crate::catalog;
use crate::proto::{
    cache_stats_line, error_line, event_line, ok_line, report_line, sweep_done_line, trend_line,
    Request, SweepCounts, SweepSpec,
};
use dsm_bench::perf::{collect_trend, format_trend};
use dsm_bench::report::{format_sweep_points, format_sweep_table, sweep_to_csv};
use dsm_bench::{ExperimentScale, Sweep, SweepEvent, SweepResult};

/// What the connection loop should do after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Stop the server (a `shutdown` request was acknowledged).
    Shutdown,
}

/// A sweep server: the result cache plus execution defaults.
#[derive(Debug)]
pub struct SweepService {
    cache: Mutex<ResultCache>,
    /// Worker threads for requests that don't choose (`0` = the engine's
    /// default, one per core).
    threads: usize,
    /// Per-simulation shard workers for requests that don't choose (`0` =
    /// auto, `1` = the exact serial path).  Results are bit-identical at
    /// any worker count, so the cache stays valid across settings.
    workers: usize,
}

impl SweepService {
    /// A service over an existing cache.  `threads` = 0 leaves the sweep
    /// engine's per-core default in place.
    pub fn new(cache: ResultCache, threads: usize) -> Self {
        Self::with_workers(cache, threads, 1)
    }

    /// [`SweepService::new`] with a default per-simulation shard worker
    /// count (`0` = auto, `1` = serial).
    pub fn with_workers(cache: ResultCache, threads: usize, workers: usize) -> Self {
        SweepService {
            cache: Mutex::new(cache),
            threads,
            workers,
        }
    }

    /// A service with a process-local (non-persistent) cache.
    pub fn in_memory() -> Self {
        Self::new(ResultCache::in_memory(), 0)
    }

    /// The cache, with poison recovery: a sweep worker that panicked can
    /// only have poisoned the lock *between* whole-entry operations (lookup
    /// and insert don't hold it across user code), so the map itself is
    /// intact and — entries being content-addressed and append-only — at
    /// worst missing one insert.  A long-running server must keep serving;
    /// panicking here would turn one failed request into a dead process.
    fn cache(&self) -> MutexGuard<'_, ResultCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }

    /// Handle one request line, emitting every response line (streamed
    /// events, then exactly one terminal object) through `emit`.
    pub fn handle_line(&self, line: &str, emit: &mut (dyn FnMut(String) + Send)) -> Action {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                // The id is unknown when the line didn't parse at all; fish
                // it out if the JSON was well-formed enough to carry one.
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|v| v.get_str("id").map(str::to_string))
                    .unwrap_or_default();
                emit(error_line(&id, &e));
                return Action::Continue;
            }
        };
        match request {
            Request::Sweep { id, spec } => {
                match self.run_sweep(&id, &spec, emit) {
                    Ok((result, counts, elapsed)) => {
                        emit(sweep_done_line(&id, &result.name, counts, elapsed));
                    }
                    Err(e) => emit(error_line(&id, &e)),
                }
                Action::Continue
            }
            Request::Report {
                id,
                spec,
                rows,
                cols,
                metric,
            } => {
                let mut run = || -> Result<String, String> {
                    // Resolve the pivot before running anything: a typo'd
                    // axis must not cost a sweep.
                    let rows = catalog::axis_by_name(&rows)?;
                    let cols = catalog::axis_by_name(&cols)?;
                    let metric = catalog::metric_by_name(&metric)?;
                    let (result, _, _) = self.run_sweep(&id, &spec, emit)?;
                    Ok(report_line(
                        &id,
                        &format_sweep_table(&result, rows, cols, metric),
                        &format_sweep_points(&result),
                        &sweep_to_csv(&result),
                    ))
                };
                match run() {
                    Ok(line) => emit(line),
                    Err(e) => emit(error_line(&id, &e)),
                }
                Action::Continue
            }
            Request::Trend { id, dir } => {
                match collect_trend(std::path::Path::new(&dir)) {
                    Ok(entries) => emit(trend_line(
                        &id,
                        &dir,
                        entries.len(),
                        &format_trend(&entries),
                    )),
                    Err(e) => emit(error_line(&id, &format!("cannot scan `{dir}`: {e}"))),
                }
                Action::Continue
            }
            Request::CacheStats { id } => {
                emit(cache_stats_line(&id, &self.cache_stats()));
                Action::Continue
            }
            Request::Shutdown { id } => {
                emit(ok_line(&id));
                Action::Shutdown
            }
        }
    }

    /// Build and run one sweep, streaming events, consulting and feeding
    /// the cache.
    fn run_sweep(
        &self,
        id: &str,
        spec: &SweepSpec,
        emit: &mut (dyn FnMut(String) + Send),
    ) -> Result<(SweepResult, SweepCounts, f64), String> {
        let sweep = self.build_sweep(spec)?;
        // dsm-lint: allow(wall-clock, reports request latency to the client; sim time comes from the cost model)
        let start = Instant::now(); // dsm-lint: allow(det-taint, request latency reporting to the client; sim results and fingerprints never derive from it)
        let mut counts = SweepCounts::default();
        let result = sweep.run_streaming(
            |_, key| self.cache().lookup(key),
            |event| {
                if !event.cached() {
                    self.cache().insert(event.cache_key(), event.result());
                }
                match event {
                    SweepEvent::Baseline { .. } => counts.baselines += 1,
                    SweepEvent::Point { .. } => counts.points += 1,
                }
                if event.cached() {
                    counts.cached += 1;
                } else {
                    counts.simulated += 1;
                }
                emit(event_line(id, &event));
            },
        );
        Ok((result, counts, start.elapsed().as_secs_f64()))
    }

    /// Resolve a [`SweepSpec`]'s names against the catalog into a runnable
    /// [`Sweep`].  Every unknown name becomes an `Err` before any job runs.
    fn build_sweep(&self, spec: &SweepSpec) -> Result<Sweep, String> {
        let scale_labels: Vec<&str> = if spec.scales.is_empty() {
            vec!["reduced"]
        } else {
            spec.scales.iter().map(String::as_str).collect()
        };
        let scales = scale_labels
            .iter()
            .map(|l| catalog::parse_scale(l))
            .collect::<Result<Vec<ExperimentScale>, _>>()?;
        // System templates (page cache, thresholds) follow the *first*
        // requested scale; further swept scales rescale the workloads but
        // not the templates.  Documented protocol behaviour — sweep one
        // scale per request when the templates must track the scale.
        let template_scale = scales[0];

        if spec.systems.is_empty() {
            return Err("`systems` must name at least one compared system".to_string());
        }
        let mut sweep = Sweep::new(spec.name.clone()).scales(scales);
        for name in &spec.systems {
            sweep = sweep.system(catalog::system_by_name(name, template_scale)?);
        }
        let baseline = spec.baseline.as_deref().unwrap_or("perfect-cc-numa");
        sweep = sweep.baseline(catalog::system_by_name(baseline, template_scale)?);

        if let Some(workloads) = &spec.workloads {
            if workloads.is_empty() {
                return Err("`workloads` must name at least one workload".to_string());
            }
            for w in workloads {
                if splash_workloads::by_name(w).is_none() {
                    let known = splash_workloads::names().join(", ");
                    return Err(format!("unknown workload `{w}` (known: {known})"));
                }
            }
            sweep = sweep.workloads(workloads.clone());
        }

        if !spec.nodes.is_empty() {
            sweep = sweep.cluster_nodes(spec.nodes.iter().copied());
        }
        if !spec.procs_per_node.is_empty() {
            sweep = sweep.procs_per_node(spec.procs_per_node.iter().copied());
        }
        if !spec.page_bytes.is_empty() {
            sweep = sweep.page_bytes(spec.page_bytes.iter().copied());
        }
        if !spec.block_bytes.is_empty() {
            sweep = sweep.block_bytes(spec.block_bytes.iter().copied());
        }
        for name in &spec.costs {
            sweep = sweep.cost(name.clone(), catalog::cost_by_name(name)?);
        }
        if !spec.relocation_delays.is_empty() {
            sweep = sweep.relocation_delays(spec.relocation_delays.iter().copied());
        }
        match spec.threads {
            Some(t) => sweep = sweep.threads(t),
            None if self.threads > 0 => sweep = sweep.threads(self.threads),
            None => {}
        }
        sweep = sweep.workers(spec.workers.unwrap_or(self.workers));
        Ok(sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// A sweep small enough for unit tests: one workload at 1/32 of the
    /// paper's data sets on a 2x2-machine grid point.
    const TINY: &str = r#"{"kind":"sweep","id":"t1","name":"tiny","workloads":["ocean"],
        "systems":["cc-numa"],"scale":"x1/32","nodes":[2],"procs_per_node":[2],"threads":2}"#;

    fn collect(service: &SweepService, line: &str) -> (Vec<String>, Action) {
        let mut lines = Vec::new();
        let action = service.handle_line(line, &mut |l| lines.push(l));
        (lines, action)
    }

    #[test]
    fn sweep_streams_jobs_then_a_terminal_and_caches_the_results() {
        let service = SweepService::in_memory();
        let (lines, action) = collect(&service, TINY);
        assert_eq!(action, Action::Continue);
        assert_eq!(lines.len(), 3, "baseline + point + sweep-done: {lines:?}");
        let kinds: Vec<String> = lines
            .iter()
            .map(|l| parse(l).unwrap().get_str("kind").unwrap().to_string())
            .collect();
        assert_eq!(kinds, vec!["baseline", "point", "sweep-done"]);
        for l in &lines {
            assert_eq!(parse(l).unwrap().get_str("id"), Some("t1"));
        }
        let done = parse(&lines[2]).unwrap();
        assert_eq!(done.get_u64("points"), Some(1));
        assert_eq!(done.get_u64("baselines"), Some(1));
        assert_eq!(done.get_u64("cached"), Some(0));
        assert_eq!(done.get_u64("simulated"), Some(2));

        let point = parse(&lines[1]).unwrap();
        assert_eq!(point.get_str("workload"), Some("ocean"));
        assert_eq!(point.get_str("system"), Some("CC-NUMA"));
        assert_eq!(point.get_u64("nodes"), Some(2));
        assert_eq!(
            point.get("cached").unwrap(),
            &crate::json::Value::Bool(false)
        );
        assert!(point.get("normalized_time").unwrap().as_f64().unwrap() >= 0.99);
        assert_eq!(point.get_str("cache_key").unwrap().len(), 32);

        // Resubmission: everything from cache, identical fingerprints.
        let (warm, _) = collect(&service, TINY);
        assert_eq!(warm.len(), 3);
        let warm_done = parse(&warm[2]).unwrap();
        assert_eq!(warm_done.get_u64("cached"), Some(2), "all jobs cached");
        assert_eq!(warm_done.get_u64("simulated"), Some(0));
        for (cold_line, warm_line) in lines[..2].iter().zip(&warm[..2]) {
            let c = parse(cold_line).unwrap();
            let w = parse(warm_line).unwrap();
            assert_eq!(c.get_str("fingerprint"), w.get_str("fingerprint"));
            assert_eq!(c.get_str("cache_key"), w.get_str("cache_key"));
            assert_eq!(w.get("cached").unwrap(), &crate::json::Value::Bool(true));
        }
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn streamed_results_match_a_one_shot_sweep_run() {
        use dsm_bench::ExperimentScale;
        use dsm_core::System;
        use splash_workloads::CustomScale;
        let service = SweepService::in_memory();
        let (lines, _) = collect(&service, TINY);
        let direct = Sweep::new("direct")
            .workloads(["ocean"])
            .system(System::cc_numa().build())
            .scale(ExperimentScale::Custom(CustomScale::new(1, 32)))
            .cluster_nodes([2])
            .procs_per_node([2])
            .threads(2)
            .run();
        let served_point = parse(&lines[1]).unwrap();
        assert_eq!(
            served_point.get_str("fingerprint").unwrap(),
            format!("{:#018x}", direct.points[0].result.fingerprint()),
            "service point diverged from a one-shot Sweep::run"
        );
        let served_baseline = parse(&lines[0]).unwrap();
        assert_eq!(
            served_baseline.get_str("fingerprint").unwrap(),
            format!("{:#018x}", direct.baselines[0].result.fingerprint())
        );
        assert_eq!(
            served_point.get_str("cache_key").unwrap(),
            direct.points[0].cache_key.to_hex()
        );
    }

    #[test]
    fn unknown_names_error_before_any_job_runs() {
        let service = SweepService::in_memory();
        for (bad, needle) in [
            (
                r#"{"kind":"sweep","id":"e","systems":["warp-drive"]}"#,
                "unknown system",
            ),
            (
                r#"{"kind":"sweep","id":"e","workloads":["doom"]}"#,
                "unknown workload",
            ),
            (
                r#"{"kind":"sweep","id":"e","scale":"big"}"#,
                "unknown scale",
            ),
            (
                r#"{"kind":"sweep","id":"e","costs":["free"]}"#,
                "unknown cost",
            ),
            (r#"{"kind":"sweep","id":"e","systems":[]}"#, "at least one"),
            (
                r#"{"kind":"sweep","id":"e","workloads":[]}"#,
                "at least one",
            ),
            (
                r#"{"kind":"report","id":"e","rows":"sideways"}"#,
                "unknown axis",
            ),
            (
                r#"{"kind":"report","id":"e","metric":"vibes"}"#,
                "unknown metric",
            ),
            (r#"{"kind":"wat","id":"e"}"#, "unknown request kind"),
            (r#"not json"#, "bad literal"),
        ] {
            let (lines, action) = collect(&service, bad);
            assert_eq!(action, Action::Continue);
            assert_eq!(lines.len(), 1, "one error line for {bad}: {lines:?}");
            let v = parse(&lines[0]).unwrap();
            assert_eq!(v.get_str("kind"), Some("error"), "{bad}");
            assert!(
                v.get_str("message").unwrap().contains(needle),
                "message for {bad} should contain `{needle}`: {lines:?}"
            );
        }
        assert_eq!(service.cache_stats().entries, 0, "no job ran");
        // A malformed line that still carries an id echoes it back.
        let (lines, _) = collect(&service, r#"{"kind":"wat","id":"echo-me"}"#);
        assert_eq!(parse(&lines[0]).unwrap().get_str("id"), Some("echo-me"));
    }

    #[test]
    fn report_requests_render_the_sweep_artifacts() {
        let service = SweepService::in_memory();
        let (lines, _) = collect(
            &service,
            r#"{"kind":"report","id":"r1","workloads":["ocean"],"systems":["cc-numa"],
                "scale":"x1/32","nodes":[2],"procs_per_node":[2],"threads":2,
                "rows":"system","cols":"workload","metric":"normalized_time"}"#,
        );
        let last = parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get_str("kind"), Some("report"), "{lines:?}");
        let table = last.get_str("table").unwrap();
        assert!(
            table.contains("CC-NUMA") && table.contains("ocean"),
            "{table}"
        );
        let csv = last.get_str("csv").unwrap();
        assert!(csv.starts_with("nodes,"), "{csv}");
        assert!(csv.contains("cache_key,fingerprint"), "{csv}");
        let listing = last.get_str("listing").unwrap();
        assert!(listing.contains("cache_key"), "{listing}");
        // The sweep that fed the report populated the cache.
        assert_eq!(service.cache_stats().entries, 2);
        // And its events streamed ahead of the terminal object.
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn shutdown_and_cache_stats_round_trip() {
        let service = SweepService::in_memory();
        let (lines, action) = collect(&service, r#"{"kind":"cache-stats","id":"c1"}"#);
        assert_eq!(action, Action::Continue);
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get_str("kind"), Some("cache-stats"));
        assert_eq!(v.get_u64("entries"), Some(0));
        assert_eq!(v.get("path"), Some(&crate::json::Value::Null));

        let (lines, action) = collect(&service, r#"{"kind":"shutdown","id":"bye"}"#);
        assert_eq!(action, Action::Shutdown);
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get_str("kind"), Some("ok"));
        assert_eq!(v.get_str("id"), Some("bye"));
    }

    #[test]
    fn trend_requests_render_bench_files() {
        let dir = std::env::temp_dir().join(format!("dsm-trend-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_1.json"),
            r#"{"bench":"perf-trajectory","pr":1,"mean_events_per_sec":123.0}"#,
        )
        .unwrap();
        let service = SweepService::in_memory();
        let req = format!(r#"{{"kind":"trend","id":"t","dir":"{}"}}"#, dir.display());
        let (lines, _) = collect(&service, &req);
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get_str("kind"), Some("trend"));
        assert_eq!(v.get_u64("entries"), Some(1));
        assert!(v.get_str("text").unwrap().contains("BENCH_1.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
