//! Name → configuration resolution for the wire protocol.
//!
//! Requests identify systems, cost models, scales, axes and metrics by
//! short stable strings; this module resolves them against the experiment
//! presets.  System templates are *scale-aware*: the page cache and policy
//! thresholds follow the requested problem scale by the same rules the
//! figure presets use (`dsm_bench::presets`), so a `"r-numa"` requested at
//! `"paper"` scale is exactly the paper's R-NUMA.

use dsm_bench::{Axis, ExperimentScale, Metric};
use dsm_core::{CostModel, MigRep, PageCaching, System, SystemConfig};
use splash_workloads::CustomScale;

/// Every system name the protocol accepts, for error messages and docs.
pub const SYSTEM_NAMES: [&str; 10] = [
    "perfect-cc-numa",
    "cc-numa",
    "rep",
    "mig",
    "migrep",
    "r-numa",
    "r-numa-inf",
    "r-numa-half",
    "hybrid",
    "r-numa-paper-cache",
];

/// Every cost-model name the protocol accepts.
pub const COST_NAMES: [&str; 3] = ["base", "slow", "remote4x"];

/// Resolve a system name at a problem scale.
///
/// The catalog mirrors the figure presets: non-baseline systems get the
/// scale's fast thresholds, R-NUMA variants get the scale's page cache.
/// `"r-numa-paper-cache"` keeps the paper's 2.4-MB page cache at every
/// scale (the configuration the committed golden fingerprints pin at
/// reduced scale), while `"r-numa"` scales the cache with the problem.
pub fn system_by_name(name: &str, scale: ExperimentScale) -> Result<SystemConfig, String> {
    let t = scale.thresholds_fast();
    let cfg = match name {
        "perfect-cc-numa" | "perfect" => System::perfect_cc_numa().build(),
        "cc-numa" => System::cc_numa().build(),
        "rep" => System::cc_numa()
            .with(MigRep::replication_only())
            .with(t)
            .build(),
        "mig" => System::cc_numa()
            .with(MigRep::migration_only())
            .with(t)
            .build(),
        "migrep" => System::cc_numa().with(MigRep::both()).with(t).build(),
        "r-numa" => System::r_numa()
            .with(PageCaching::config(scale.page_cache()))
            .with(t)
            .named("R-NUMA")
            .build(),
        "r-numa-inf" => System::r_numa()
            .with(PageCaching::infinite())
            .with(t)
            .build(),
        "r-numa-half" => System::r_numa()
            .with(PageCaching::config(scale.page_cache_half()))
            .with(t)
            .named("R-NUMA-1/2")
            .build(),
        "hybrid" => System::r_numa()
            .with(PageCaching::config(scale.page_cache_half()))
            .with(MigRep::both())
            .with(t)
            .relocation_delay(scale.relocation_delay())
            .named("R-NUMA-1/2+MigRep")
            .build(),
        "r-numa-paper-cache" => System::r_numa().with(t).build(),
        other => {
            return Err(format!(
                "unknown system `{other}` (known: {})",
                SYSTEM_NAMES.join(", ")
            ))
        }
    };
    Ok(cfg)
}

/// Resolve a cost-model name.
pub fn cost_by_name(name: &str) -> Result<CostModel, String> {
    match name {
        "base" | "default" => Ok(CostModel::base()),
        "slow" => Ok(CostModel::slow()),
        "remote4x" => Ok(CostModel::base().with_remote_latency_factor(4)),
        other => Err(format!(
            "unknown cost model `{other}` (known: {})",
            COST_NAMES.join(", ")
        )),
    }
}

/// Parse a scale label: `"reduced"`, `"paper"`, `"xN"`, or `"xN/D"` — the
/// same labels [`ExperimentScale::label`] renders.
pub fn parse_scale(label: &str) -> Result<ExperimentScale, String> {
    match label {
        "reduced" => return Ok(ExperimentScale::Reduced),
        "paper" => return Ok(ExperimentScale::Paper),
        _ => {}
    }
    let bad = || format!("unknown scale `{label}` (expected reduced, paper, xN or xN/D)");
    let rest = label.strip_prefix('x').ok_or_else(bad)?;
    let (numer, denom) = match rest.split_once('/') {
        Some((n, d)) => (n, d),
        None => (rest, "1"),
    };
    let numer: u32 = numer.parse().map_err(|_| bad())?;
    let denom: u32 = denom.parse().map_err(|_| bad())?;
    if numer == 0 || denom == 0 {
        return Err(bad());
    }
    Ok(ExperimentScale::Custom(CustomScale::new(numer, denom)))
}

/// Resolve an axis name (the CSV column names of [`Axis::name`]).
pub fn axis_by_name(name: &str) -> Result<Axis, String> {
    Axis::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = Axis::ALL.iter().map(|a| a.name()).collect();
            format!("unknown axis `{name}` (known: {})", known.join(", "))
        })
}

/// Every metric the protocol accepts, in [`Metric::name`] form.
pub const METRICS: [Metric; 10] = [
    Metric::NormalizedTime,
    Metric::ExecutionTime,
    Metric::RemoteMissesPerNode,
    Metric::RemoteCapacityMissesPerNode,
    Metric::MigrationsPerNode,
    Metric::ReplicationsPerNode,
    Metric::RelocationsPerNode,
    Metric::NetworkMessages,
    Metric::NetworkBytes,
    Metric::BytesPerAccess,
];

/// Resolve a metric name (the CSV column names of [`Metric::name`]).
pub fn metric_by_name(name: &str) -> Result<Metric, String> {
    METRICS
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = METRICS.iter().map(|m| m.name()).collect();
            format!("unknown metric `{name}` (known: {})", known.join(", "))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_system_resolves_at_every_scale() {
        for scale in [
            ExperimentScale::Reduced,
            ExperimentScale::Paper,
            ExperimentScale::Custom(CustomScale::new(1, 16)),
        ] {
            for name in SYSTEM_NAMES {
                let cfg = system_by_name(name, scale)
                    .unwrap_or_else(|e| panic!("{name} at {}: {e}", scale.label()));
                assert!(!cfg.name.is_empty());
            }
        }
        assert!(system_by_name("nonsense", ExperimentScale::Reduced).is_err());
    }

    #[test]
    fn catalog_mirrors_the_figure_presets() {
        use dsm_bench::presets;
        let scale = ExperimentScale::Reduced;
        let fig5 = presets::figure5(scale);
        // Figure 5 order: CC-NUMA, Rep, Mig, MigRep, R-NUMA, R-NUMA-Inf.
        let names = ["cc-numa", "rep", "mig", "migrep", "r-numa", "r-numa-inf"];
        for (catalog_name, preset) in names.iter().zip(&fig5.systems) {
            assert_eq!(
                system_by_name(catalog_name, scale).unwrap(),
                *preset,
                "catalog `{catalog_name}` drifted from the figure 5 preset"
            );
        }
        assert_eq!(
            system_by_name("perfect-cc-numa", scale).unwrap(),
            fig5.baseline
        );
        // Figure 8's half-cache and hybrid systems.
        let fig8 = presets::figure8(scale);
        assert_eq!(
            system_by_name("r-numa-half", scale).unwrap(),
            fig8.systems[1]
        );
        assert_eq!(system_by_name("hybrid", scale).unwrap(), fig8.systems[2]);
    }

    #[test]
    fn paper_cache_variant_keeps_the_paper_page_cache_at_reduced_scale() {
        use dsm_protocol::PageCacheConfig;
        let r = system_by_name("r-numa-paper-cache", ExperimentScale::Reduced).unwrap();
        assert_eq!(r.page_cache, Some(PageCacheConfig::PAPER));
        let scaled = system_by_name("r-numa", ExperimentScale::Reduced).unwrap();
        assert_ne!(r.page_cache, scaled.page_cache);
    }

    #[test]
    fn cost_models_resolve() {
        assert_eq!(cost_by_name("base").unwrap(), CostModel::base());
        assert_eq!(cost_by_name("default").unwrap(), CostModel::base());
        assert_eq!(cost_by_name("slow").unwrap(), CostModel::slow());
        assert_eq!(
            cost_by_name("remote4x").unwrap(),
            CostModel::base().with_remote_latency_factor(4)
        );
        assert!(cost_by_name("fast").is_err());
    }

    #[test]
    fn scales_parse_their_own_labels() {
        for scale in [
            ExperimentScale::Reduced,
            ExperimentScale::Paper,
            ExperimentScale::Custom(CustomScale::new(3, 1)),
            ExperimentScale::Custom(CustomScale::new(1, 32)),
        ] {
            assert_eq!(parse_scale(&scale.label()).unwrap(), scale);
        }
        for bad in ["", "x", "x0", "x1/0", "huge", "x1/2/3", "x-1"] {
            assert!(parse_scale(bad).is_err(), "`{bad}` should not parse");
        }
        // The committed above-x1 preset resolves to the same scale the
        // experiment binaries reach via `--custom 4`.
        assert_eq!(parse_scale("x4").unwrap(), ExperimentScale::X4);
    }

    #[test]
    fn axes_and_metrics_resolve_by_their_column_names() {
        for axis in Axis::ALL {
            assert_eq!(axis_by_name(axis.name()).unwrap(), axis);
        }
        for metric in METRICS {
            assert_eq!(metric_by_name(metric.name()).unwrap(), metric);
        }
        assert!(axis_by_name("bogus").is_err());
        assert!(metric_by_name("bogus").is_err());
    }
}
