//! `dsm-lint` CLI: scan the workspace, diff against the committed baseline.
//!
//! ```text
//! dsm-lint [--root DIR] [--baseline FILE] [--format human|json|github]
//!          [--emit-graph FILE] [--fix-baseline] [--self-check] [--list-rules]
//! ```
//!
//! Exit status: `0` when no finding escapes the baseline, `1` when new
//! violations exist, `2` on usage or IO errors.  `--format json` writes the
//! full machine-readable report to stdout (human prose goes to stderr),
//! which is what CI uploads as an artifact; `--format github` writes
//! GitHub Actions `::error` workflow commands so findings annotate the PR
//! diff in place.

use std::path::PathBuf;
use std::process::ExitCode;

use dsm_lint::baseline::{render_findings, Baseline, SCHEMA_VERSION};
use dsm_lint::{scan_workspace, Config, Finding, RULES};

const USAGE: &str = "\
dsm-lint: repo-specific determinism/concurrency lint

USAGE:
    dsm-lint [OPTIONS]

OPTIONS:
    --root DIR         workspace root to scan (default: .)
    --baseline FILE    baseline path (default: <root>/lint-baseline.json)
    --format FORMAT    report format: human (default), json (full report on
                       stdout, prose on stderr), github (::error workflow
                       commands for PR annotations)
    --json             shorthand for --format json
    --emit-graph FILE  also write the workspace call graph (nodes, resolved
                       edges, unresolved bucket) as JSON to FILE
    --fix-baseline     re-record the baseline from the current tree; new
                       entries get an UNREVIEWED reason to replace by hand
    --self-check       verify the committed baseline parses, matches the
                       built-in rule registry, and agrees with lint.toml's
                       schema version; exits nonzero on drift
    --list-rules       print the rule set and exit
    --help             this text

Suppress one finding with `// dsm-lint: allow(rule, reason)` on the same
line or the line above; the reason is mandatory.  Entry points and sinks
for the call-graph rules are configured in <root>/lint.toml.";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Github,
}

struct Opts {
    root: PathBuf,
    baseline: PathBuf,
    format: Format,
    emit_graph: Option<PathBuf>,
    fix: bool,
    self_check: bool,
    list: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut format = Format::Human;
    let mut emit_graph = None;
    let (mut fix, mut self_check, mut list) = (false, false, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("github") => Format::Github,
                    other => {
                        return Err(format!("--format expects human|json|github, got {other:?}"))
                    }
                };
            }
            "--json" => format = Format::Json,
            "--emit-graph" => {
                emit_graph = Some(PathBuf::from(
                    args.next().ok_or("--emit-graph needs a value")?,
                ));
            }
            "--fix-baseline" => fix = true,
            "--self-check" => self_check = true,
            "--list-rules" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Opts {
        root,
        baseline,
        format,
        emit_graph,
        fix,
        self_check,
        list,
    })
}

/// One finding as a GitHub Actions annotation.  Newlines in workflow
/// commands are URL-encoded per the Actions spec; the chain rides in the
/// message so the annotation is self-contained evidence.
fn github_annotation(f: &Finding) -> String {
    let mut msg = format!("[{}] {}", f.rule, f.excerpt);
    for step in &f.chain {
        msg.push_str("%0A  ");
        msg.push_str(step);
    }
    let msg = msg.replace('\r', "").replace('\n', "%0A");
    format!("::error file={},line={}::{msg}", f.file, f.line)
}

/// `--self-check`: the committed baseline must parse under the current
/// schema, name exactly the built-in rule registry, and `lint.toml` (when
/// present) must carry the same schema version.  Run by CI so a rule-set
/// change cannot land without re-recording the baseline.
fn self_check(opts: &Opts) -> Result<bool, String> {
    let text = std::fs::read_to_string(&opts.baseline)
        .map_err(|e| format!("reading {}: {e}", opts.baseline.display()))?;
    let baseline = Baseline::parse(&text)?;
    if !baseline.rules_match_registry() {
        eprintln!(
            "dsm-lint: self-check FAILED: baseline rules {:?} do not match the registry {:?} — run --fix-baseline",
            baseline.rules,
            RULES.iter().map(|r| r.name).collect::<Vec<_>>()
        );
        return Ok(false);
    }
    // Config::load re-validates lint.toml's schema against SCHEMA_VERSION.
    Config::load(&opts.root.join("lint.toml"))?;
    eprintln!(
        "dsm-lint: self-check ok: schema v{SCHEMA_VERSION}, {} rules, {} baseline entr{}",
        RULES.len(),
        baseline.entries.len(),
        if baseline.entries.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    Ok(true)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    if opts.list {
        for r in RULES {
            println!("{:<16} {}", r.name, r.summary);
        }
        return Ok(true);
    }
    if opts.self_check {
        return self_check(&opts);
    }

    let scan = scan_workspace(&opts.root)?;
    let findings = scan.findings;
    if let Some(path) = &opts.emit_graph {
        std::fs::write(path, scan.graph.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "dsm-lint: wrote call graph ({} fns, {} unresolved calls) to {}",
            scan.graph.fns.len(),
            scan.graph.unresolved.len(),
            path.display()
        );
    }
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", opts.baseline.display())),
    };

    if opts.fix {
        let rebuilt = Baseline::record(&findings, &baseline);
        std::fs::write(&opts.baseline, rebuilt.render())
            .map_err(|e| format!("writing {}: {e}", opts.baseline.display()))?;
        eprintln!(
            "dsm-lint: recorded {} entr{} ({} finding{}) to {}",
            rebuilt.entries.len(),
            if rebuilt.entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            opts.baseline.display()
        );
        if rebuilt
            .entries
            .iter()
            .any(|e| e.reason.starts_with("UNREVIEWED"))
        {
            eprintln!(
                "dsm-lint: new entries carry UNREVIEWED reasons — replace them before committing"
            );
        }
        return Ok(true);
    }

    let fresh = baseline.new_violations(&findings);
    match opts.format {
        Format::Json => print!("{}", render_findings(&findings, &fresh)),
        Format::Github => {
            for f in &fresh {
                println!("{}", github_annotation(f));
            }
        }
        Format::Human => {}
    }
    for f in &fresh {
        eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt);
        for step in &f.chain {
            eprintln!("    {step}");
        }
    }
    let stale = baseline.stale(&findings);
    for e in &stale {
        eprintln!(
            "dsm-lint: stale baseline entry ({} in {}): no longer matches — run --fix-baseline",
            e.rule, e.file
        );
    }
    eprintln!(
        "dsm-lint: {} finding{} total, {} above baseline, {} baseline entr{} stale",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        fresh.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );
    Ok(fresh.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("dsm-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
