//! `dsm-lint` CLI: scan the workspace, diff against the committed baseline.
//!
//! ```text
//! dsm-lint [--root DIR] [--baseline FILE] [--json] [--fix-baseline] [--list-rules]
//! ```
//!
//! Exit status: `0` when no finding escapes the baseline, `1` when new
//! violations exist, `2` on usage or IO errors.  `--json` writes the full
//! machine-readable report to stdout (human prose goes to stderr), which is
//! what CI uploads as an artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use dsm_lint::baseline::{render_findings, Baseline};
use dsm_lint::{scan_workspace, RULES};

const USAGE: &str = "\
dsm-lint: repo-specific determinism/concurrency lint

USAGE:
    dsm-lint [OPTIONS]

OPTIONS:
    --root DIR        workspace root to scan (default: .)
    --baseline FILE   baseline path (default: <root>/lint-baseline.json)
    --json            write the JSON report to stdout (prose goes to stderr)
    --fix-baseline    re-record the baseline from the current tree; new
                      entries get an UNREVIEWED reason to replace by hand
    --list-rules      print the rule set and exit
    --help            this text

Suppress one finding with `// dsm-lint: allow(rule, reason)` on the same
line or the line above; the reason is mandatory.";

struct Opts {
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
    fix: bool,
    list: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let (mut json, mut fix, mut list) = (false, false, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--json" => json = true,
            "--fix-baseline" => fix = true,
            "--list-rules" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Opts {
        root,
        baseline,
        json,
        fix,
        list,
    })
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    if opts.list {
        for r in RULES {
            println!("{:<12} {}", r.name, r.summary);
        }
        return Ok(true);
    }

    let findings = scan_workspace(&opts.root)?;
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", opts.baseline.display())),
    };

    if opts.fix {
        let rebuilt = Baseline::record(&findings, &baseline);
        std::fs::write(&opts.baseline, rebuilt.render())
            .map_err(|e| format!("writing {}: {e}", opts.baseline.display()))?;
        eprintln!(
            "dsm-lint: recorded {} entr{} ({} finding{}) to {}",
            rebuilt.entries.len(),
            if rebuilt.entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            opts.baseline.display()
        );
        if rebuilt
            .entries
            .iter()
            .any(|e| e.reason.starts_with("UNREVIEWED"))
        {
            eprintln!(
                "dsm-lint: new entries carry UNREVIEWED reasons — replace them before committing"
            );
        }
        return Ok(true);
    }

    let fresh = baseline.new_violations(&findings);
    if opts.json {
        print!("{}", render_findings(&findings, &fresh));
    }
    for f in &fresh {
        eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt);
    }
    let stale = baseline.stale(&findings);
    for e in &stale {
        eprintln!(
            "dsm-lint: stale baseline entry ({} in {}): no longer matches — run --fix-baseline",
            e.rule, e.file
        );
    }
    eprintln!(
        "dsm-lint: {} finding{} total, {} above baseline, {} baseline entr{} stale",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        fresh.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );
    Ok(fresh.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("dsm-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
