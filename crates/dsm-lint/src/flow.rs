//! The inter-procedural rules: panic-path, det-taint, cast-truncation.
//!
//! These run on the [`crate::graph::CallGraph`] built from every library
//! file in one pass, so a finding in `crates/core` can carry evidence that
//! starts in `crates/sweep-service`:
//!
//! * **`panic-path`** — forward BFS from the entry points declared in
//!   `lint.toml` (`[panic-path] entries`); every *effective* panic site in
//!   a reachable function fires, with the shortest entry-to-site call
//!   chain as evidence.  "Effective" discounts `unwrap`/`expect` whose
//!   result is propagated with `?` and `self.expect(..)`-style calls to a
//!   method the owner type actually defines (the sweep-service JSON
//!   parser's `expect` is a parser combinator, not `Result::expect`).
//!   `assert!`/`assert_eq!` are deliberately *not* panic sites: asserts
//!   state invariants the author wants fatal, while this rule polices
//!   accidental panics on malformed input.
//! * **`det-taint`** — a function containing a nondeterminism source
//!   taints every caller that can observe its return value (reverse BFS
//!   up the graph); the rule fires when a tainted function can also reach
//!   a determinism sink (`SimResult` construction, `fingerprint()`) down
//!   the graph.  The chain shows source → callers → confluence →
//!   callees → sink, shortest such path first.  This is call-structure
//!   taint, not dataflow — a function that reads the clock *and* builds a
//!   `SimResult` fires even if the two never meet in a value, which is
//!   the conservative side to err on for a determinism contract.
//! * **`cast-truncation`** — a narrowing `as` cast (`u64 as u32`, ...)
//!   in a simulation crate whose statement mentions a clock/byte
//!   accounting identifier (`[cast-truncation] context` in `lint.toml`).
//!   Cycle counts and byte totals are the quantities that silently exceed
//!   32 bits at paper scale (512 nodes x long traces).
//!
//! Findings anchor at the *site* (panic site, taint source, cast) so a
//! `// dsm-lint: allow(rule, reason)` lives next to the code it vouches
//! for, and the baseline key stays line-content-stable like the token
//! rules'.

use crate::config::Config;
use crate::graph::CallGraph;
use crate::items::{parse_file, PanicKind, PanicSite};
use crate::rules::{file_allows, is_lib_code, Finding, SIM_CRATES};

/// Build the workspace call graph from `(relpath, source)` pairs.
/// Non-library files are skipped; test-gated items are dropped by
/// [`CallGraph::build`].
pub fn build_graph(files: &[(String, String)], cfg: &Config) -> CallGraph {
    let mut items = Vec::new();
    for (rel, src) in files {
        // The linter itself is excluded: its source *is* the pattern
        // vocabulary (every taint-source name appears as an enum variant
        // or matcher string), its call graph is disjoint from the
        // simulator stack, and self-analysis produced only those
        // vocabulary echoes.  The token rules still scan it.
        if is_lib_code(rel) && !rel.starts_with("crates/dsm-lint/") {
            items.extend(parse_file(rel, src, cfg));
        }
    }
    CallGraph::build(items)
}

/// Run the three graph rules and return their findings (unsorted; the
/// caller merges with token findings and sorts).
pub fn scan(graph: &CallGraph, files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    panic_path(graph, cfg, &mut findings);
    det_taint(graph, &mut findings);
    cast_truncation(graph, &mut findings);

    // Apply allow comments and the file allowlist, matching the token
    // rules' contract: an allow on the finding line or the line above.
    findings.retain(|f| {
        if crate::rules::allowlist()
            .iter()
            .any(|(r, file, _)| *r == f.rule && *file == f.file)
        {
            return false;
        }
        let Some((_, src)) = files.iter().find(|(rel, _)| *rel == f.file) else {
            return true;
        };
        !file_allows(&f.file, src)
            .iter()
            .any(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
    });
    findings
}

/// A panic site that actually panics in library code (see module docs).
fn effective(site: &PanicSite, owner: Option<&str>, graph: &CallGraph) -> bool {
    match site.kind {
        PanicKind::Macro | PanicKind::LockIndex => true,
        PanicKind::UnwrapExpect => {
            if site.propagated {
                return false;
            }
            !(site.recv_self && owner.is_some_and(|o| graph.owner_defines(o, &site.what)))
        }
    }
}

fn panic_path(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    let entries = graph.match_entries(&cfg.entries);
    if entries.is_empty() {
        return;
    }
    let hops = graph.bfs(&entries, false);
    for (i, f) in graph.fns.iter().enumerate() {
        if hops[i].is_none() {
            continue;
        }
        for site in &f.panics {
            if !effective(site, f.owner.as_deref(), graph) {
                continue;
            }
            let mut chain = Vec::new();
            for (step, (idx, via)) in graph.chain(&hops, i).iter().enumerate() {
                let desc = graph.describe(*idx);
                match via {
                    None => chain.push(format!("entry: {desc}")),
                    Some(line) => chain.push(format!("step {step}: calls {desc} at line {line}")),
                }
            }
            chain.push(format!(
                "panic site: `{}` at {}:{}",
                site.what, f.file, site.line
            ));
            findings.push(Finding {
                rule: "panic-path",
                file: f.file.clone(),
                line: site.line,
                excerpt: format!(
                    "{} reachable from entry `{}`",
                    site.what,
                    entry_name(graph, &hops, i)
                ),
                chain,
            });
        }
    }
}

/// The entry function a reachable node traces back to.
fn entry_name(graph: &CallGraph, hops: &[Option<crate::graph::Hop>], node: usize) -> String {
    let chain = graph.chain(hops, node);
    graph.fns[chain[0].0].qname.clone()
}

fn det_taint(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let sink_fns: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.sinks.is_empty())
        .map(|(i, _)| i)
        .collect();
    if sink_fns.is_empty() {
        return;
    }
    // down[f] = shortest hop count from f to a sink-bearing function
    // (reverse BFS from sinks follows caller edges backwards, i.e. the
    // "can reach a sink" relation).
    let down = graph.bfs(&sink_fns, true);
    for (s, f) in graph.fns.iter().enumerate() {
        if f.taints.is_empty() {
            continue;
        }
        // up[g] = shortest hop count from the source fn to caller g (the
        // "observes the tainted return value" relation).
        let up = graph.bfs(&[s], true);
        // Confluence: a function both tainted and sink-reaching, nearest
        // first.  The source fn itself qualifies when it reaches a sink.
        let confluence = (0..graph.fns.len())
            .filter_map(|c| match (up[c], down[c]) {
                (Some(u), Some(d)) => Some((u.dist + d.dist, c)),
                _ => None,
            })
            .min();
        let Some((_, c)) = confluence else {
            continue;
        };
        for taint in &f.taints {
            let mut chain = vec![format!(
                "source: {} at {}:{} in {}",
                taint.kind.label(),
                f.file,
                taint.line,
                graph.fns[s].qname
            )];
            // Upward leg: source fn -> ... -> confluence (chain() returns
            // start-to-node order over reverse edges).
            for (idx, via) in graph.chain(&up, c).iter().skip(1) {
                let line = via.expect("non-start hops carry a call line");
                chain.push(format!(
                    "flows to caller {} (call at line {line})",
                    graph.describe(*idx)
                ));
            }
            // Downward leg: confluence -> ... -> sink fn.  The reverse-BFS
            // chain runs [sink, ..., confluence], each element carrying
            // the line where it calls its left neighbor — so walking it
            // right-to-left yields callee after callee, with the call
            // line taken from the caller one slot to the right.
            let leg = graph.chain(&down, c);
            for w in (0..leg.len()).rev().skip(1) {
                let line = leg[w + 1].1.expect("interior hops carry a call line");
                chain.push(format!(
                    "reaches {} (call at line {line})",
                    graph.describe(leg[w].0)
                ));
            }
            let sink = &graph.fns[leg[0].0];
            chain.push(format!(
                "sink: {}:{}",
                sink.file,
                sink.sinks.first().map_or(sink.line, |site| site.line)
            ));
            findings.push(Finding {
                rule: "det-taint",
                file: f.file.clone(),
                line: taint.line,
                excerpt: format!(
                    "{} can reach {} ({} hops)",
                    taint.kind.label(),
                    sink.qname,
                    chain.len() - 2
                ),
                chain,
            });
        }
    }
}

fn cast_truncation(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for f in &graph.fns {
        if !SIM_CRATES.iter().any(|p| f.file.starts_with(p)) {
            continue;
        }
        for cast in &f.casts {
            findings.push(Finding {
                rule: "cast-truncation",
                file: f.file.clone(),
                line: cast.line,
                excerpt: format!("narrowing cast in accounting context in {}", f.qname),
                chain: vec![format!(
                    "in {}",
                    graph.describe(
                        graph
                            .fns
                            .iter()
                            .position(|g| std::ptr::eq(g, f))
                            .expect("iterating the same vec")
                    )
                )],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let cfg = Config::default();
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let graph = build_graph(&owned, &cfg);
        scan(&graph, &owned, &cfg)
    }

    #[test]
    fn panic_path_reports_shortest_chain_from_entry() {
        let findings = run(&[(
            "crates/sweep-service/src/service.rs",
            r#"
impl SweepService {
    pub fn handle_line(&mut self, line: &str) -> String { self.dispatch(line) }
    fn dispatch(&mut self, line: &str) -> String { helper(line) }
}
fn helper(line: &str) -> String { line.parse().unwrap() }
fn unreachable_helper() { panic!("never called"); }
"#,
        )]);
        let pp: Vec<&Finding> = findings.iter().filter(|f| f.rule == "panic-path").collect();
        assert_eq!(pp.len(), 1, "{findings:?}");
        assert_eq!(pp[0].line, 6);
        assert!(pp[0].chain[0].contains("handle_line"), "{:?}", pp[0].chain);
        assert!(pp[0].chain.last().unwrap().contains("unwrap"));
        assert_eq!(
            pp[0].chain.len(),
            4,
            "entry + 2 hops + site: {:?}",
            pp[0].chain
        );
    }

    #[test]
    fn propagated_and_own_method_expects_are_not_panic_sites() {
        let findings = run(&[(
            "crates/sweep-service/src/json.rs",
            "
impl Parser {
    pub fn handle_line(&mut self) -> Result<(), E> {
        self.expect(b'{')?;
        self.inner().map_err(E::from)?;
        Ok(())
    }
    fn expect(&mut self, b: u8) -> Result<(), E> { Ok(()) }
    fn inner(&mut self) -> Result<(), E> { Ok(()) }
}
",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "panic-path"),
            "{findings:?}"
        );
    }

    #[test]
    fn det_taint_connects_source_to_sink_through_the_graph() {
        // The PR 1 migrate_page shape: the source is deep in one callee
        // branch, the sink in another; only the caller sees both.
        let findings = run(&[(
            "crates/core/src/migrate.rs",
            "
pub fn run_migration(t: &Trace) -> u64 {
    let order = gather_order(t);
    finish(order)
}
fn gather_order(t: &Trace) -> Vec<u32> {
    let pending: HashSet<u32> = t.pages();
    pending.iter().copied().collect()
}
fn finish(order: Vec<u32>) -> u64 {
    order.fingerprint()
}
",
        )]);
        let dt: Vec<&Finding> = findings.iter().filter(|f| f.rule == "det-taint").collect();
        assert_eq!(dt.len(), 1, "{findings:?}");
        assert_eq!(dt[0].file, "crates/core/src/migrate.rs");
        assert_eq!(dt[0].line, 7, "anchored at the HashSet source site");
        let joined = dt[0].chain.join("\n");
        assert!(joined.contains("gather_order"), "{joined}");
        assert!(joined.contains("run_migration"), "{joined}");
        assert!(joined.contains("finish"), "{joined}");
        assert!(joined.starts_with("source: HashMap/HashSet"), "{joined}");
        assert!(joined.contains("sink:"), "{joined}");
    }

    #[test]
    fn taint_without_a_sink_path_stays_quiet() {
        let findings = run(&[(
            "crates/bench/src/timing.rs",
            "
pub fn measure() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "det-taint"),
            "{findings:?}"
        );
    }

    #[test]
    fn cast_truncation_fires_only_in_sim_crates_with_context() {
        let sim = "
pub fn page_copy_cost_at(&self, bytes: u64) -> u32 {
    let cost = bytes as u32;
    let index = self.slot as u32;
    cost
}
";
        let findings = run(&[("crates/core/src/cost.rs", sim)]);
        let ct: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "cast-truncation")
            .collect();
        assert_eq!(ct.len(), 1, "{findings:?}");
        assert_eq!(ct[0].line, 3, "the `index` cast has no accounting context");
        assert!(
            run(&[("crates/bench/src/cost.rs", sim)])
                .iter()
                .all(|f| f.rule != "cast-truncation"),
            "bench is not a sim crate"
        );
    }

    #[test]
    fn allows_suppress_graph_findings_at_the_site() {
        let findings = run(&[(
            "crates/core/src/cost.rs",
            "
pub fn page_copy_cost_at(&self, bytes: u64) -> u32 {
    // dsm-lint: allow(cast-truncation, bytes per page bounded by PAGE_BYTES = 4096)
    bytes as u32
}
",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "cast-truncation"),
            "{findings:?}"
        );
    }
}
