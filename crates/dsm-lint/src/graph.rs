//! The intra-workspace call graph over [`crate::items`] function items.
//!
//! Resolution is deliberately tiered, most-precise first, and everything
//! that falls through lands in an explicit [`CallGraph::unresolved`]
//! bucket rather than being silently dropped — the graph is honestly
//! conservative, and `--emit-graph` publishes the bucket so a reviewer can
//! see exactly what the analysis did not follow:
//!
//! 1. **Path calls** `Type::method(..)` / `module::f(..)` resolve by the
//!    last two segments against `impl`/`trait` owners and module names;
//!    `Self::method` uses the calling function's own owner.
//! 2. **Method calls** `recv.m(..)` with `recv == self` resolve exactly
//!    against the owner's methods.  Other receivers fall back to *every*
//!    workspace method named `m` with a matching arity — except the panic
//!    methods (`unwrap`/`expect`), whose names are so common on `Option`/
//!    `Result` that a name-match edge would be noise, not evidence.
//! 3. **Bare calls** `f(..)` prefer a free function in the same module,
//!    then any free function with matching name + arity.
//!
//! Calls to the standard library, enum constructors, closures and
//! callbacks have no workspace target and populate the unresolved bucket.

use crate::items::FnItem;
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee index into [`CallGraph::fns`].
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
}

/// One call the resolver could not attribute to a workspace function.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller index into [`CallGraph::fns`].
    pub caller: usize,
    /// What the call named (`Vec::new`, `.push`, `helper`).
    pub target: String,
    /// Call-site line.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All non-test function items, in input order.
    pub fns: Vec<FnItem>,
    /// Forward edges: `edges[caller]` lists callees.
    pub edges: Vec<Vec<Edge>>,
    /// Reverse edges: `redges[callee]` lists callers.
    pub redges: Vec<Vec<Edge>>,
    /// Calls with no workspace target.
    pub unresolved: Vec<Unresolved>,
    /// `(owner, name)` pairs defined anywhere in the workspace, for
    /// discounting `self.expect(..)`-style calls to a type's own method.
    owner_methods: BTreeMap<(String, String), Vec<usize>>,
}

/// Per-function BFS result: distance from the start set and the
/// predecessor hop used to reach it, for chain reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Hops from the nearest start node.
    pub dist: usize,
    /// `(predecessor fn, call-site line)`; `None` for start nodes.
    pub via: Option<(usize, u32)>,
}

impl CallGraph {
    /// Build the graph from parsed items.  Test-gated items are excluded
    /// wholesale — the contract is about shipped code.
    pub fn build(items: Vec<FnItem>) -> CallGraph {
        use crate::items::{CallTarget, PANIC_METHODS};
        let fns: Vec<FnItem> = items.into_iter().filter(|f| !f.in_test).collect();

        // Indexes.  Values are sorted fn indices (BTreeMap keeps the whole
        // build deterministic, matching the repo's own hash-iter policy).
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_module_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if let Some(o) = &f.owner {
                by_owner
                    .entry((o.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
                if f.has_self {
                    methods_by_name.entry(f.name.clone()).or_default().push(i);
                }
            } else {
                free_by_name.entry(f.name.clone()).or_default().push(i);
            }
            by_module_name
                .entry((module_of(f), f.name.clone()))
                .or_default()
                .push(i);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        let mut unresolved = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let targets: Vec<usize> = match &call.target {
                    CallTarget::Path(segs) => {
                        let name = segs.last().expect("paths are non-empty");
                        let qual = segs[segs.len().saturating_sub(2)].as_str();
                        let qual = if matches!(qual, "Self" | "self") {
                            f.owner.as_deref().unwrap_or(qual)
                        } else {
                            qual
                        };
                        let mut t = by_owner
                            .get(&(qual.to_string(), name.clone()))
                            .cloned()
                            .unwrap_or_default();
                        if t.is_empty() {
                            t = by_module_name
                                .get(&(qual.to_string(), name.clone()))
                                .cloned()
                                .unwrap_or_default();
                        }
                        t
                    }
                    CallTarget::Method(name) => {
                        let own = call
                            .recv_self
                            .then_some(f.owner.as_ref())
                            .flatten()
                            .and_then(|o| by_owner.get(&(o.clone(), name.clone())));
                        match own {
                            Some(t) => t.clone(),
                            None if PANIC_METHODS.contains(&name.as_str()) => Vec::new(),
                            None => methods_by_name
                                .get(name)
                                .map(|c| {
                                    c.iter()
                                        .copied()
                                        .filter(|&j| fns[j].arity == call.arity)
                                        .collect()
                                })
                                .unwrap_or_default(),
                        }
                    }
                    CallTarget::Bare(name) => {
                        let local = by_module_name
                            .get(&(module_of(f), name.clone()))
                            .cloned()
                            .unwrap_or_default();
                        if !local.is_empty() {
                            local
                        } else {
                            // Fallback stays within the caller's crate: a
                            // bare cross-crate call would need a `use` of a
                            // free function, which this workspace's idiom
                            // avoids — and widening here made every local
                            // closure named `run` an edge to every crate's
                            // `run`.  Calls to closures and out-of-crate
                            // names land in the unresolved bucket instead.
                            free_by_name
                                .get(name)
                                .map(|c| {
                                    c.iter()
                                        .copied()
                                        .filter(|&j| {
                                            fns[j].arity == call.arity
                                                && crate_of(&fns[j]) == crate_of(f)
                                        })
                                        .collect()
                                })
                                .unwrap_or_default()
                        }
                    }
                };
                if targets.is_empty() {
                    unresolved.push(Unresolved {
                        caller: i,
                        target: match &call.target {
                            CallTarget::Path(s) => s.join("::"),
                            CallTarget::Method(m) => format!(".{m}"),
                            CallTarget::Bare(b) => b.clone(),
                        },
                        line: call.line,
                    });
                } else {
                    for t in targets {
                        edges[i].push(Edge {
                            to: t,
                            line: call.line,
                        });
                    }
                }
            }
        }

        let mut redges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (i, outs) in edges.iter().enumerate() {
            for e in outs {
                redges[e.to].push(Edge {
                    to: i,
                    line: e.line,
                });
            }
        }
        CallGraph {
            fns,
            edges,
            redges,
            unresolved,
            owner_methods: by_owner,
        }
    }

    /// Indices of functions whose qualified name matches any entry spec.
    pub fn match_entries(&self, specs: &[String]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                specs
                    .iter()
                    .any(|s| crate::config::Config::entry_matches(s, &f.qname))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// True iff type `owner` defines a method `name` anywhere in the
    /// workspace (so `self.name(..)` is a call to it, not a std panic
    /// method).
    pub fn owner_defines(&self, owner: &str, name: &str) -> bool {
        self.owner_methods
            .contains_key(&(owner.to_string(), name.to_string()))
    }

    /// Multi-source BFS along `edges` (forward: "reachable from starts")
    /// or `redges` (reverse: "can reach starts").
    pub fn bfs(&self, starts: &[usize], reverse: bool) -> Vec<Option<Hop>> {
        let adj = if reverse { &self.redges } else { &self.edges };
        let mut hops: Vec<Option<Hop>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in starts {
            if hops[s].is_none() {
                hops[s] = Some(Hop { dist: 0, via: None });
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let d = hops[u].expect("queued nodes are visited").dist;
            for e in &adj[u] {
                if hops[e.to].is_none() {
                    hops[e.to] = Some(Hop {
                        dist: d + 1,
                        via: Some((u, e.line)),
                    });
                    queue.push_back(e.to);
                }
            }
        }
        hops
    }

    /// Reconstruct the chain from a start node to `node` as fn indices,
    /// each paired with its hop's call-site line (`None` for the start).
    /// Forward BFS: the line is in the *predecessor* (the call into this
    /// node).  Reverse BFS: the line is in *this* node (where it calls the
    /// previous, nearer-to-start element).
    pub fn chain(&self, hops: &[Option<Hop>], node: usize) -> Vec<(usize, Option<u32>)> {
        let mut out = Vec::new();
        let mut cur = node;
        loop {
            let via = hops[cur].expect("chain target must be reachable").via;
            out.push((cur, via.map(|(_, l)| l)));
            match via {
                Some((pred, _)) => cur = pred,
                None => break,
            }
        }
        out.reverse();
        out
    }

    /// Render one chain step as `qname (file:line)`.
    pub fn describe(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        format!("{} ({}:{})", f.qname, f.file, f.line)
    }

    /// The graph as a JSON document for `--emit-graph`: nodes, resolved
    /// edges, and the unresolved bucket.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::from("{\n  \"nodes\": [");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\":{i},\"qname\":\"{}\",\"file\":\"{}\",\"line\":{},\"arity\":{}}}",
                escape(&f.qname),
                escape(&f.file),
                f.line,
                f.arity
            ));
        }
        out.push_str("\n  ],\n  \"edges\": [");
        let mut first = true;
        for (i, outs) in self.edges.iter().enumerate() {
            for e in outs {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"from\":{i},\"to\":{},\"line\":{}}}",
                    e.to, e.line
                ));
            }
        }
        out.push_str("\n  ],\n  \"unresolved\": [");
        for (i, u) in self.unresolved.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"caller\":{},\"target\":\"{}\",\"line\":{}}}",
                u.caller,
                escape(&u.target),
                u.line
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A function's module path: its qname minus the owner and name segments.
fn module_of(f: &FnItem) -> String {
    let strip = if f.owner.is_some() { 2 } else { 1 };
    let segs: Vec<&str> = f.qname.split("::").collect();
    segs[..segs.len().saturating_sub(strip)].join("::")
}

/// A function's crate: the leading qname segment (derived from the
/// `crates/<name>/` path component).
fn crate_of(f: &FnItem) -> &str {
    f.qname.split("::").next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::items::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let cfg = Config::default();
        let mut items = Vec::new();
        for (path, src) in files {
            items.extend(parse_file(path, src, &cfg));
        }
        CallGraph::build(items)
    }

    fn idx(g: &CallGraph, qname_suffix: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qname.ends_with(qname_suffix))
            .unwrap_or_else(|| panic!("no fn *{qname_suffix}"))
    }

    fn calls(g: &CallGraph, from: &str, to: &str) -> bool {
        let (f, t) = (idx(g, from), idx(g, to));
        g.edges[f].iter().any(|e| e.to == t)
    }

    #[test]
    fn path_and_self_calls_resolve_exactly() {
        let g = graph_of(&[(
            "crates/core/src/sim.rs",
            "
impl Simulator {
    pub fn run(&self) { Self::step(); helper(1); }
    fn step() {}
}
fn helper(x: u32) {}
fn other(x: u32, y: u32) {}
",
        )]);
        assert!(calls(&g, "Simulator::run", "Simulator::step"));
        assert!(calls(&g, "Simulator::run", "sim::helper"));
        assert!(
            !calls(&g, "Simulator::run", "sim::other"),
            "arity gates bare fallback"
        );
    }

    #[test]
    fn method_calls_resolve_via_owner_then_name_arity() {
        let g = graph_of(&[
            (
                "crates/core/src/a.rs",
                "
impl Cache {
    pub fn get(&self, k: u64) -> u64 { self.probe(k) }
    fn probe(&self, k: u64) -> u64 { k }
}
",
            ),
            (
                "crates/bench/src/b.rs",
                "
pub fn drive(c: &Cache) { c.probe(7); }
pub fn misses(c: &Cache) { c.probe(7, 8); }
",
            ),
        ]);
        assert!(
            calls(&g, "Cache::get", "Cache::probe"),
            "self receiver is exact"
        );
        assert!(
            calls(&g, "b::drive", "Cache::probe"),
            "non-self receivers fall back to name+arity"
        );
        assert!(
            !calls(&g, "b::misses", "Cache::probe"),
            "wrong arity stays unresolved"
        );
        assert!(
            g.unresolved.iter().any(|u| u.target == ".probe"),
            "the miss lands in the unresolved bucket: {:?}",
            g.unresolved
        );
    }

    #[test]
    fn trait_default_bodies_are_graph_nodes() {
        let g = graph_of(&[(
            "crates/core/src/t.rs",
            "
trait Policy {
    fn decide(&self) -> bool { self.threshold() > 0 }
    fn threshold(&self) -> u32;
}
",
        )]);
        assert!(calls(&g, "Policy::decide", "Policy::threshold"));
    }

    #[test]
    fn unwrap_expect_never_resolve_by_name_heuristic() {
        let g = graph_of(&[
            (
                "crates/sweep-service/src/json.rs",
                "
impl Parser {
    pub fn object(&mut self) -> Result<(), E> { self.expect(b'{') }
    fn expect(&mut self, b: u8) -> Result<(), E> { Ok(()) }
}
",
            ),
            (
                "crates/bench/src/c.rs",
                "pub fn reads(x: Option<u32>) -> u32 { x.expect(\"set\") }",
            ),
        ]);
        assert!(
            calls(&g, "Parser::object", "Parser::expect"),
            "self.expect resolves to the owner's own method"
        );
        let reads = idx(&g, "c::reads");
        assert!(
            g.edges[reads].is_empty(),
            "Option::expect gets no heuristic edge to Parser::expect"
        );
        assert!(g.owner_defines("Parser", "expect"));
        assert!(!g.owner_defines("Parser", "unwrap"));
    }

    #[test]
    fn bfs_prefers_shortest_chains() {
        let g = graph_of(&[(
            "crates/core/src/chain.rs",
            "
pub fn entry() { middle(); deep_a(); }
fn middle() { deep_a(); }
fn deep_a() { leaf(); }
fn leaf() {}
",
        )]);
        let hops = g.bfs(&[idx(&g, "chain::entry")], false);
        let leaf = idx(&g, "chain::leaf");
        assert_eq!(hops[leaf].unwrap().dist, 2, "entry -> deep_a -> leaf");
        let chain = g.chain(&hops, leaf);
        let names: Vec<&str> = chain.iter().map(|&(i, _)| g.fns[i].name.as_str()).collect();
        assert_eq!(names, ["entry", "deep_a", "leaf"]);
        // Reverse BFS answers "who can reach leaf".
        let rhops = g.bfs(&[leaf], true);
        assert!(rhops[idx(&g, "chain::entry")].is_some());
        assert!(rhops[idx(&g, "chain::middle")].is_some());
    }

    #[test]
    fn entry_specs_select_nodes() {
        let g = graph_of(&[(
            "crates/core/src/simulator.rs",
            "
impl ClusterSimulator {
    pub fn try_run(&self) {}
    pub fn try_run_source(&self) {}
    pub fn run(&self) {}
}
",
        )]);
        let picked = g.match_entries(&["ClusterSimulator::try_run*".to_string()]);
        assert_eq!(picked.len(), 2);
    }
}
