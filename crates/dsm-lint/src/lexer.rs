//! A small hand-rolled Rust lexer.
//!
//! The rules in [`crate::rules`] work on token sequences, so the lexer's
//! whole job is to split source text into identifiers, literals and
//! punctuation *without* being fooled by the places rule patterns may appear
//! spuriously: string literals, raw strings, char literals, and line/block
//! comments.  Comments are kept (with their line numbers) because the
//! suppression grammar — `// dsm-lint: allow(rule, reason)` — lives in them.
//!
//! This is not a full Rust lexer: it has no notion of keywords vs
//! identifiers, it folds every numeric suffix into the literal text, and it
//! treats any non-ASCII byte outside strings/comments as punctuation.  All
//! of that is fine for pattern matching; what it does get exactly right is
//! *where code stops and text begins* — nested block comments, raw strings
//! with `#` fences, byte strings, char-vs-lifetime disambiguation — because
//! a single mis-lexed string would let a rule fire on prose (or worse, let
//! real code hide inside what the lexer thought was a string).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `r#raw`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0xff_u64`).
    Int,
    /// A floating-point literal (`1.0`, `2e9`, `3f64`).
    Float,
    /// A string literal of any flavor (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, with the compound operators rules care about kept
    /// together (`::`, `+=`, `->`, ...).
    Punct,
}

/// One token, with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token's text.  For [`TokKind::Str`] this is the raw literal
    /// including quotes; rules never look inside strings.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One comment (line or block), with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// 1-based line number of the comment's first character.
    pub line: u32,
}

/// A lexed file: code tokens plus the comments (for allow parsing).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Compound operators the rules must see as single tokens, longest first so
/// maximal munch is trivial.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Lex `source` into tokens and comments.  Total: malformed input (an
/// unterminated string, a lone quote) never panics — the lexer consumes what
/// it can and moves on, which is the right failure mode for a linter that
/// runs over every file including ones mid-edit.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line);
                }
                _ => {
                    let rest = &self.bytes[self.pos..];
                    let compound = PUNCTS.iter().find(|p| rest.starts_with(p.as_bytes()));
                    let len = compound.map_or(1, |p| p.len());
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    end = self.pos + 1;
                    self.bump();
                }
                (None, _) => break, // unterminated: take what we have
            }
        }
        let text =
            String::from_utf8_lossy(&self.bytes[start..end.min(self.bytes.len())]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw
    /// identifiers (`r#match`).  Returns false when the `r`/`b` is just the
    /// start of a plain identifier, leaving the position untouched.
    fn raw_or_byte_literal(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let mut ahead = 1; // past the r/b
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some(b'"') if ahead == 1 && hashes == 0 && self.peek(0) == Some(b'b') => {
                // b"…": a plain string with a byte prefix.
                self.bump();
                self.string();
                true
            }
            Some(b'"') => {
                // (b)r#*"…"#*: raw string; scan for `"` + matching hashes.
                for _ in 0..ahead + hashes + 1 {
                    self.bump();
                }
                loop {
                    match self.bump() {
                        None => break,
                        Some(b'"') => {
                            let mut closing = 0usize;
                            while closing < hashes && self.peek(0) == Some(b'#') {
                                self.bump();
                                closing += 1;
                            }
                            if closing == hashes {
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
                self.push(TokKind::Str, start, line);
                true
            }
            Some(b'\'') if ahead == 1 && hashes == 0 && self.peek(0) == Some(b'b') => {
                // b'…': a byte literal.
                self.bump();
                self.char_literal_body(start, line);
                true
            }
            Some(c) if hashes > 0 && is_ident_start(c) && self.peek(0) == Some(b'r') => {
                // r#ident: a raw identifier.
                for _ in 0..ahead + hashes {
                    self.bump();
                }
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokKind::Ident, start, line);
                true
            }
            _ => false, // an ordinary identifier starting with r/b
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None | Some(b'"') => break,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// At a `'`: a char literal (`'x'`, `'\n'`, `'('`) or a lifetime/label
    /// (`'a`, `'static`).  A quote, then an identifier char, then anything
    /// but a closing quote is a lifetime; everything else is a char.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            next.is_some_and(is_ident_start) && after != Some(b'\'') && next != Some(b'\\');
        if is_lifetime {
            self.bump(); // '
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push(TokKind::Lifetime, start, line);
        } else {
            self.char_literal_body(start, line);
        }
    }

    fn char_literal_body(&mut self, start: usize, line: u32) {
        self.bump(); // opening '
        if self.bump() == Some(b'\\') {
            self.bump(); // the escaped char; \x41 / \u{..} tails are
                         // consumed by the closing-quote scan below
        }
        while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
            self.bump();
        }
        self.bump(); // closing '
        self.push(TokKind::Char, start, line);
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_hexdigit() || b == b'_')
            {
                self.bump();
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.bump();
            }
            // A fractional part — but not a range (`1..2`), not a method
            // call on the literal (`1.min(2)`), and not a field (`x.0` is
            // lexed as punct + int anyway).
            if self.peek(0) == Some(b'.')
                && self.peek(1) != Some(b'.')
                && !self.peek(1).is_some_and(is_ident_start)
            {
                float = true;
                self.bump();
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.bump();
                }
            }
            // An exponent: `1e9`, `1.5E-3`.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let (sign, digit) = (self.peek(1), self.peek(2));
                let has_exp = sign.is_some_and(|b| b.is_ascii_digit())
                    || (matches!(sign, Some(b'+' | b'-'))
                        && digit.is_some_and(|b| b.is_ascii_digit()));
                if has_exp {
                    float = true;
                    self.bump();
                    self.bump();
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                    {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`) folds into the literal.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix = &self.bytes[suffix_start..self.pos];
            if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
                float = true;
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_are_split_from_code() {
        let lexed = lex("let x = 1; // trailing\n/* block\nspanning */ let y = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, " trailing");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].text, " block\nspanning ");
        assert_eq!(lexed.comments[1].line, 2);
        let y = lexed.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 3, "lines advance through block comments");
    }

    #[test]
    fn nested_block_comments_close_at_the_matching_terminator() {
        let lexed = lex("/* a /* b */ c */ token");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(texts("/* a /* b */ c */ token"), vec!["token"]);
    }

    #[test]
    fn rule_patterns_inside_strings_do_not_tokenize_as_code() {
        // The lint self-test embeds fixture code in string literals; the
        // lexer must keep it opaque.
        let src = r####"let s = "HashMap::new()"; let r = r#"Instant::now() "quoted""#; let b = b"SystemTime";"####;
        let toks = texts(src);
        assert!(!toks
            .iter()
            .any(|t| t == "HashMap" || t == "Instant" || t == "SystemTime"));
        assert_eq!(kinds(src).iter().filter(|k| **k == TokKind::Str).count(), 3);
    }

    #[test]
    fn lifetimes_chars_and_bytes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let p = '('; let b = b'q'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            4
        );
    }

    #[test]
    fn numbers_classify_ints_and_floats() {
        let lexed = lex("1 1.5 2. 0x1f 1e9 1.5e-3 3f64 4u64 1..2 1.min(2) x.0");
        let pairs: Vec<(TokKind, &str)> = lexed
            .toks
            .iter()
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert!(pairs.contains(&(TokKind::Int, "1")));
        assert!(pairs.contains(&(TokKind::Float, "1.5")));
        assert!(pairs.contains(&(TokKind::Float, "2.")));
        assert!(pairs.contains(&(TokKind::Int, "0x1f")));
        assert!(pairs.contains(&(TokKind::Float, "1e9")));
        assert!(pairs.contains(&(TokKind::Float, "1.5e-3")));
        assert!(pairs.contains(&(TokKind::Float, "3f64")));
        assert!(pairs.contains(&(TokKind::Int, "4u64")));
        // Ranges and method calls on literals stay integral.
        assert!(pairs.contains(&(TokKind::Punct, "..")));
        assert!(pairs.contains(&(TokKind::Ident, "min")));
        assert!(
            !pairs.contains(&(TokKind::Float, "1.")) || pairs.contains(&(TokKind::Float, "2."))
        );
    }

    #[test]
    fn compound_punctuation_stays_whole() {
        let toks = texts("a += b; c::d; e -> f; g..=h");
        assert!(toks.contains(&"+=".to_string()));
        assert!(toks.contains(&"::".to_string()));
        assert!(toks.contains(&"->".to_string()));
        assert!(toks.contains(&"..=".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let lexed = lex("let r#type = 1;");
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "'a", "/* open", "b\"open"] {
            let _ = lex(src); // must terminate without panicking
        }
    }
}
