//! `lint.toml`: the committed configuration for the call-graph rules.
//!
//! The token rules (hash-iter, wall-clock, ...) are self-contained, but the
//! inter-procedural rules need to know *which* functions are entry points
//! and *which* constructions are determinism sinks — and those sets are a
//! policy decision that belongs in a reviewed, committed file, not in the
//! lint binary.  A new crate that wants its request loop covered by
//! `panic-path` adds its entry function here deliberately; nothing is
//! opted in by accident.
//!
//! The format is a small TOML subset — `key = value` lines under
//! `[section]` headers, where a value is a quoted string, an integer, or a
//! (possibly multi-line) array of quoted strings.  That is all a lint
//! configuration needs, and parsing it by hand keeps the crate
//! dependency-free like the rest of the linter.

/// Parsed configuration for the call-graph rules.  [`Config::default`]
/// mirrors the committed `lint.toml` so fixture tests and bare-tree runs
/// see the real policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Schema version of the file (must match [`crate::baseline`]'s).
    pub schema: u64,
    /// `panic-path` entry-point specs: `::`-separated suffixes of function
    /// qualified names; the last segment may end in `*` for a prefix match
    /// (`try_run*` covers `try_run` and `try_run_source`).
    pub entries: Vec<String>,
    /// `det-taint` sink names: an identifier followed by `{`, `(` or `::`
    /// in a function body marks that function as computing the
    /// determinism-bearing value.
    pub sinks: Vec<String>,
    /// `cast-truncation` context substrings: a narrowing `as` cast only
    /// fires when an identifier in the same statement contains one of
    /// these (case-insensitive), scoping the rule to clock/byte
    /// accounting.
    pub contexts: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            schema: crate::baseline::SCHEMA_VERSION,
            entries: [
                "SweepService::handle_line",
                "serve_stream",
                "ClusterSimulator::try_run*",
                "ShardedSimulator::try_run*",
            ]
            .map(str::to_string)
            .to_vec(),
            sinks: ["SimResult", "fingerprint"].map(str::to_string).to_vec(),
            contexts: [
                "clock", "cycle", "byte", "cost", "latency", "traffic", "payload",
            ]
            .map(str::to_string)
            .to_vec(),
        }
    }
}

impl Config {
    /// Load `lint.toml` from `text`.  Unknown sections and keys are
    /// errors — a typo in the policy file must not silently disable a
    /// rule's configuration.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config {
            schema: 0,
            entries: Vec::new(),
            sinks: Vec::new(),
            contexts: Vec::new(),
        };
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "panic-path" | "det-taint" | "cast-truncation" => {}
                    other => return Err(format!("line {}: unknown section [{other}]", n + 1)),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let (key, mut value) = (key.trim().to_string(), value.trim().to_string());
            // A multi-line array: buffer lines until the brackets close.
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", n + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            match (section.as_str(), key.as_str()) {
                ("", "schema") => {
                    cfg.schema = value
                        .parse()
                        .map_err(|_| format!("line {}: schema must be an integer", n + 1))?;
                }
                ("panic-path", "entries") => cfg.entries = parse_array(&value, n + 1)?,
                ("det-taint", "sinks") => cfg.sinks = parse_array(&value, n + 1)?,
                ("cast-truncation", "context") => cfg.contexts = parse_array(&value, n + 1)?,
                (s, k) => {
                    return Err(format!(
                        "line {}: unknown key `{k}` in section `[{s}]`",
                        n + 1
                    ));
                }
            }
        }
        if cfg.schema != crate::baseline::SCHEMA_VERSION {
            return Err(format!(
                "lint.toml schema {} does not match the supported schema {}",
                cfg.schema,
                crate::baseline::SCHEMA_VERSION
            ));
        }
        Ok(cfg)
    }

    /// Load from `path`; a missing file yields the built-in default (which
    /// mirrors the committed `lint.toml`).
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// True iff `spec` (an entry spec from [`Config::entries`]) matches the
    /// qualified function name `qname`.  Specs match as `::`-segment
    /// suffixes; a trailing `*` on the last spec segment prefix-matches the
    /// function name itself.
    pub fn entry_matches(spec: &str, qname: &str) -> bool {
        let spec_segs: Vec<&str> = spec.split("::").collect();
        let name_segs: Vec<&str> = qname.split("::").collect();
        if spec_segs.len() > name_segs.len() {
            return false;
        }
        let tail = &name_segs[name_segs.len() - spec_segs.len()..];
        for (i, (s, n)) in spec_segs.iter().zip(tail).enumerate() {
            let last = i == spec_segs.len() - 1;
            let ok = match (last, s.strip_suffix('*')) {
                (true, Some(prefix)) => n.starts_with(prefix),
                _ => s == n,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'\\' if in_str => {} // no escapes in this subset; tolerated
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `[ "a", "b" ]` into its strings.
fn parse_array(value: &str, line_no: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or(format!("line {line_no}: expected an array `[ ... ]`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or(format!(
                "line {line_no}: array items must be quoted strings"
            ))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# dsm-lint configuration
schema = 2

[panic-path]
entries = [
    "SweepService::handle_line",   # the request loop
    "ClusterSimulator::try_run*",
]

[det-taint]
sinks = ["SimResult", "fingerprint"]

[cast-truncation]
context = ["clock", "byte"]
"##;

    #[test]
    fn parses_the_committed_shape() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.schema, 2);
        assert_eq!(
            cfg.entries,
            ["SweepService::handle_line", "ClusterSimulator::try_run*"]
        );
        assert_eq!(cfg.sinks, ["SimResult", "fingerprint"]);
        assert_eq!(cfg.contexts, ["clock", "byte"]);
    }

    #[test]
    fn default_matches_the_committed_lint_toml() {
        // The workspace root is two levels above this crate's manifest.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let committed = std::fs::read_to_string(root.join("lint.toml"))
            .expect("committed lint.toml at the workspace root");
        assert_eq!(
            Config::parse(&committed).unwrap(),
            Config::default(),
            "Config::default() must mirror the committed lint.toml"
        );
    }

    #[test]
    fn entry_specs_match_as_suffixes_with_trailing_glob() {
        let m = Config::entry_matches;
        assert!(m(
            "ClusterSimulator::try_run*",
            "core::simulator::ClusterSimulator::try_run_source"
        ));
        assert!(m(
            "ClusterSimulator::try_run*",
            "core::simulator::ClusterSimulator::try_run"
        ));
        assert!(!m(
            "ClusterSimulator::try_run*",
            "core::simulator::ClusterSimulator::run"
        ));
        assert!(m("serve_stream", "sweep_service::server::serve_stream"));
        assert!(!m("serve_stream", "sweep_service::server::serve_stream2"));
        assert!(
            !m("SweepService::handle_line", "other::Service::handle_line"),
            "the owner segment must match too"
        );
        assert!(
            !m("a::b::c::d::too_long", "c::d::too_long"),
            "a spec longer than the qname cannot match"
        );
    }

    #[test]
    fn malformed_files_are_errors_not_silent_defaults() {
        assert!(Config::parse("schema = 2\n[unknown-section]\n").is_err());
        assert!(Config::parse("schema = 2\n[panic-path]\nentres = []\n").is_err());
        assert!(Config::parse("schema = 1\n").is_err(), "schema must match");
        assert!(Config::parse("schema = 2\n[panic-path]\nentries = [\"a\"").is_err());
        assert!(Config::parse("schema = 2\n[det-taint]\nsinks = [bare]\n").is_err());
    }
}
