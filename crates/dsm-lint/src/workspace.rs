//! Workspace discovery: every `.rs` file the lint pass covers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata, and
/// anything hidden.
fn skipped(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

/// Collect every `.rs` file under `root`, returned as
/// `(workspace-relative path with '/' separators, absolute path)` pairs in
/// sorted order — the scan must be deterministic like everything else here.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !skipped(&name) {
                    stack.push(path);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_our_own_sources_and_skips_target() {
        // CARGO_MANIFEST_DIR points at crates/dsm-lint; two levels up is the
        // workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let files = workspace_files(&root).unwrap();
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert!(rels.contains(&"crates/dsm-lint/src/lexer.rs"), "{rels:?}");
        assert!(rels.contains(&"src/lib.rs"));
        assert!(rels.iter().all(|r| !r.starts_with("target/")));
        assert!(
            rels.windows(2).all(|w| w[0] < w[1]),
            "sorted, no duplicates"
        );
    }
}
