//! A minimal JSON reader/writer for the baseline file and `--json` output.
//!
//! This mirrors `sweep-service`'s hand-rolled protocol module rather than
//! depending on it: the lint gate must build before — and independently of —
//! the simulator stack it checks, so the crate stays dependency-free.  The
//! subset is full JSON minus what a baseline never contains: numbers are
//! `f64` (counts and line numbers fit the 53-bit mantissa) and `\uXXXX`
//! escapes outside the BMP must arrive as surrogate pairs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside as a `u64`, if it is one (integral, in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && *n <= (1u64 << 53) as f64 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements inside, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member `key` as a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// Member `key` as a `u64`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document.  Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xd800) << 10)
                                        + low.checked_sub(0xdc00).ok_or("bad surrogate pair")?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or("bad unicode escape")?);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_string());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let v = parse(
            r#"{"version":1,"entries":[{"rule":"lock-unwrap","file":"a.rs","count":2,"reason":"why"}]}"#,
        )
        .unwrap();
        assert_eq!(v.get_u64("version"), Some(1));
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get_str("rule"), Some("lock-unwrap"));
        assert_eq!(entries[0].get_u64("count"), Some(2));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "let g = x.lock().expect(\"poisoned\\n\");\t√";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        assert_eq!(parse(&doc).unwrap().get_str("s"), Some(original));
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1}trailing",
            "\"\\u12\"",
            "\"\\q\"",
            "{\"a\" 1}",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth is bounded");
    }
}
