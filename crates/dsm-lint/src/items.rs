//! The item layer: a lightweight parser from the token stream to a
//! function tree, plus per-function fact extraction.
//!
//! The token rules in [`crate::rules`] see one token window at a time; the
//! call-graph rules in [`crate::flow`] need to know *which function* a
//! token belongs to and *which functions that function calls*.  This module
//! recovers exactly that much structure — the module tree (`mod` nesting
//! folded onto the file path), `fn` items inside `impl` and `trait` blocks
//! (trait-default bodies included), each with its body's token span — and
//! extracts from every body:
//!
//! * **calls** — bare calls, `path::to::fn(...)` calls, and `.method(...)`
//!   calls, each with an argument count so the resolver in
//!   [`crate::graph`] can use name+arity as its heuristic fallback;
//! * **panic sites** — `panic!`/`unreachable!`/`todo!`/`unimplemented!`,
//!   `.unwrap()`/`.expect(...)` (with enough context — receiver, trailing
//!   `?` — for the graph layer to discount calls to a crate's *own*
//!   `expect` method and `Result`-propagated parser helpers), and direct
//!   `[...]` indexing on lock/channel results;
//! * **taint sources** — wall-clock reads, `HashMap`/`HashSet` mentions,
//!   pointer-to-int casts, thread IDs, unseeded RNG construction;
//! * **sink sites** — constructions of the configured determinism carriers
//!   (`SimResult { .. }`, `.fingerprint()`);
//! * **cast sites** — narrowing `as` casts whose statement mentions a
//!   clock/byte-accounting identifier.
//!
//! This is deliberately not a full Rust parser: nested `fn` items fold into
//! their enclosing function (their calls are attributed outward, which is
//! conservative for reachability), closure bodies belong to the function
//! that wrote them, and macro arguments are scanned like ordinary code.
//! What it gets right is attribution — every extracted fact lands on the
//! function whose body physically contains it.

use crate::config::Config;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{test_region_mask, GUARDED_OPS};

/// Panic macros treated as panic sites.
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic when the value is `None`/`Err`.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Narrow integer types a truncating `as` cast can target.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(..)` — a bare name, resolved against the local module first.
    Bare(String),
    /// `a::b::foo(..)` — a path; the resolver uses the trailing segments.
    Path(Vec<String>),
    /// `recv.foo(..)` — a method call, resolved by name + arity.
    Method(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// What the call names.
    pub target: CallTarget,
    /// Number of arguments (excluding a method receiver).
    pub arity: usize,
    /// 1-based source line.
    pub line: u32,
    /// For method calls: the receiver is literally `self`.
    pub recv_self: bool,
}

/// Why a token sequence counts as a panic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    Macro,
    /// `.unwrap()` / `.expect(..)`.
    UnwrapExpect,
    /// `[..]` indexing directly on a lock/channel result.
    LockIndex,
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What fired.
    pub kind: PanicKind,
    /// The macro or method name (`panic`, `unwrap`, `expect`, ...).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// For `UnwrapExpect`: the receiver is literally `self` (the graph
    /// layer discounts these when the owner type defines the method —
    /// `self.expect(b'{')` in a parser is a call, not a panic).
    pub recv_self: bool,
    /// The call's result is propagated with `?` — not a panic path.
    pub propagated: bool,
}

/// What kind of nondeterminism a taint source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `Instant::now` / `SystemTime`.
    WallClock,
    /// `HashMap` / `HashSet` (iteration order).
    HashIter,
    /// A pointer observed as an integer.
    PtrToInt,
    /// `ThreadId` / `thread::current`.
    ThreadId,
    /// RNG seeded from the environment (`thread_rng`, `OsRng`, ...).
    UnseededRng,
}

impl TaintKind {
    /// Human label used in finding chains.
    pub fn label(self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock read",
            TaintKind::HashIter => "HashMap/HashSet iteration order",
            TaintKind::PtrToInt => "pointer-to-int cast",
            TaintKind::ThreadId => "thread id",
            TaintKind::UnseededRng => "unseeded RNG",
        }
    }
}

/// A line-anchored fact inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
}

/// One taint source.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// What kind of nondeterminism.
    pub kind: TaintKind,
    /// 1-based source line.
    pub line: u32,
}

/// One function item (free fn, inherent/trait-impl method, or trait
/// default body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// Fully qualified name: module path (derived from the file path plus
    /// inline `mod` nesting), the `impl`/`trait` owner type if any, then
    /// the name.
    pub qname: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter count excluding any `self` receiver.
    pub arity: usize,
    /// Declared with a `self` receiver.
    pub has_self: bool,
    /// The `impl`/`trait` type this fn belongs to, if any.
    pub owner: Option<String>,
    /// Inside a `#[test]` / `#[cfg(test)]` region (excluded from graph
    /// analysis).
    pub in_test: bool,
    /// Has no body (trait method signature, extern decl).
    pub has_body: bool,
    /// Call expressions in the body.
    pub calls: Vec<Call>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Taint sources in the body.
    pub taints: Vec<TaintSource>,
    /// Determinism-sink sites in the body (per [`Config::sinks`]).
    pub sinks: Vec<Site>,
    /// Narrowing casts in accounting context (per [`Config::contexts`]).
    pub casts: Vec<Site>,
}

/// Parse one file into its function items.  `relpath` seeds the module
/// path; `cfg` supplies the sink names and cast-context vocabulary.
pub fn parse_file(relpath: &str, source: &str, cfg: &Config) -> Vec<FnItem> {
    let lexed = lex(source);
    let mask = test_region_mask(&lexed.toks);
    let mut parser = ItemParser {
        toks: &lexed.toks,
        mask: &mask,
        cfg,
        file: relpath,
        out: Vec::new(),
    };
    let module = module_path(relpath);
    let end = lexed.toks.len();
    parser.items(0, end, &module, None);
    parser.out
}

/// Derive the module path from a workspace-relative file path:
/// `crates/core/src/simulator.rs` → `core::simulator`,
/// `src/bin/memsmoke.rs` → `bin::memsmoke`, `.../mod.rs` and `lib.rs`
/// contribute nothing.  Dashes normalize to underscores so paths read as
/// Rust identifiers.
fn module_path(relpath: &str) -> String {
    let mut segs: Vec<String> = Vec::new();
    let trimmed = relpath.strip_suffix(".rs").unwrap_or(relpath);
    for part in trimmed.split('/') {
        match part {
            "crates" | "src" | "lib" | "main" | "mod" => {}
            p => segs.push(p.replace('-', "_")),
        }
    }
    segs.join("::")
}

struct ItemParser<'a> {
    toks: &'a [Tok],
    mask: &'a [bool],
    cfg: &'a Config,
    file: &'a str,
    out: Vec<FnItem>,
}

impl ItemParser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Find the index of the matching close brace for the open brace at
    /// `open` (which must be `{`), bounded by `end`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Skip a `<...>` generics group starting at `i` (which must be `<`).
    /// Returns the index just past the closing `>`.  `>>` closes two
    /// levels (the lexer keeps it as one token).
    fn skip_angles(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        while i < end {
            match self.text(i) {
                "<" | "<<" => depth += if self.text(i) == "<<" { 2 } else { 1 },
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "->" | ";" | "{" => break, // malformed; bail conservatively
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
        i
    }

    /// The main scan: walk `[start, end)` collecting items, descending
    /// into `mod`/`impl`/`trait` bodies and consuming `fn` items whole.
    fn items(&mut self, start: usize, end: usize, module: &str, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.text(i) {
                "mod" if self.is_ident(i + 1) && self.text(i + 2) == "{" => {
                    let close = self.match_brace(i + 2, end);
                    let name = self.text(i + 1).to_string();
                    let nested = if module.is_empty() {
                        name
                    } else {
                        format!("{module}::{name}")
                    };
                    self.items(i + 3, close, &nested, owner);
                    i = close + 1;
                }
                "impl" | "trait" => {
                    let keyword = self.text(i);
                    // Find the body brace, skipping generics/paths/where.
                    let mut j = i + 1;
                    let mut paren = 0isize;
                    while j < end && !(paren == 0 && self.text(j) == "{") {
                        match self.text(j) {
                            "(" | "[" => paren += 1,
                            ")" | "]" => paren -= 1,
                            ";" if paren == 0 => break, // `trait X;`? bail
                            _ => {}
                        }
                        j += 1;
                    }
                    if self.text(j) != "{" {
                        i = j + 1;
                        continue;
                    }
                    let close = self.match_brace(j, end);
                    let ty = if keyword == "impl" {
                        impl_owner(self.toks, i + 1, j)
                    } else {
                        self.is_ident(i + 1).then(|| self.text(i + 1).to_string())
                    };
                    self.items(j + 1, close, module, ty.as_deref().or(owner));
                    i = close + 1;
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_item(i, end, module, owner);
                }
                _ => i += 1,
            }
        }
    }

    /// Parse one `fn` item starting at the `fn` keyword; returns the index
    /// just past the item.
    fn fn_item(&mut self, at: usize, end: usize, module: &str, owner: Option<&str>) -> usize {
        let name = self.text(at + 1).to_string();
        let line = self.toks[at].line;
        let mut i = at + 2;
        if self.text(i) == "<" {
            i = self.skip_angles(i, end);
        }
        if self.text(i) != "(" {
            return at + 2; // `fn` in type position (`fn(u32) -> u32`)
        }
        let (arity, has_self, params_end) = self.params(i, end);
        // Skip the return type / where clause to the body or `;`.
        let mut j = params_end + 1;
        let mut depth = 0isize;
        while j < end {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let (has_body, body, past) = if self.text(j) == "{" {
            let close = self.match_brace(j, end);
            (true, (j + 1, close), close + 1)
        } else {
            (false, (j, j), j + 1)
        };
        let qname = match (module.is_empty(), owner) {
            (true, None) => name.clone(),
            (true, Some(o)) => format!("{o}::{name}"),
            (false, None) => format!("{module}::{name}"),
            (false, Some(o)) => format!("{module}::{o}::{name}"),
        };
        let mut item = FnItem {
            name,
            qname,
            file: self.file.to_string(),
            line,
            arity,
            has_self,
            owner: owner.map(str::to_string),
            in_test: self.mask.get(at).copied().unwrap_or(false),
            has_body,
            calls: Vec::new(),
            panics: Vec::new(),
            taints: Vec::new(),
            sinks: Vec::new(),
            casts: Vec::new(),
        };
        if has_body {
            self.extract_calls(body.0, body.1, &mut item);
            self.extract_sites(body.0, body.1, &mut item);
        }
        self.out.push(item);
        past
    }

    /// Parse a parameter list starting at `(`: returns (arity excluding
    /// self, has_self, index of the closing paren).
    fn params(&self, open: usize, end: usize) -> (usize, bool, usize) {
        let mut depth = 0isize;
        let mut i = open;
        let mut commas = 0usize;
        let mut any_tokens = false;
        let mut in_pipes = false;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "<" => i = self.skip_angles(i, end) - 1,
                "|" if depth == 1 => in_pipes = !in_pipes,
                "," if depth == 1 && !in_pipes => commas += 1,
                _ if depth >= 1 => any_tokens = true,
                _ => {}
            }
            i += 1;
        }
        // A `self` receiver: `self` / `&self` / `&mut self` / `mut self`
        // as the first parameter (possibly behind a lifetime).
        let mut k = open + 1;
        while matches!(self.text(k), "&" | "mut")
            || self
                .toks
                .get(k)
                .is_some_and(|t| t.kind == TokKind::Lifetime)
        {
            k += 1;
        }
        let has_self = self.text(k) == "self";
        // Segments = commas + 1 when non-empty; rustfmt's trailing comma
        // adds a comma with no segment after it, which `any_after` corrects.
        let mut arity = if any_tokens { commas + 1 } else { 0 };
        if any_tokens && self.trailing_comma(open, i) {
            arity -= 1;
        }
        if has_self {
            arity = arity.saturating_sub(1);
        }
        (arity, has_self, i)
    }

    /// True when the token before the closing paren at `close` is a comma
    /// (a rustfmt trailing comma, not an argument separator).
    fn trailing_comma(&self, open: usize, close: usize) -> bool {
        close > open + 1 && self.text(close - 1) == ","
    }

    /// Walk a body span extracting call expressions (and the unwrap/expect
    /// panic sites that ride on method-call syntax).
    fn extract_calls(&mut self, lo: usize, hi: usize, item: &mut FnItem) {
        let mut k = lo;
        while k < hi {
            if !self.is_ident(k) {
                k += 1;
                continue;
            }
            let name = self.text(k).to_string();
            // Macro invocation: record panic macros; scan args normally.
            if self.text(k + 1) == "!" {
                if PANIC_MACROS.contains(&name.as_str()) {
                    item.panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        what: name,
                        line: self.toks[k].line,
                        recv_self: false,
                        propagated: false,
                    });
                }
                k += 2;
                continue;
            }
            // Collect a `::`-separated path.
            let mut segs = vec![name];
            let mut m = k + 1;
            while self.text(m) == "::" && self.is_ident(m + 1) {
                segs.push(self.text(m + 1).to_string());
                m += 2;
            }
            // Turbofish before the parens: `collect::<Vec<_>>()`.
            if self.text(m) == "::" && self.text(m + 1) == "<" {
                m = self.skip_angles(m + 1, hi);
            }
            if self.text(m) != "(" {
                k = m.max(k + 1);
                continue;
            }
            let is_method = segs.len() == 1 && self.text(k.wrapping_sub(1)) == ".";
            let recv_self = is_method
                && k >= 2
                && self.text(k - 2) == "self"
                && self.text(k.wrapping_sub(3)) != ".";
            let (arity, close) = self.call_args(m, hi);
            let propagated = self.text(close + 1) == "?";
            let last = segs.last().expect("segments are never empty").clone();
            let line = self.toks[k].line;
            if is_method && PANIC_METHODS.contains(&last.as_str()) {
                item.panics.push(PanicSite {
                    kind: PanicKind::UnwrapExpect,
                    what: last.clone(),
                    line,
                    recv_self,
                    propagated,
                });
            }
            let target = if is_method {
                CallTarget::Method(last)
            } else if segs.len() > 1 {
                CallTarget::Path(segs)
            } else {
                CallTarget::Bare(last)
            };
            item.calls.push(Call {
                target,
                arity,
                line,
                recv_self,
            });
            // Continue *inside* the argument list: nested calls count.
            k = m + 1;
        }
    }

    /// Count the arguments of a call whose open paren is at `open`;
    /// returns (arity, index of the closing paren).  Commas inside closure
    /// parameter pipes are not separators.
    fn call_args(&self, open: usize, end: usize) -> (usize, usize) {
        let mut depth = 0isize;
        let mut i = open;
        let mut commas = 0usize;
        let mut any = false;
        let mut in_pipes = false;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "|" if depth == 1 => in_pipes = !in_pipes,
                "," if depth == 1 && !in_pipes => commas += 1,
                _ if depth >= 1 => any = true,
                _ => {}
            }
            i += 1;
        }
        let mut arity = if any { commas + 1 } else { 0 };
        if any && self.trailing_comma(open, i) {
            arity -= 1;
        }
        (arity, i)
    }

    /// Scan a body span for taint sources, sink sites, lock-result
    /// indexing, and narrowing casts in accounting context.
    fn extract_sites(&mut self, lo: usize, hi: usize, item: &mut FnItem) {
        let toks = self.toks;
        let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
        let mut k = lo;
        while k < hi {
            let t = &toks[k];
            if t.kind != TokKind::Ident {
                k += 1;
                continue;
            }
            let line = t.line;
            let mut push_taint = |kind: TaintKind| {
                item.taints.push(TaintSource { kind, line });
            };
            match t.text.as_str() {
                "Instant" if text(k + 1) == "::" && text(k + 2) == "now" => {
                    push_taint(TaintKind::WallClock);
                }
                "SystemTime" => push_taint(TaintKind::WallClock),
                "HashMap" | "HashSet" => push_taint(TaintKind::HashIter),
                "ThreadId" => push_taint(TaintKind::ThreadId),
                "thread" if text(k + 1) == "::" && text(k + 2) == "current" => {
                    push_taint(TaintKind::ThreadId);
                }
                "thread_rng" | "OsRng" | "from_entropy" => push_taint(TaintKind::UnseededRng),
                "as_ptr" | "as_mut_ptr" => {
                    // A pointer observed as an integer: `x.as_ptr() as usize`
                    // within the same expression.
                    let window = (k + 1)..(k + 16).min(hi);
                    for w in window {
                        if text(w) == ";" {
                            break;
                        }
                        if text(w) == "as"
                            && matches!(text(w + 1), "usize" | "u64" | "u128" | "isize" | "i64")
                        {
                            push_taint(TaintKind::PtrToInt);
                            break;
                        }
                    }
                }
                "as" if NARROW_INTS.contains(&text(k + 1))
                    && self.cast_in_accounting_context(k, lo, hi) =>
                {
                    item.casts.push(Site { line });
                }
                _ => {}
            }
            // Sink sites: `Name {`, `Name::`, `Name(`, `.name(`.
            if self.cfg.sinks.iter().any(|s| s == &t.text)
                && matches!(text(k + 1), "{" | "::" | "(")
            {
                item.sinks.push(Site { line });
            }
            // Direct indexing on a lock/channel result.
            if GUARDED_OPS.contains(&t.text.as_str())
                && text(k.wrapping_sub(1)) == "."
                && text(k + 1) == "("
            {
                let (_, close) = self.call_args(k + 1, hi);
                if text(close + 1) == "[" {
                    item.panics.push(PanicSite {
                        kind: PanicKind::LockIndex,
                        what: t.text.clone(),
                        line: toks.get(close + 1).map_or(line, |t| t.line),
                        recv_self: false,
                        propagated: false,
                    });
                }
            }
            k += 1;
        }
    }

    /// True when the statement around the cast at `at` mentions an
    /// accounting identifier from [`Config::contexts`].
    fn cast_in_accounting_context(&self, at: usize, lo: usize, hi: usize) -> bool {
        let stmt_bound = |t: &str| matches!(t, ";" | "{" | "}");
        let mut idents: Vec<&str> = Vec::new();
        let mut i = at;
        while i > lo && !stmt_bound(self.text(i - 1)) && at - i < 48 {
            i -= 1;
            if self.is_ident(i) {
                idents.push(self.text(i));
            }
        }
        let mut j = at + 1;
        while j < hi && !stmt_bound(self.text(j)) && j - at < 48 {
            if self.is_ident(j) {
                idents.push(self.text(j));
            }
            j += 1;
        }
        idents.iter().any(|id| {
            // The std int-serialization methods contain "byte" but are
            // encoding plumbing, not byte *accounting* — `len() as u32`
            // before `.to_le_bytes()` is a wire format, not a counter.
            if matches!(
                *id,
                "to_le_bytes" | "from_le_bytes" | "to_be_bytes" | "from_be_bytes" | "to_ne_bytes"
            ) {
                return false;
            }
            let lower = id.to_ascii_lowercase();
            self.cfg.contexts.iter().any(|c| lower.contains(c.as_str()))
        })
    }
}

/// Extract the implemented type's name from an `impl` header span
/// `[start, brace)`: the type after `for` when present (`impl Trait for
/// Type`), else the first type path (`impl Type`).  Returns the last path
/// segment before any generic arguments.
fn impl_owner(toks: &[Tok], start: usize, brace: usize) -> Option<String> {
    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    let mut i = start;
    // Skip `impl<...>` generics.
    if text(i) == "<" {
        let mut depth = 0isize;
        while i < brace {
            match text(i) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Prefer the segment after a top-level `for`.
    let mut angle = 0isize;
    let mut for_at = None;
    for j in i..brace {
        match text(j) {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "for" if angle <= 0 => {
                for_at = Some(j + 1);
                break;
            }
            _ => {}
        }
    }
    let mut k = for_at.unwrap_or(i);
    // Strip reference/dyn prefixes, then take the last ident of the path
    // before generics or the brace.
    let mut last = None;
    let mut angle = 0isize;
    while k < brace {
        match toks.get(k) {
            Some(t) if t.kind == TokKind::Ident && angle == 0 => {
                if !matches!(t.text.as_str(), "dyn" | "mut" | "where") {
                    last = Some(t.text.clone());
                }
                // A path continues through `::`; anything else ends it.
                if text(k + 1) != "::" {
                    if text(k + 1) == "<" {
                        break;
                    }
                    break;
                }
                k += 1;
            }
            Some(t) if t.text == "<" => angle += 1,
            Some(t) if t.text == ">" => angle -= 1,
            _ => {}
        }
        k += 1;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file("crates/core/src/fixture.rs", src, &Config::default())
    }

    fn by_name<'a>(items: &'a [FnItem], name: &str) -> &'a FnItem {
        items
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {items:?}"))
    }

    #[test]
    fn module_paths_fold_files_and_inline_mods() {
        assert_eq!(
            module_path("crates/core/src/simulator.rs"),
            "core::simulator"
        );
        assert_eq!(module_path("crates/mem-trace/src/lib.rs"), "mem_trace");
        assert_eq!(module_path("src/bin/memsmoke.rs"), "bin::memsmoke");
        let items = parse("mod inner { pub fn deep() {} }\npub fn shallow() {}");
        assert_eq!(by_name(&items, "deep").qname, "core::fixture::inner::deep");
        assert_eq!(by_name(&items, "shallow").qname, "core::fixture::shallow");
    }

    #[test]
    fn impl_and_trait_owners_qualify_methods() {
        let src = "
impl ClusterSimulator {
    pub fn try_run(&self, trace: &Trace) -> Result<SimResult, E> { self.go(trace) }
}
impl<T: Clone> TraceSource for ReplaySource<T> {
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> { None }
}
trait Relocate {
    fn threshold(&self) -> u32 { 64 }
    fn relocate(&mut self, page: PageRef);
}
";
        let items = parse(src);
        assert_eq!(
            by_name(&items, "try_run").qname,
            "core::fixture::ClusterSimulator::try_run"
        );
        assert_eq!(
            by_name(&items, "next_event").owner.as_deref(),
            Some("ReplaySource")
        );
        let threshold = by_name(&items, "threshold");
        assert_eq!(threshold.owner.as_deref(), Some("Relocate"));
        assert!(threshold.has_body, "trait default bodies are parsed");
        assert!(!by_name(&items, "relocate").has_body);
    }

    #[test]
    fn arity_and_self_receivers() {
        let src = "
fn zero() {}
fn two(a: u32, b: (u32, u32)) {}
fn trailing(
    a: u32,
    b: u32,
) {}
impl S {
    fn method(&mut self, x: u32) {}
    fn only_self(&self) {}
}
";
        let items = parse(src);
        assert_eq!(by_name(&items, "zero").arity, 0);
        assert_eq!(by_name(&items, "two").arity, 2);
        assert_eq!(by_name(&items, "trailing").arity, 2);
        let m = by_name(&items, "method");
        assert_eq!((m.arity, m.has_self), (1, true));
        assert_eq!(by_name(&items, "only_self").arity, 0);
    }

    #[test]
    fn calls_are_extracted_with_kind_and_arity() {
        let src = "
fn caller(&self) {
    helper(1, 2);
    crate::module::deep(x);
    self.own_method(a);
    recv.other_method(a, b);
    items.iter().map(|a, b| a).collect::<Vec<_>>();
}
";
        let items = parse(src);
        let calls = &by_name(&items, "caller").calls;
        let find = |n: &str| {
            calls.iter().find(|c| match &c.target {
                CallTarget::Bare(b) => b == n,
                CallTarget::Path(p) => p.last().unwrap() == n,
                CallTarget::Method(m) => m == n,
            })
        };
        assert_eq!(find("helper").unwrap().arity, 2);
        assert!(matches!(find("deep").unwrap().target, CallTarget::Path(_)));
        let own = find("own_method").unwrap();
        assert!(own.recv_self && matches!(own.target, CallTarget::Method(_)));
        let other = find("other_method").unwrap();
        assert!(!other.recv_self);
        assert_eq!(other.arity, 2);
        assert_eq!(
            find("map").unwrap().arity,
            1,
            "closure-pipe commas are not argument separators"
        );
        assert!(find("collect").is_some(), "turbofish calls still extract");
    }

    #[test]
    fn panic_sites_record_context() {
        let src = r#"
fn worried(&self) {
    let a = x.unwrap();
    let b = y.expect("gone");
    let c = self.expect(b'{')?;
    panic!("boom");
    unreachable!();
    let d = rx.recv()[0];
    let e = table.lock().expect("poisoned")[i];
}
"#;
        let items = parse(src);
        let panics = &by_name(&items, "worried").panics;
        let unwraps: Vec<_> = panics
            .iter()
            .filter(|p| p.kind == PanicKind::UnwrapExpect)
            .collect();
        // unwrap, expect, self.expect, and the lock().expect.
        assert_eq!(unwraps.len(), 4, "{panics:?}");
        let self_expect = unwraps.iter().find(|p| p.recv_self).unwrap();
        assert!(self_expect.propagated, "the ? is recorded");
        assert_eq!(
            panics.iter().filter(|p| p.kind == PanicKind::Macro).count(),
            2
        );
        assert_eq!(
            panics
                .iter()
                .filter(|p| p.kind == PanicKind::LockIndex)
                .count(),
            1,
            "direct indexing on the recv() result: {panics:?}"
        );
    }

    #[test]
    fn taint_sources_sinks_and_casts_extract() {
        let src = "
fn tainted(&self) -> SimResult {
    let t = Instant::now();
    let m = HashMap::new();
    let p = buf.as_ptr() as usize;
    let r = thread_rng();
    SimResult { time: t }
}
fn costly(&self, cost: u64) -> u32 {
    let page_cost = cost as u32;
    let index = i as u32;
    page_cost
}
fn fingerprinted(&self) -> u64 {
    self.result.fingerprint()
}
";
        let items = parse(src);
        let tainted = by_name(&items, "tainted");
        let kinds: Vec<TaintKind> = tainted.taints.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TaintKind::WallClock));
        assert!(kinds.contains(&TaintKind::HashIter));
        assert!(kinds.contains(&TaintKind::PtrToInt));
        assert!(kinds.contains(&TaintKind::UnseededRng));
        assert_eq!(tainted.sinks.len(), 1, "SimResult {{ .. }} is a sink");
        let costly = by_name(&items, "costly");
        assert_eq!(
            costly.casts.len(),
            1,
            "only the accounting-context cast fires: {:?}",
            costly.casts
        );
        assert_eq!(by_name(&items, "fingerprinted").sinks.len(), 1);
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let src = "
pub fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn gated() { x.unwrap(); }
}
";
        let items = parse(src);
        assert!(!by_name(&items, "live").in_test);
        assert!(by_name(&items, "gated").in_test);
    }
}
