//! `dsm-lint`: the repo-specific determinism/concurrency lint.
//!
//! Every result in this reproduction is pinned by golden fingerprints that
//! assume bit-exact determinism, and the invariants behind that —
//! no unordered-container iteration in the simulation crates, no wall-clock
//! in the sim core, no panicking lock/channel unwraps in the service tier,
//! no scheduling-dependent float accumulation — were historically enforced
//! only by after-the-fact parity tests.  This crate checks them at the
//! source level on every commit: a small hand-rolled Rust lexer
//! ([`lexer`]), a rule pass over the token stream ([`rules`]), and a
//! committed findings baseline ([`baseline`]) so CI fails on *new*
//! violations while grandfathering documented old ones.
//!
//! The crate is deliberately dependency-free (its own JSON in [`json`], its
//! own walker in [`workspace`]): the gate must build in seconds, before the
//! simulator stack, and must never be taken down by the code it checks.
//! The companion *dynamic* check — exhaustive lockstep interleaving
//! exploration — lives in `mem-trace` (`ShardedSource::explore`), because it
//! needs the simulator itself; see the README's "Static analysis" section
//! for how the two fit together.

pub mod baseline;
pub mod config;
pub mod flow;
pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::{render_findings, Baseline};
pub use config::Config;
pub use graph::CallGraph;
pub use rules::{allowlist, is_rule, scan_source, Finding, RuleInfo, RULES};

use std::path::Path;

/// One full analysis: merged token + call-graph findings, plus the graph
/// itself (for `--emit-graph` and the self-tests).
pub struct Scan {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// The workspace call graph the flow rules ran on.
    pub graph: CallGraph,
}

/// Scan in-memory `(relpath, source)` pairs: the token rules per file,
/// then the call-graph rules across all of them.
pub fn scan_files(files: &[(String, String)], cfg: &Config) -> Scan {
    let mut findings = Vec::new();
    for (rel, src) in files {
        findings.extend(scan_source(rel, src));
    }
    let graph = flow::build_graph(files, cfg);
    findings.extend(flow::scan(&graph, files, cfg));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Scan { findings, graph }
}

/// Scan every `.rs` file under `root`, configured by `<root>/lint.toml`
/// (built-in defaults when the file is absent).  IO errors name the file
/// that failed.
pub fn scan_workspace(root: &Path) -> Result<Scan, String> {
    let cfg = Config::load(&root.join("lint.toml"))?;
    let walked =
        workspace::workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(walked.len());
    for (rel, abs) in walked {
        let source =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        files.push((rel, source));
    }
    Ok(scan_files(&files, &cfg))
}
