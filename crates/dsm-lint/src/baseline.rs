//! The committed findings baseline: grandfathered violations with reasons.
//!
//! CI policy is "no *new* violations": pre-existing findings live in
//! `lint-baseline.json` at the workspace root, each with a human-written
//! reason explaining why the site is tolerable, and a run fails only when
//! the tree contains findings the baseline does not cover.  Entries are
//! keyed by `(rule, file, trimmed source line)` rather than line number,
//! so unrelated edits above a grandfathered site don't invalidate the
//! baseline; editing the offending line itself *does* re-flag it, which is
//! the point — touched code must meet the current bar.
//!
//! `--fix-baseline` re-records the tree's findings, carrying existing
//! reasons forward and stamping new entries with an `UNREVIEWED:` prefix
//! that is meant to be replaced before committing.  A baseline entry with
//! an empty reason fails to load at all.

use crate::json::{self, Value};
use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;

/// The baseline document schema.  v2 (this PR) adds a `rules` array naming
/// the registry the baseline was recorded against, so `--self-check` can
/// detect a baseline recorded by a different rule set; `lint.toml` pins
/// the same number.
pub const SCHEMA_VERSION: u64 = 2;

/// Reason stamped on entries `--fix-baseline` adds; committed baselines
/// should replace it with the actual justification.
pub const UNREVIEWED: &str =
    "UNREVIEWED: recorded by --fix-baseline; replace with why this site is tolerable";

/// One grandfathered finding site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// Trimmed source line of the finding (the stable key).
    pub excerpt: String,
    /// How many findings with this key are tolerated.
    pub count: u64,
    /// Why the site is tolerable — mandatory, never empty.
    pub reason: String,
}

/// The full baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// The rule names the baseline was recorded against, in registry
    /// order.
    pub rules: Vec<String>,
    /// All grandfathered sites.
    pub entries: Vec<Entry>,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            rules: RULES.iter().map(|r| r.name.to_string()).collect(),
            entries: Vec::new(),
        }
    }
}

type Key = (String, String, String);

fn key_of(rule: &str, file: &str, excerpt: &str) -> Key {
    (rule.to_string(), file.to_string(), excerpt.to_string())
}

impl Baseline {
    /// Parse a baseline document.  Rejects unknown versions, malformed
    /// entries, and — deliberately — entries with an empty reason.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match doc.get_u64("version") {
            Some(SCHEMA_VERSION) => {}
            other => {
                return Err(format!(
                    "unsupported baseline version {other:?} (this build supports {SCHEMA_VERSION})"
                ));
            }
        }
        let rules = doc
            .get("rules")
            .and_then(Value::as_arr)
            .ok_or("baseline has no `rules` array (schema v2)")?
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.as_str()
                    .map(str::to_string)
                    .ok_or(format!("rules[{i}]: not a string"))
            })
            .collect::<Result<Vec<String>, String>>()?;
        let entries = doc
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("baseline has no `entries` array")?;
        let mut out = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let field = |name: &str| {
                e.get_str(name)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string `{name}`"))
            };
            let entry = Entry {
                rule: field("rule")?,
                file: field("file")?,
                excerpt: field("excerpt")?,
                count: e
                    .get_u64("count")
                    .ok_or(format!("entry {i}: missing `count`"))?,
                reason: field("reason")?,
            };
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "entry {i} ({} in {}): empty reason — every baseline entry must say why",
                    entry.rule, entry.file
                ));
            }
            if entry.count == 0 {
                return Err(format!("entry {i}: count must be >= 1"));
            }
            out.push(entry);
        }
        Ok(Baseline {
            rules,
            entries: out,
        })
    }

    /// True iff this baseline's `rules` array matches the build's registry
    /// exactly (names and order) — the `--self-check` contract.
    pub fn rules_match_registry(&self) -> bool {
        self.rules.len() == RULES.len() && self.rules.iter().zip(RULES).all(|(a, b)| a == b.name)
    }

    /// Render as pretty-printed JSON, sorted by `(file, rule, excerpt)` so
    /// re-recording produces minimal diffs.
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.excerpt).cmp(&(&b.file, &b.rule, &b.excerpt)));
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| format!("\"{}\"", json::escape(r)))
            .collect();
        let mut out = format!(
            "{{\n  \"version\": {SCHEMA_VERSION},\n  \"rules\": [{}],\n  \"entries\": [",
            rules.join(", ")
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"rule\": \"{}\",\n      \"file\": \"{}\",\n      \
                 \"excerpt\": \"{}\",\n      \"count\": {},\n      \"reason\": \"{}\"\n    }}",
                json::escape(&e.rule),
                json::escape(&e.file),
                json::escape(&e.excerpt),
                e.count,
                json::escape(&e.reason)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Build a baseline covering `findings`, carrying reasons forward from
    /// `previous` where the key survives and stamping new keys
    /// [`UNREVIEWED`].
    pub fn record(findings: &[Finding], previous: &Baseline) -> Baseline {
        let mut counts: BTreeMap<Key, u64> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(key_of(f.rule, &f.file, &f.excerpt))
                .or_default() += 1;
        }
        let entries = counts
            .into_iter()
            .map(|((rule, file, excerpt), count)| {
                let reason = previous
                    .entries
                    .iter()
                    .find(|e| e.rule == rule && e.file == file && e.excerpt == excerpt)
                    .map_or(UNREVIEWED.to_string(), |e| e.reason.clone());
                Entry {
                    rule,
                    file,
                    excerpt,
                    count,
                    reason,
                }
            })
            .collect();
        Baseline {
            rules: Baseline::default().rules,
            entries,
        }
    }

    /// The findings not covered by this baseline: for each key, findings
    /// beyond the grandfathered count (all of them if the key is absent).
    /// Returned in `findings` order.
    pub fn new_violations<'f>(&self, findings: &'f [Finding]) -> Vec<&'f Finding> {
        let mut budget: BTreeMap<Key, u64> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry(key_of(&e.rule, &e.file, &e.excerpt))
                .or_default() += e.count;
        }
        findings
            .iter()
            .filter(|f| {
                let k = key_of(f.rule, &f.file, &f.excerpt);
                match budget.get_mut(&k) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }

    /// Baseline entries no longer matched by any finding — candidates for
    /// deletion via `--fix-baseline` (reported, never auto-removed).
    pub fn stale(&self, findings: &[Finding]) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings
                    .iter()
                    .any(|f| f.rule == e.rule && f.file == e.file && f.excerpt == e.excerpt)
            })
            .collect()
    }
}

/// Render findings as a JSON report (the `--json` output and CI artifact).
/// Call-graph findings carry their evidence chain.
pub fn render_findings(findings: &[Finding], new: &[&Finding]) -> String {
    let one = |f: &Finding| {
        let chain: Vec<String> = f
            .chain
            .iter()
            .map(|s| format!("\"{}\"", json::escape(s)))
            .collect();
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\",\"chain\":[{}]}}",
            json::escape(f.rule),
            json::escape(&f.file),
            f.line,
            json::escape(&f.excerpt),
            chain.join(",")
        )
    };
    let all: Vec<String> = findings.iter().map(one).collect();
    let fresh: Vec<String> = new.iter().map(|f| one(f)).collect();
    format!(
        "{{\"total\":{},\"new\":{},\"findings\":[{}],\"new_findings\":[{}]}}\n",
        findings.len(),
        new.len(),
        all.join(","),
        fresh.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            excerpt: excerpt.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn round_trips_and_carries_reasons_forward() {
        let f = vec![
            finding("lock-unwrap", "a/src/x.rs", 10, "x.lock().unwrap();"),
            finding("lock-unwrap", "a/src/x.rs", 20, "x.lock().unwrap();"),
            finding("wall-clock", "a/src/y.rs", 3, "Instant::now()"),
        ];
        let mut b = Baseline::record(&f, &Baseline::default());
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries.iter().map(|e| e.count).sum::<u64>(), 3);
        assert!(b.entries.iter().all(|e| e.reason == UNREVIEWED));
        for e in &mut b.entries {
            e.reason = format!("vetted {}", e.rule);
        }
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, {
            let mut sorted = b.clone();
            sorted
                .entries
                .sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
            sorted
        });
        // Re-recording after one site is fixed keeps the human reason.
        let rerec = Baseline::record(&f[..2], &parsed);
        assert_eq!(rerec.entries.len(), 1);
        assert_eq!(rerec.entries[0].reason, "vetted lock-unwrap");
    }

    #[test]
    fn new_violations_respect_counts_and_keys() {
        let base = Baseline {
            rules: Baseline::default().rules,
            entries: vec![Entry {
                rule: "lock-unwrap".into(),
                file: "a/src/x.rs".into(),
                excerpt: "x.lock().unwrap();".into(),
                count: 1,
                reason: "legacy".into(),
            }],
        };
        let covered = vec![finding(
            "lock-unwrap",
            "a/src/x.rs",
            10,
            "x.lock().unwrap();",
        )];
        assert!(base.new_violations(&covered).is_empty());
        // A second instance of the same key exceeds the budget.
        let two = vec![
            finding("lock-unwrap", "a/src/x.rs", 10, "x.lock().unwrap();"),
            finding("lock-unwrap", "a/src/x.rs", 90, "x.lock().unwrap();"),
        ];
        assert_eq!(base.new_violations(&two).len(), 1);
        // A different excerpt is new even in the same file+rule.
        let moved = vec![finding(
            "lock-unwrap",
            "a/src/x.rs",
            10,
            "y.lock().unwrap();",
        )];
        assert_eq!(base.new_violations(&moved).len(), 1);
        assert_eq!(base.stale(&moved).len(), 1);
        assert!(base.stale(&covered).is_empty());
    }

    #[test]
    fn reasons_are_mandatory() {
        let doc = r#"{"version":2,"rules":[],"entries":[
            {"rule":"hash-iter","file":"f.rs","excerpt":"x","count":1,"reason":"   "}]}"#;
        let err = Baseline::parse(doc).unwrap_err();
        assert!(err.contains("empty reason"), "{err}");
        assert!(
            Baseline::parse(r#"{"version":1,"entries":[]}"#).is_err(),
            "v1 baselines are rejected, not silently upgraded"
        );
        assert!(
            Baseline::parse(r#"{"version":2,"entries":[]}"#).is_err(),
            "v2 requires the rules array"
        );
        assert!(Baseline::parse(r#"{"version":2,"rules":[]}"#).is_err());
        assert!(Baseline::parse(
            r#"{"version":2,"rules":[],"entries":[{"rule":"r","file":"f","excerpt":"x","count":0,"reason":"r"}]}"#
        )
        .is_err());
    }

    #[test]
    fn registry_check_pins_names_and_order() {
        let b = Baseline::default();
        assert!(b.rules_match_registry());
        assert!(Baseline::parse(&b.render()).unwrap().rules_match_registry());
        let mut wrong = b.clone();
        wrong.rules.pop();
        assert!(!wrong.rules_match_registry());
        let mut swapped = b.clone();
        swapped.rules.swap(0, 1);
        assert!(!swapped.rules_match_registry(), "order matters");
    }
}
