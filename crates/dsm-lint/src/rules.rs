//! The repo-specific rule set and the scanner that applies it.
//!
//! Every result in this reproduction hangs on bit-exact determinism: the
//! golden fingerprints pin the full workload x system matrix across
//! fused/threaded/sharded sources and 1-8 workers.  These rules check the
//! source-level invariants that determinism rests on, so a violation fails
//! CI at the commit that introduces it instead of surfacing as a golden
//! mismatch three PRs later (or never, if no golden happens to cover it):
//!
//! * **`hash-iter`** — no `HashMap`/`HashSet` in the simulation crates
//!   (`core`, `mem-trace`, `sim-engine`, `dsm-protocol`, `smp-node`).
//!   Iterating an unordered container is the PR 1 bug class (`migrate_page`
//!   sent gather messages in `HashSet` order, making MigRep runs differ
//!   run-to-run).  A token-level pass cannot prove a particular map is
//!   never iterated, and the repo policy is stronger anyway — sim crates
//!   use ordered (`BTreeMap`) or arena-indexed (`Slab`) state throughout —
//!   so *any* mention fires; a vetted non-iterating use takes an allow
//!   comment stating why.
//! * **`wall-clock`** — no `Instant::now` / `SystemTime` outside
//!   `bench::perf` (see [`allowlist`]).  Simulated time comes from the cost
//!   model; wall-clock in a sim crate is either dead or nondeterministic.
//!   Elapsed-time *reporting* on harness paths is legitimate and carries an
//!   allow comment saying so.
//! * **`lock-unwrap`** — no `.unwrap()` / `.expect(...)` / direct indexing
//!   on the results of lock and channel operations (`lock`, `try_lock`,
//!   `recv`, `try_recv`, `recv_timeout`, `send`, `try_send`, `join`) in
//!   non-test library code.  A poisoned mutex or a hung-up channel is a
//!   *reachable* state in a long-running service; panicking on it turns one
//!   failed request into a dead server.  Recover (`PoisonError::into_inner`)
//!   or return an error; where propagating a worker panic is genuinely the
//!   right behavior, say so in an allow comment or baseline reason.
//! * **`float-order`** — no floating-point accumulation (`+=`/`-=`/`*=`
//!   with a visibly-float operand, or `sum::<f64>()`) in the simulation
//!   crates without a documented merge order.  Float addition does not
//!   commute across reassociation, so an accumulation whose order depends
//!   on thread scheduling silently breaks bit-parity.  The detector is
//!   heuristic — it fires where the accumulation is *visibly* floating
//!   point at token level — and the allow comment is where the ordering
//!   argument gets written down.
//!
//! Rules skip test code (`#[test]` / `#[cfg(test)]` items) and anything
//! outside `src/` trees: the contract is about the shipped simulator, and
//! tests legitimately use wall-clock timeouts and `unwrap`.
//!
//! Suppression grammar: `// dsm-lint: allow(rule-name, reason)` on the same
//! line as the violation or the line directly above.  The reason is
//! mandatory — an allow without one is itself a finding (`allow-syntax`),
//! so every suppression in the tree records *why* the invariant holds.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// One rule's identity and documentation line.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The name used in findings, allow comments and baseline entries.
    pub name: &'static str,
    /// One-line description for `--list-rules` and reports.
    pub summary: &'static str,
}

/// The rule set, in severity-of-surprise order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iter",
        summary: "HashMap/HashSet in a simulation crate (unordered iteration broke MigRep in PR 1)",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "Instant::now/SystemTime outside bench::perf (simulated time must come from the cost model)",
    },
    RuleInfo {
        name: "lock-unwrap",
        summary: ".unwrap()/.expect()/indexing on lock or channel results in library code",
    },
    RuleInfo {
        name: "float-order",
        summary: "floating-point accumulation in a simulation crate without a documented ordering",
    },
    RuleInfo {
        name: "panic-path",
        summary: "panic site reachable from a declared entry point (lint.toml [panic-path])",
    },
    RuleInfo {
        name: "det-taint",
        summary: "nondeterminism source flowing into SimResult/fingerprint via the call graph",
    },
    RuleInfo {
        name: "cast-truncation",
        summary: "narrowing `as` cast in clock/byte accounting inside a simulation crate",
    },
    RuleInfo {
        name: "allow-syntax",
        summary: "malformed dsm-lint allow comment (unknown rule or missing reason)",
    },
];

/// True iff `name` is a rule an allow comment may name.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// The simulation crates `hash-iter` and `float-order` police: the crates
/// whose state evolution the golden fingerprints digest.
pub(crate) const SIM_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/mem-trace/src/",
    "crates/sim-engine/src/",
    "crates/dsm-protocol/src/",
    "crates/smp-node/src/",
];

/// Files exempt from a rule wholesale, each with the reason on record.
/// Prefer a site-level allow comment; a file lands here only when the rule
/// is inapplicable to the file's entire purpose.
pub fn allowlist() -> &'static [(&'static str, &'static str, &'static str)] {
    &[
        (
            "wall-clock",
            "crates/bench/src/perf.rs",
            "the perf benchmark exists to measure wall-clock events/sec; timing is its output, not sim state",
        ),
        (
            "wall-clock",
            "crates/bench/src/bin/perf.rs",
            "CLI front-end of the perf benchmark; same wall-clock-by-design contract",
        ),
        (
            "det-taint",
            "crates/bench/src/perf.rs",
            "the perf harness times simulation runs by design; the timings are the benchmark's \
             output and never feed back into SimResult or a fingerprint (which it only prints)",
        ),
    ]
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (a [`RULES`] name).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The trimmed source line, used for display and as the stable
    /// baseline key (line numbers drift; line content rarely does).
    pub excerpt: String,
    /// For the call-graph rules: the evidence chain (shortest call path
    /// from entry to panic site, or source-to-sink taint path).  Empty for
    /// token rules.
    pub chain: Vec<String>,
}

/// A parsed `dsm-lint: allow(rule, reason)` comment.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) rule: String,
}

/// Extract the valid allow comments from one file, for the cross-file
/// rules in [`crate::flow`] (malformed allows are reported by
/// [`scan_source`]; this helper ignores them).
pub(crate) fn file_allows(relpath: &str, source: &str) -> Vec<Allow> {
    let lexed = lex(source);
    let (allows, _) = parse_allows(relpath, &lexed.comments, &|_| String::new());
    allows
}

/// Scan one file's source.  `relpath` decides which rules are in scope
/// (the sim-crate list and [`allowlist`]); pass the path the file would
/// have relative to the workspace root, `/`-separated.
pub fn scan_source(relpath: &str, source: &str) -> Vec<Finding> {
    if !is_lib_code(relpath) {
        return Vec::new();
    }
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let (allows, mut findings) = parse_allows(relpath, &lexed.comments, &excerpt);

    let test_mask = test_region_mask(&lexed.toks);
    let toks: Vec<&Tok> = lexed
        .toks
        .iter()
        .zip(&test_mask)
        .filter(|(_, in_test)| !**in_test)
        .map(|(t, _)| t)
        .collect();

    let mut fire = |rule: &'static str, line: u32| {
        findings.push(Finding {
            rule,
            file: relpath.to_string(),
            line,
            excerpt: excerpt(line),
            chain: Vec::new(),
        });
    };

    if in_scope("hash-iter", relpath) {
        for t in &toks {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                fire("hash-iter", t.line);
            }
        }
    }

    if in_scope("wall-clock", relpath) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "SystemTime"
                || (t.text == "Instant"
                    && is_punct(toks.get(i + 1), "::")
                    && is_ident(toks.get(i + 2), "now"))
            {
                fire("wall-clock", t.line);
            }
        }
    }

    if in_scope("lock-unwrap", relpath) {
        scan_lock_unwrap(&toks, &mut fire);
    }

    if in_scope("float-order", relpath) {
        scan_float_order(&toks, &mut fire);
    }

    // Apply suppressions: an allow on line L covers findings on L (trailing
    // comment) and L + 1 (comment above the code).
    findings.retain(|f| {
        f.rule == "allow-syntax"
            || !allows
                .iter()
                .any(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Rules apply to library code only: files under a `src/` tree (crate
/// sources and binaries), not `tests/`, `examples/` or `benches/`.
pub(crate) fn is_lib_code(relpath: &str) -> bool {
    relpath.starts_with("src/") || relpath.contains("/src/")
}

fn in_scope(rule: &str, relpath: &str) -> bool {
    if allowlist()
        .iter()
        .any(|(r, file, _)| *r == rule && *file == relpath)
    {
        return false;
    }
    match rule {
        "hash-iter" | "float-order" => SIM_CRATES.iter().any(|p| relpath.starts_with(p)),
        _ => true,
    }
}

fn is_punct(t: Option<&&Tok>, text: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(t: Option<&&Tok>, text: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// Lock/channel operations whose `Result` must not be unwrapped in library
/// code.
pub(crate) const GUARDED_OPS: &[&str] = &[
    "lock",
    "try_lock",
    "recv",
    "try_recv",
    "recv_timeout",
    "send",
    "try_send",
    "join",
];

fn scan_lock_unwrap(toks: &[&Tok], fire: &mut impl FnMut(&'static str, u32)) {
    let mut i = 0;
    while i + 2 < toks.len() {
        let call = is_punct(toks.get(i), ".")
            && toks[i + 1].kind == TokKind::Ident
            && GUARDED_OPS.contains(&toks[i + 1].text.as_str())
            && is_punct(toks.get(i + 2), "(");
        if !call {
            i += 1;
            continue;
        }
        // Find the call's closing paren.
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "(") => depth += 1,
                (TokKind::Punct, ")") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // `.unwrap()` / `.expect(` / `[` directly on the result.
        let unwrapped = (is_punct(toks.get(j + 1), ".")
            && (is_ident(toks.get(j + 2), "unwrap") || is_ident(toks.get(j + 2), "expect"))
            && is_punct(toks.get(j + 3), "("))
            || is_punct(toks.get(j + 1), "[");
        if unwrapped {
            let line = toks
                .get(j + 2)
                .or(toks.get(j + 1))
                .map_or(toks[i + 1].line, |t| t.line);
            fire("lock-unwrap", line);
            i = j + 3;
        } else {
            i = j.max(i + 1);
        }
    }
}

fn scan_float_order(toks: &[&Tok], fire: &mut impl FnMut(&'static str, u32)) {
    for (i, t) in toks.iter().enumerate() {
        // `sum::<f64>()` / `product::<f32>()`: a reduction whose order is
        // whatever the iterator's order is.
        if t.kind == TokKind::Ident
            && (t.text == "sum" || t.text == "product")
            && is_punct(toks.get(i + 1), "::")
            && is_punct(toks.get(i + 2), "<")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32"))
        {
            fire("float-order", t.line);
        }
        // `x += expr` where the statement is visibly floating point.
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "+=" | "-=" | "*=") {
            let stmt_is_float = toks[i + 1..]
                .iter()
                .take_while(|t| !(t.kind == TokKind::Punct && t.text == ";"))
                .take(64)
                .any(|t| {
                    t.kind == TokKind::Float
                        || (t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32"))
                });
            if stmt_is_float {
                fire("float-order", t.line);
            }
        }
    }
}

/// Parse allow comments; malformed ones become `allow-syntax` findings.
fn parse_allows(
    relpath: &str,
    comments: &[Comment],
    excerpt: &impl Fn(u32) -> String,
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Allow annotations are plain `//` comments only.  Doc comments
        // (`///` → text starting with `/`, `//!` → `!`) are documentation —
        // this file's own description of the grammar must not parse as a
        // directive.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("dsm-lint:") else {
            continue;
        };
        let mut bad = |why: &str| {
            findings.push(Finding {
                rule: "allow-syntax",
                file: relpath.to_string(),
                line: c.line,
                excerpt: format!("{} ({why})", excerpt(c.line)),
                chain: Vec::new(),
            });
        };
        let rest = c.text[at + "dsm-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("expected `allow(rule, reason)`");
            continue;
        };
        let Some(close) = args.rfind(')') else {
            bad("missing closing `)`");
            continue;
        };
        let args = &args[..close];
        let Some((rule, reason)) = args.split_once(',') else {
            bad("missing reason: use `allow(rule, why the invariant holds)`");
            continue;
        };
        let (rule, reason) = (rule.trim(), reason.trim());
        if !is_rule(rule) {
            bad(&format!("unknown rule `{rule}`"));
            continue;
        }
        if reason.is_empty() {
            bad("empty reason");
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rule: rule.to_string(),
        });
    }
    (allows, findings)
}

/// Mark tokens belonging to test-gated items: an attribute containing the
/// ident `test` (`#[test]`, `#[cfg(test)]`, `#[tokio::test]`) gates the item
/// that follows, through its closing brace or semicolon.  `cfg(not(test))`
/// stays live code.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "["))
        {
            i += 1;
            continue;
        }
        // Collect the attribute group.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut gated = false;
        let mut negated = false;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "test") => gated = true,
                (TokKind::Ident, "not") => negated = true,
                _ => {}
            }
            j += 1;
        }
        if !gated || negated {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then blank out the item through its
        // closing `}` (or `;` for `mod tests;` / use declarations).
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item body start at bracket depth 0.
        let mut paren = 0isize;
        let mut end = k;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => break,
                "{" if paren == 0 => {
                    // Brace-match to the item's end.
                    let mut braces = 0usize;
                    while end < toks.len() {
                        match toks[end].text.as_str() {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(toks.len())).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/core/src/fixture.rs";
    const LIB: &str = "crates/bench/src/fixture.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn scope_boundaries_hold() {
        let hash = "pub fn f(m: &std::collections::HashMap<u32, u32>) {}\n";
        assert_eq!(rules_fired(SIM, hash), vec!["hash-iter"]);
        assert!(
            rules_fired(LIB, hash).is_empty(),
            "bench is not a sim crate"
        );
        assert!(
            rules_fired("tests/fixture.rs", hash).is_empty(),
            "integration tests are not library code"
        );
        assert!(
            rules_fired("crates/bench/src/perf.rs", "let t = Instant::now();").is_empty(),
            "bench::perf is allowlisted for wall-clock"
        );
    }

    #[test]
    fn test_gated_items_are_skipped() {
        let src = "
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
pub fn live() {}
";
        assert!(rules_fired(SIM, src).is_empty());
        let live = "
#[cfg(not(test))]
pub fn live(m: &std::collections::HashSet<u32>) {}
";
        assert_eq!(rules_fired(SIM, live), vec!["hash-iter"]);
    }

    #[test]
    fn lock_unwrap_needs_both_halves() {
        assert_eq!(
            rules_fired(LIB, "let g = self.state.lock().unwrap();"),
            vec!["lock-unwrap"]
        );
        assert_eq!(
            rules_fired(LIB, "let g = self.state.lock().expect(\"poisoned\");"),
            vec!["lock-unwrap"]
        );
        assert_eq!(
            rules_fired(LIB, "let v = rx.recv().unwrap()[0];"),
            vec!["lock-unwrap"]
        );
        assert!(
            rules_fired(
                LIB,
                "let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);"
            )
            .is_empty(),
            "recovery is the sanctioned pattern"
        );
        assert!(
            rules_fired(LIB, "let s = parts.join(\", \");").is_empty(),
            "a join not followed by unwrap is fine"
        );
        assert!(
            rules_fired(LIB, "self.expect(b'{')?;").is_empty(),
            "an own method named expect is not a lock op"
        );
    }

    #[test]
    fn float_order_fires_on_visible_float_accumulation() {
        assert_eq!(
            rules_fired(SIM, "self.mean += delta / self.count as f64;"),
            vec!["float-order"]
        );
        assert_eq!(
            rules_fired(SIM, "let s = xs.iter().sum::<f64>();"),
            vec!["float-order"]
        );
        assert!(
            rules_fired(SIM, "self.count += 1;").is_empty(),
            "integer accumulation is order-safe"
        );
    }

    #[test]
    fn allow_comments_suppress_with_a_reason_and_fail_without() {
        let above = "
// dsm-lint: allow(hash-iter, vetted: drained into a BTreeSet before iteration)
pub fn f(m: &std::collections::HashMap<u32, u32>) {}
";
        assert!(rules_fired(SIM, above).is_empty());
        let trailing =
            "pub fn f(m: &std::collections::HashMap<u32, u32>) {} // dsm-lint: allow(hash-iter, vetted above)\n";
        assert!(rules_fired(SIM, trailing).is_empty());
        let wrong_rule = "
// dsm-lint: allow(wall-clock, wrong rule for this site)
pub fn f(m: &std::collections::HashMap<u32, u32>) {}
";
        assert_eq!(rules_fired(SIM, wrong_rule), vec!["hash-iter"]);
        let no_reason = "
// dsm-lint: allow(hash-iter)
pub fn f(m: &std::collections::HashMap<u32, u32>) {}
";
        let fired = rules_fired(SIM, no_reason);
        assert!(fired.contains(&"allow-syntax"), "{fired:?}");
        assert!(
            fired.contains(&"hash-iter"),
            "a bad allow suppresses nothing"
        );
        let unknown = "// dsm-lint: allow(no-such-rule, reason)\n";
        assert_eq!(rules_fired(SIM, unknown), vec!["allow-syntax"]);
        let doc = "//! The grammar is `dsm-lint: allow(rule, reason)`.\n";
        assert!(
            rules_fired(SIM, doc).is_empty(),
            "doc comments describe the grammar, they are not directives"
        );
    }

    #[test]
    fn patterns_inside_strings_and_comments_are_inert() {
        let src = r#"
// HashMap iteration order broke MigRep once; see PR 1.
pub fn doc() -> &'static str {
    "Instant::now() and SystemTime and lock().unwrap()"
}
"#;
        assert!(rules_fired(SIM, src).is_empty());
    }
}
