//! Simulation results: execution time, miss breakdowns, page operations.
//!
//! The harness reproduces the paper's figures by comparing [`SimResult`]s:
//! execution times are normalized against the perfect-CC-NUMA run of the
//! same workload (Figures 5-8), and the per-node miss/page-operation counts
//! feed Table 4.

use dsm_protocol::TrafficStats;
use serde::{Deserialize, Serialize};
use sim_engine::Cycles;

/// Per-node counters accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Processor-cache hits on this node.
    pub l1_hits: u64,
    /// Misses satisfied by local memory (home pages, replicas, page-cache or
    /// block-cache hits).
    pub local_misses: u64,
    /// Misses that required a transaction to another node.
    pub remote_misses: u64,
    /// The subset of remote misses classified capacity/conflict.
    pub remote_capacity_misses: u64,
    /// Cold (first-reference) misses on this node.
    pub cold_misses: u64,
    /// Coherence (invalidation) misses on this node.
    pub coherence_misses: u64,
    /// Capacity/conflict misses on this node (local or remote).
    pub capacity_conflict_misses: u64,
    /// Pages migrated *to* this node.
    pub migrations: u64,
    /// Read-only replicas installed on this node.
    pub replications: u64,
    /// Pages relocated into this node's S-COMA page cache.
    pub relocations: u64,
    /// Page-cache frames reclaimed (replacements) on this node.
    pub page_cache_replacements: u64,
    /// Replicated pages switched back to read-write due to a write by this
    /// node.
    pub switches_to_rw: u64,
    /// Cycles this node's processors spent stalled on page operations.
    pub page_op_cycles: Cycles,
    /// Cycles this node's processors spent stalled on memory accesses.
    pub memory_stall_cycles: Cycles,
}

impl NodeStats {
    /// Total misses (local + remote).
    pub fn total_misses(&self) -> u64 {
        self.local_misses + self.remote_misses
    }

    /// Page operations of any kind performed on behalf of this node.
    pub fn page_operations(&self) -> u64 {
        self.migrations + self.replications + self.relocations
    }
}

/// The complete result of simulating one workload on one system.
///
/// `SimResult` implements `Eq`: simulation is deterministic, so two runs of
/// the same (machine, system, trace) triple must compare bit-identical —
/// the old-vs-new API parity tests rely on this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// System name (e.g. "CC-NUMA", "MigRep", "R-NUMA").
    pub system: String,
    /// Workload name (Table 2 row).
    pub workload: String,
    /// Parallel execution time: the largest per-processor completion time.
    pub execution_time: Cycles,
    /// Per-node counters.
    pub per_node: Vec<NodeStats>,
    /// Interconnect traffic.
    pub traffic: TrafficStats,
    /// Total shared-memory accesses simulated.
    pub accesses: u64,
    /// Total barrier episodes synchronized.
    pub barriers: u64,
}

impl SimResult {
    /// Execution time of this run divided by `baseline`'s execution time.
    /// This is the paper's "normalized execution time" (baseline = perfect
    /// CC-NUMA).
    pub fn normalized_against(&self, baseline: &SimResult) -> f64 {
        if baseline.execution_time.is_zero() {
            return 1.0;
        }
        self.execution_time.raw() as f64 / baseline.execution_time.raw() as f64
    }

    /// Sum of a per-node counter over all nodes.
    fn sum_nodes<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).sum()
    }

    /// Average of a per-node counter across nodes (Table 4 reports per-node
    /// numbers).
    fn avg_nodes<F: Fn(&NodeStats) -> u64>(&self, f: F) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.sum_nodes(f) as f64 / self.per_node.len() as f64
    }

    /// Total remote misses across the cluster.
    pub fn total_remote_misses(&self) -> u64 {
        self.sum_nodes(|n| n.remote_misses)
    }

    /// Total capacity/conflict remote misses across the cluster.
    pub fn total_remote_capacity_misses(&self) -> u64 {
        self.sum_nodes(|n| n.remote_capacity_misses)
    }

    /// Per-node average remote misses (the "overall misses" column of
    /// Table 4).
    pub fn per_node_remote_misses(&self) -> f64 {
        self.avg_nodes(|n| n.remote_misses)
    }

    /// Per-node average capacity/conflict remote misses (the parenthesized
    /// column of Table 4).
    pub fn per_node_remote_capacity_misses(&self) -> f64 {
        self.avg_nodes(|n| n.remote_capacity_misses)
    }

    /// Per-node average page migrations.
    pub fn per_node_migrations(&self) -> f64 {
        self.avg_nodes(|n| n.migrations)
    }

    /// Per-node average page replications.
    pub fn per_node_replications(&self) -> f64 {
        self.avg_nodes(|n| n.replications)
    }

    /// Per-node average R-NUMA page relocations.
    pub fn per_node_relocations(&self) -> f64 {
        self.avg_nodes(|n| n.relocations)
    }

    /// Total page operations across the cluster.
    pub fn total_page_operations(&self) -> u64 {
        self.sum_nodes(|n| n.page_operations())
    }

    /// Total page-cache replacements across the cluster.
    pub fn total_page_cache_replacements(&self) -> u64 {
        self.sum_nodes(|n| n.page_cache_replacements)
    }

    /// Fraction of all misses that were satisfied locally.
    pub fn local_hit_fraction(&self) -> f64 {
        let local = self.sum_nodes(|n| n.local_misses);
        let total = self.sum_nodes(|n| n.total_misses());
        if total == 0 {
            0.0
        } else {
            local as f64 / total as f64
        }
    }

    /// A stable 64-bit FNV-1a digest of the *complete* result: execution
    /// time, every per-node counter, the full per-kind traffic matrix, and
    /// the access/barrier totals.  Two results compare `==` iff their
    /// fingerprints match (modulo the vanishing hash-collision probability),
    /// so committed fingerprints pin bit-identical simulator behaviour
    /// across refactors without committing whole `SimResult`s (the
    /// golden-snapshot parity tests rely on this).
    ///
    /// The field enumeration below is the fingerprint *format*: changing it
    /// (or the meaning of any field feeding it) invalidates every committed
    /// golden, which is exactly the alarm it exists to raise.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut feed = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        feed(self.execution_time.raw());
        feed(self.accesses);
        feed(self.barriers);
        feed(self.per_node.len() as u64);
        for n in &self.per_node {
            feed(n.l1_hits);
            feed(n.local_misses);
            feed(n.remote_misses);
            feed(n.remote_capacity_misses);
            feed(n.cold_misses);
            feed(n.coherence_misses);
            feed(n.capacity_conflict_misses);
            feed(n.migrations);
            feed(n.replications);
            feed(n.relocations);
            feed(n.page_cache_replacements);
            feed(n.switches_to_rw);
            feed(n.page_op_cycles.raw());
            feed(n.memory_stall_cycles.raw());
        }
        for kind in dsm_protocol::MsgKind::ALL {
            feed(self.traffic.messages_of(kind));
            feed(self.traffic.bytes_of(kind));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(exec: u64, per_node: Vec<NodeStats>) -> SimResult {
        SimResult {
            system: "test".into(),
            workload: "toy".into(),
            execution_time: Cycles::new(exec),
            per_node,
            traffic: TrafficStats::new(),
            accesses: 0,
            barriers: 0,
        }
    }

    #[test]
    fn normalization_is_a_ratio() {
        let baseline = result_with(1_000, vec![]);
        let slower = result_with(1_600, vec![]);
        assert!((slower.normalized_against(&baseline) - 1.6).abs() < 1e-12);
        assert!((baseline.normalized_against(&baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_degrades_gracefully() {
        let baseline = result_with(0, vec![]);
        let r = result_with(10, vec![]);
        assert_eq!(r.normalized_against(&baseline), 1.0);
    }

    #[test]
    fn per_node_averages() {
        let a = NodeStats {
            remote_misses: 100,
            remote_capacity_misses: 60,
            migrations: 2,
            relocations: 10,
            local_misses: 50,
            ..Default::default()
        };
        let b = NodeStats {
            remote_misses: 300,
            remote_capacity_misses: 100,
            migrations: 4,
            relocations: 30,
            local_misses: 150,
            ..Default::default()
        };
        let r = result_with(1, vec![a, b]);
        assert_eq!(r.total_remote_misses(), 400);
        assert_eq!(r.per_node_remote_misses(), 200.0);
        assert_eq!(r.per_node_remote_capacity_misses(), 80.0);
        assert_eq!(r.per_node_migrations(), 3.0);
        assert_eq!(r.per_node_relocations(), 20.0);
        assert_eq!(r.total_page_operations(), 46);
        assert!((r.local_hit_fraction() - 200.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn node_stats_helpers() {
        let n = NodeStats {
            local_misses: 5,
            remote_misses: 7,
            migrations: 1,
            replications: 2,
            relocations: 3,
            ..Default::default()
        };
        assert_eq!(n.total_misses(), 12);
        assert_eq!(n.page_operations(), 6);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = result_with(10, vec![]);
        assert_eq!(r.per_node_remote_misses(), 0.0);
        assert_eq!(r.local_hit_fraction(), 0.0);
    }

    /// Every ratio helper on the all-zero edge (empty trace, no nodes):
    /// nothing may divide by zero or go NaN.
    #[test]
    fn zero_denominators_never_produce_nan() {
        let zero = result_with(0, vec![]);
        assert_eq!(zero.normalized_against(&zero), 1.0, "0/0 normalizes to 1");
        assert_eq!(zero.per_node_remote_misses(), 0.0);
        assert_eq!(zero.per_node_remote_capacity_misses(), 0.0);
        assert_eq!(zero.per_node_migrations(), 0.0);
        assert_eq!(zero.per_node_replications(), 0.0);
        assert_eq!(zero.per_node_relocations(), 0.0);
        assert_eq!(zero.local_hit_fraction(), 0.0);
        assert_eq!(zero.total_page_operations(), 0);

        // Zero-valued nodes (the zero-node-counter edge, not just the
        // zero-node-count edge).
        let quiet = result_with(0, vec![NodeStats::default(), NodeStats::default()]);
        assert_eq!(quiet.per_node_remote_misses(), 0.0);
        assert_eq!(quiet.local_hit_fraction(), 0.0);
        assert!(quiet.normalized_against(&quiet).is_finite());
    }
}
