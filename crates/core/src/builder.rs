//! Composable construction of [`SystemConfig`]s.
//!
//! The paper's systems are one base machine plus features: a block cache
//! *or* a page cache, optional page migration/replication, a cost model and
//! policy thresholds.  [`System`] provides the three base configurations and
//! [`SystemBuilder`] composes features onto them:
//!
//! ```
//! use dsm_core::{CostModel, MigRep, PageCaching, System, Thresholds};
//!
//! // The paper's CC-NUMA+MigRep with slow page operations (Figure 6).
//! let migrep_slow = System::cc_numa()
//!     .with(MigRep::both())
//!     .with(CostModel::slow())
//!     .with(Thresholds::paper_slow())
//!     .named("MigRep-Slow")
//!     .build();
//! assert_eq!(migrep_slow.name, "MigRep-Slow");
//!
//! // The Section 6.4 hybrid: R-NUMA with half the page cache plus MigRep,
//! // relocation delayed by 32000 misses.
//! let hybrid = System::r_numa()
//!     .with(PageCaching::half())
//!     .with(MigRep::both())
//!     .relocation_delay(32_000)
//!     .build();
//! assert_eq!(hybrid.name, "R-NUMA-1/2+MigRep");
//! ```
//!
//! When no explicit name is given, [`SystemBuilder::build`] derives the
//! paper's name for the composition ("CC-NUMA", "Rep", "Mig", "MigRep",
//! "R-NUMA", "R-NUMA-Inf", "R-NUMA-1/2", "R-NUMA-1/2+MigRep", ...).
//!
//! Third-party [`RelocationPolicy`] implementations are attached with
//! [`SystemBuilder::policy`]; see the
//! [`policy`](crate::policy) module documentation for a worked example.

use crate::config::{MigRepConfig, SystemConfig};
use crate::cost::{CostModel, Thresholds};
use crate::policy::{PolicyFactory, RelocationPolicy};
use dsm_protocol::{BlockCacheConfig, PageCacheConfig};

/// Entry points for building the paper's system families.
#[derive(Debug, Clone, Copy)]
pub struct System;

impl System {
    /// CC-NUMA: the paper's 64-KB SRAM block cache, no page cache.
    pub fn cc_numa() -> SystemBuilder {
        SystemBuilder {
            block_cache: Some(BlockCacheConfig::PAPER),
            ..SystemBuilder::empty()
        }
    }

    /// Perfect CC-NUMA: an infinite block cache.  Every figure in the paper
    /// is normalized against this system.
    pub fn perfect_cc_numa() -> SystemBuilder {
        SystemBuilder {
            block_cache: Some(BlockCacheConfig::Infinite),
            ..SystemBuilder::empty()
        }
    }

    /// R-NUMA: the paper's 2.4-MB S-COMA page cache, no block cache.
    pub fn r_numa() -> SystemBuilder {
        SystemBuilder {
            page_cache: Some(PageCacheConfig::PAPER),
            ..SystemBuilder::empty()
        }
    }

    /// A bare system with neither a block cache nor a page cache; compose
    /// everything explicitly.
    pub fn custom() -> SystemBuilder {
        SystemBuilder::empty()
    }
}

/// Builder accumulating the pieces of a [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    name: Option<String>,
    block_cache: Option<BlockCacheConfig>,
    page_cache: Option<PageCacheConfig>,
    migrep: Option<MigRepConfig>,
    costs: CostModel,
    thresholds: Thresholds,
    extra_policies: Vec<PolicyFactory>,
}

impl SystemBuilder {
    fn empty() -> Self {
        SystemBuilder {
            name: None,
            block_cache: None,
            page_cache: None,
            migrep: None,
            costs: CostModel::base(),
            thresholds: Thresholds::paper_fast(),
            extra_policies: Vec::new(),
        }
    }

    /// Apply a feature ([`MigRep`], [`PageCaching`], [`BlockCaching`],
    /// [`CostModel`], [`Thresholds`]).
    pub fn with<F: SystemFeature>(self, feature: F) -> Self {
        feature.apply(self)
    }

    /// Override the display name (otherwise derived from the composition).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Delay R-NUMA relocation until a page has seen this many misses (the
    /// Section 6.4 hybrid uses 32000).
    pub fn relocation_delay(mut self, delay: u64) -> Self {
        self.thresholds = self.thresholds.with_relocation_delay(delay);
        self
    }

    /// Attach a third-party [`RelocationPolicy`], constructed fresh for
    /// every simulation run.  Extra policies run after the built-in MigRep /
    /// R-NUMA engines, in registration order.
    pub fn policy(
        mut self,
        factory: impl Fn() -> Box<dyn RelocationPolicy> + Send + Sync + 'static,
    ) -> Self {
        self.extra_policies.push(PolicyFactory::new(factory));
        self
    }

    /// The paper's name for this composition.
    fn derived_name(&self) -> String {
        if let Some(pc) = self.page_cache {
            let base = match pc {
                PageCacheConfig::Infinite => "R-NUMA-Inf",
                pc if pc == PageCacheConfig::PAPER_HALF => "R-NUMA-1/2",
                _ => "R-NUMA",
            };
            match self.migrep {
                Some(_) => format!("{base}+MigRep"),
                None => base.to_string(),
            }
        } else {
            match self.migrep {
                Some(MigRepConfig {
                    migration: true,
                    replication: true,
                }) => "MigRep".to_string(),
                Some(MigRepConfig {
                    migration: true,
                    replication: false,
                }) => "Mig".to_string(),
                Some(MigRepConfig {
                    migration: false,
                    replication: true,
                }) => "Rep".to_string(),
                _ => {
                    if self.block_cache == Some(BlockCacheConfig::Infinite) {
                        "Perfect-CC-NUMA".to_string()
                    } else {
                        "CC-NUMA".to_string()
                    }
                }
            }
        }
    }

    /// Finalize the configuration.
    pub fn build(self) -> SystemConfig {
        let name = match &self.name {
            Some(n) => n.clone(),
            None => self.derived_name(),
        };
        SystemConfig {
            name,
            block_cache: self.block_cache,
            page_cache: self.page_cache,
            migrep: self.migrep,
            costs: self.costs,
            thresholds: self.thresholds,
            extra_policies: self.extra_policies,
        }
    }
}

/// A composable system feature; see [`SystemBuilder::with`].
pub trait SystemFeature {
    /// Fold this feature into the builder.
    fn apply(self, builder: SystemBuilder) -> SystemBuilder;
}

/// Page migration/replication support (the home-node MigRep engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigRep(MigRepConfig);

impl MigRep {
    /// Both migration and replication (the paper's "MigRep").
    pub fn both() -> Self {
        MigRep(MigRepConfig::BOTH)
    }

    /// Migration only ("Mig").
    pub fn migration_only() -> Self {
        MigRep(MigRepConfig::MIGRATION_ONLY)
    }

    /// Replication only ("Rep").
    pub fn replication_only() -> Self {
        MigRep(MigRepConfig::REPLICATION_ONLY)
    }

    /// An explicit configuration.
    pub fn config(cfg: MigRepConfig) -> Self {
        MigRep(cfg)
    }
}

impl SystemFeature for MigRep {
    fn apply(self, mut builder: SystemBuilder) -> SystemBuilder {
        builder.migrep = Some(self.0);
        builder
    }
}

/// Fine-grain memory caching: the S-COMA page cache (R-NUMA family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCaching(Option<PageCacheConfig>);

impl PageCaching {
    /// The paper's base 2.4-MB page cache.
    pub fn paper() -> Self {
        PageCaching(Some(PageCacheConfig::PAPER))
    }

    /// The paper's halved 1.2-MB page cache (Section 6.4).
    pub fn half() -> Self {
        PageCaching(Some(PageCacheConfig::PAPER_HALF))
    }

    /// An unbounded page cache ("R-NUMA-Inf").
    pub fn infinite() -> Self {
        PageCaching(Some(PageCacheConfig::Infinite))
    }

    /// A finite page cache of the given size.
    pub fn bytes(size_bytes: u64) -> Self {
        PageCaching(Some(PageCacheConfig::Finite { size_bytes }))
    }

    /// An explicit configuration.
    pub fn config(cfg: PageCacheConfig) -> Self {
        PageCaching(Some(cfg))
    }

    /// Remove the page cache.
    pub fn none() -> Self {
        PageCaching(None)
    }
}

impl SystemFeature for PageCaching {
    fn apply(self, mut builder: SystemBuilder) -> SystemBuilder {
        builder.page_cache = self.0;
        builder
    }
}

/// The cluster device's SRAM block cache (CC-NUMA family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCaching(Option<BlockCacheConfig>);

impl BlockCaching {
    /// The paper's 64-KB block cache.
    pub fn paper() -> Self {
        BlockCaching(Some(BlockCacheConfig::PAPER))
    }

    /// An infinite block cache ("Perfect-CC-NUMA").
    pub fn infinite() -> Self {
        BlockCaching(Some(BlockCacheConfig::Infinite))
    }

    /// A finite block cache of the given size.
    pub fn bytes(size_bytes: u64) -> Self {
        BlockCaching(Some(BlockCacheConfig::Finite { size_bytes }))
    }

    /// Remove the block cache (R-NUMA systems: the page cache subsumes it).
    pub fn none() -> Self {
        BlockCaching(None)
    }
}

impl SystemFeature for BlockCaching {
    fn apply(self, mut builder: SystemBuilder) -> SystemBuilder {
        builder.block_cache = self.0;
        builder
    }
}

impl SystemFeature for CostModel {
    fn apply(self, mut builder: SystemBuilder) -> SystemBuilder {
        builder.costs = self;
        builder
    }
}

impl SystemFeature for Thresholds {
    fn apply(self, mut builder: SystemBuilder) -> SystemBuilder {
        builder.thresholds = self;
        builder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_builders_match_the_paper_systems() {
        let cc = System::cc_numa().build();
        assert_eq!(cc.name, "CC-NUMA");
        assert_eq!(cc.block_cache, Some(BlockCacheConfig::PAPER));
        assert!(cc.page_cache.is_none());
        assert!(cc.migrep.is_none());

        let perfect = System::perfect_cc_numa().build();
        assert_eq!(perfect.name, "Perfect-CC-NUMA");
        assert_eq!(perfect.block_cache, Some(BlockCacheConfig::Infinite));

        let rn = System::r_numa().build();
        assert_eq!(rn.name, "R-NUMA");
        assert!(rn.block_cache.is_none());
        assert_eq!(rn.page_cache, Some(PageCacheConfig::PAPER));
    }

    #[test]
    fn derived_names_cover_the_paper_compositions() {
        assert_eq!(
            System::cc_numa().with(MigRep::both()).build().name,
            "MigRep"
        );
        assert_eq!(
            System::cc_numa()
                .with(MigRep::migration_only())
                .build()
                .name,
            "Mig"
        );
        assert_eq!(
            System::cc_numa()
                .with(MigRep::replication_only())
                .build()
                .name,
            "Rep"
        );
        assert_eq!(
            System::r_numa().with(PageCaching::infinite()).build().name,
            "R-NUMA-Inf"
        );
        assert_eq!(
            System::r_numa().with(PageCaching::half()).build().name,
            "R-NUMA-1/2"
        );
        assert_eq!(
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .build()
                .name,
            "R-NUMA-1/2+MigRep"
        );
    }

    #[test]
    fn named_overrides_the_derived_name() {
        let cfg = System::cc_numa()
            .with(MigRep::both())
            .named("MigRep-Slow")
            .build();
        assert_eq!(cfg.name, "MigRep-Slow");
    }

    #[test]
    fn cost_model_and_thresholds_compose_as_features() {
        let cfg = System::cc_numa()
            .with(MigRep::both())
            .with(CostModel::slow())
            .with(Thresholds::paper_slow())
            .build();
        assert_eq!(cfg.costs, CostModel::slow());
        assert_eq!(cfg.thresholds.migrep_threshold, 1200);
    }

    #[test]
    fn relocation_delay_composes_onto_current_thresholds() {
        let cfg = System::r_numa()
            .with(MigRep::both())
            .with(Thresholds::paper_slow())
            .relocation_delay(16_000)
            .build();
        assert_eq!(cfg.thresholds.migrep_threshold, 1200);
        assert_eq!(cfg.thresholds.rnuma_relocation_delay, 16_000);
    }

    #[test]
    fn custom_base_is_bare() {
        let cfg = System::custom().build();
        assert!(cfg.block_cache.is_none());
        assert!(cfg.page_cache.is_none());
        assert_eq!(cfg.name, "CC-NUMA");

        let sized = System::custom()
            .with(BlockCaching::bytes(128 * 1024))
            .with(PageCaching::bytes(64 * 1024))
            .named("exotic")
            .build();
        assert!(sized.block_cache.is_some());
        assert!(sized.page_cache.is_some());
        assert_eq!(sized.name, "exotic");
    }

    #[test]
    fn feature_removal_works() {
        let cfg = System::r_numa().with(PageCaching::none()).build();
        assert!(cfg.page_cache.is_none());
        let cfg = System::cc_numa().with(BlockCaching::none()).build();
        assert!(cfg.block_cache.is_none());
    }
}
