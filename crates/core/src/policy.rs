//! The pluggable page-relocation policy interface.
//!
//! The paper's four systems are one machine with different page-relocation
//! policies bolted on: plain CC-NUMA runs no policy, CC-NUMA+MigRep runs the
//! home-node migration/replication engine, R-NUMA runs the per-node reactive
//! relocation engine, and the Section 6.4 hybrid runs both at once.  The
//! [`RelocationPolicy`] trait captures the full surface through which those
//! engines observe and steer the simulated memory system, so the simulator
//! core is policy-agnostic: it drives a `Vec<Box<dyn RelocationPolicy>>` and
//! never branches on which concrete engines are installed.
//!
//! # Writing a third-party policy
//!
//! A policy is an ordinary struct implementing [`RelocationPolicy`].  Every
//! hook has a no-op default, so a policy only implements the events it cares
//! about.  The contract:
//!
//! 1. **Observation hooks** ([`RelocationPolicy::on_miss`],
//!    [`RelocationPolicy::on_remote_miss`], [`RelocationPolicy::on_refetch`])
//!    fire as the simulator services accesses.  They must only update the
//!    policy's internal counters and (optionally) enqueue [`PageOp`]s.
//! 2. **[`RelocationPolicy::drain_ops`]** returns the operations the policy
//!    wants performed.  The simulator drains after every home-counted miss
//!    ([`RelocationPolicy::on_remote_miss`] /
//!    [`RelocationPolicy::on_refetch`] call sites); operations enqueued
//!    from [`RelocationPolicy::on_miss`] are collected at the next such
//!    drain point, which for a remote miss is later in servicing the same
//!    access.  Drained operations are performed at once, their latency is
//!    charged to the faulting processor, and each completed operation is
//!    reported back through [`RelocationPolicy::note_op_performed`] (to
//!    *every* installed policy, so policies can observe each other's
//!    operations).  An operation that cannot apply — relocating on a system
//!    with no page cache, migrating a page already homed on the target —
//!    is skipped without latency and without a completion notification.
//! 3. **Query hooks** ([`RelocationPolicy::classify_page`],
//!    [`RelocationPolicy::page_is_replicated`],
//!    [`RelocationPolicy::on_write_to_read_only`]) let the simulator ask
//!    about policy-owned page state (replica sets) when it maps pages or
//!    services protection faults.
//!
//! Policies must be deterministic: the simulator is single-threaded per run
//! and results are compared bit-for-bit across runs.
//!
//! ```
//! use dsm_core::policy::{PageOp, PolicyStats, RelocationPolicy};
//! use dsm_core::{ClusterSimulator, MachineConfig, System};
//! use mem_trace::{NodeId, PageRef};
//!
//! /// A toy policy: migrate every page to node 0 on its 64th home miss.
//! /// Pages arrive as `PageRef`s, so the dense `page.idx` can key a flat
//! /// per-page table — no hash map on the hot path.
//! #[derive(Debug, Default)]
//! struct DrainToNodeZero {
//!     misses: Vec<u64>,
//!     pending: Vec<PageOp>,
//!     migrations: u64,
//! }
//!
//! impl RelocationPolicy for DrainToNodeZero {
//!     fn name(&self) -> &'static str {
//!         "drain-to-node-0"
//!     }
//!
//!     fn on_remote_miss(&mut self, page: PageRef, home: NodeId, _req: NodeId, _w: bool) {
//!         if page.idx.index() >= self.misses.len() {
//!             self.misses.resize(page.idx.index() + 1, 0);
//!         }
//!         let count = &mut self.misses[page.idx.index()];
//!         *count += 1;
//!         if *count == 64 && home != NodeId(0) {
//!             self.pending.push(PageOp::Migrate { page, to: NodeId(0) });
//!         }
//!     }
//!
//!     fn drain_ops(&mut self) -> Vec<PageOp> {
//!         std::mem::take(&mut self.pending)
//!     }
//!
//!     fn note_op_performed(&mut self, op: &PageOp) {
//!         if let PageOp::Migrate { .. } = op {
//!             self.migrations += 1;
//!         }
//!     }
//!
//!     fn stats(&self) -> PolicyStats {
//!         PolicyStats {
//!             migrations: self.migrations,
//!             ..PolicyStats::default()
//!         }
//!     }
//! }
//!
//! // Policies are registered as factories so each simulation run gets a
//! // fresh instance.
//! let system = System::cc_numa()
//!     .policy(|| Box::new(DrainToNodeZero::default()))
//!     .named("CC-NUMA+drain")
//!     .build();
//! let _sim = ClusterSimulator::new(MachineConfig::PAPER, system);
//! ```

use crate::config::SystemConfig;
use crate::migrep::MigRepEngine;
use crate::rnuma::RNumaEngine;
use mem_trace::{NodeId, PageRef};
use smp_node::classify::MissClass;
use smp_node::page_table::PageMapping;

/// A page operation requested by a relocation policy.
///
/// The simulator carries these out (moving data, rewriting page tables,
/// charging Table 3 latencies) and then reports completion back to every
/// installed policy via [`RelocationPolicy::note_op_performed`].
///
/// Pages are named by [`PageRef`] — the dense index keys the policy's and
/// simulator's state, the sparse id reconstructs the global addresses the
/// operation moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOp {
    /// Replicate `page` read-only onto `to`.
    Replicate {
        /// Page to replicate.
        page: PageRef,
        /// Node receiving the replica.
        to: NodeId,
    },
    /// Migrate `page` from its current home to `to`.
    Migrate {
        /// Page to migrate.
        page: PageRef,
        /// The new home node.
        to: NodeId,
    },
    /// Relocate `page` into `to`'s S-COMA page cache (R-NUMA).  Ignored on
    /// systems whose nodes have no page cache.
    Relocate {
        /// Page to relocate.
        page: PageRef,
        /// Node whose page cache receives the page.
        to: NodeId,
    },
}

/// Counters a policy exposes for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Pages migrated at this policy's request.
    pub migrations: u64,
    /// Read-only replicas installed at this policy's request.
    pub replications: u64,
    /// Pages relocated into a page cache at this policy's request.
    pub relocations: u64,
    /// Replicated pages switched back to a single read-write copy.
    pub switches_to_rw: u64,
}

impl PolicyStats {
    /// Total page operations of any kind.
    pub fn page_operations(&self) -> u64 {
        self.migrations + self.replications + self.relocations
    }
}

/// The interface between the cluster simulator and a page-relocation policy.
///
/// See the [module documentation](self) for the hook contract and an example
/// third-party policy.
pub trait RelocationPolicy: std::fmt::Debug + Send {
    /// Short display name ("MigRep", "R-NUMA", ...).
    fn name(&self) -> &'static str;

    /// A node takes a soft page fault on its first reference to `page`
    /// (currently homed on `home`): does this policy want a non-default
    /// mapping installed?  The first policy returning `Some` wins; `None`
    /// from every policy yields the plain CC-NUMA mapping (local-home or
    /// remote).
    fn classify_page(&self, page: PageRef, node: NodeId, home: NodeId) -> Option<PageMapping> {
        let _ = (page, node, home);
        None
    }

    /// Any processor-cache data miss to `page`, before it is serviced.
    fn on_miss(&mut self, page: PageRef) {
        let _ = page;
    }

    /// A miss to `page` was counted by the home node's hardware: `requester`
    /// missed on a page homed on `home`.  `requester == home` for misses by
    /// the home node itself (observed on its own memory bus).
    fn on_remote_miss(&mut self, page: PageRef, home: NodeId, requester: NodeId, is_write: bool) {
        let _ = (page, home, requester, is_write);
    }

    /// `node` fetched a block of remote page `page` again after having
    /// evicted it (`class` is the miss classification of the refetch).
    fn on_refetch(&mut self, node: NodeId, page: PageRef, class: MissClass) {
        let _ = (node, page, class);
    }

    /// Page operations the policy wants performed now, in order.  The
    /// simulator performs them immediately after the observation hook that
    /// produced them; operations must not be left pending across events.
    fn drain_ops(&mut self) -> Vec<PageOp> {
        Vec::new()
    }

    /// A write hit a read-only page: the policy must drop whatever replica
    /// bookkeeping it holds for `page` and return the nodes whose replicas
    /// have to be invalidated and remapped.
    fn on_write_to_read_only(&mut self, page: PageRef) -> Vec<NodeId> {
        let _ = page;
        Vec::new()
    }

    /// `true` if this policy currently holds read-only replicas of `page`
    /// (replicated pages are never migration candidates).
    fn page_is_replicated(&self, page: PageRef) -> bool {
        let _ = page;
        false
    }

    /// A page operation (requested by *any* policy) completed.
    fn note_op_performed(&mut self, op: &PageOp) {
        let _ = op;
    }

    /// The policy's own operation counters — an introspection surface for
    /// policy authors (unit tests, debugging).  Reported results come from
    /// the per-node [`NodeStats`](crate::NodeStats) the simulator maintains,
    /// not from this hook.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

/// A cloneable constructor for a boxed policy.
///
/// [`SystemConfig`] values are cloned freely (one clone per simulation run,
/// possibly across worker threads), while a running policy is stateful and
/// unique to its run — so configurations carry policy *factories* and each
/// [`ClusterSimulator::run`](crate::ClusterSimulator::run) instantiates a
/// fresh stack.
#[derive(Clone)]
pub struct PolicyFactory(std::sync::Arc<dyn Fn() -> Box<dyn RelocationPolicy> + Send + Sync>);

impl PolicyFactory {
    /// Wrap a constructor closure.
    pub fn new(f: impl Fn() -> Box<dyn RelocationPolicy> + Send + Sync + 'static) -> Self {
        PolicyFactory(std::sync::Arc::new(f))
    }

    /// Construct a fresh policy instance.
    pub fn instantiate(&self) -> Box<dyn RelocationPolicy> {
        (self.0)()
    }
}

impl std::fmt::Debug for PolicyFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PolicyFactory({})", self.instantiate().name())
    }
}

impl PartialEq for PolicyFactory {
    fn eq(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Build the policy stack a [`SystemConfig`] prescribes: the home-node
/// migration/replication engine if `migrep` is configured, then the per-node
/// reactive relocation engine if the system has a page cache, then any
/// extra policies installed through
/// [`SystemBuilder::policy`](crate::builder::SystemBuilder::policy).
///
/// The order matters and mirrors the paper: on each event the home node's
/// MigRep hardware decides first, then the requester's R-NUMA counters.
pub fn policies_for(system: &SystemConfig) -> Vec<Box<dyn RelocationPolicy>> {
    let mut policies: Vec<Box<dyn RelocationPolicy>> = Vec::new();
    if let Some(cfg) = system.migrep {
        policies.push(Box::new(MigRepEngine::new(cfg, system.thresholds)));
    }
    if system.page_cache.is_some() {
        policies.push(Box::new(RNumaEngine::new(system.thresholds)));
    }
    for extra in &system.extra_policies {
        policies.push(extra.instantiate());
    }
    policies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MigRep, System};

    #[test]
    fn policy_stack_matches_system_config() {
        let none = policies_for(&System::cc_numa().build());
        assert!(none.is_empty());

        let migrep = policies_for(&System::cc_numa().with(MigRep::both()).build());
        assert_eq!(migrep.len(), 1);
        assert_eq!(migrep[0].name(), "MigRep");

        let rnuma = policies_for(&System::r_numa().build());
        assert_eq!(rnuma.len(), 1);
        assert_eq!(rnuma[0].name(), "R-NUMA");

        let hybrid = policies_for(&System::r_numa().with(MigRep::both()).build());
        assert_eq!(hybrid.len(), 2);
        assert_eq!(hybrid[0].name(), "MigRep");
        assert_eq!(hybrid[1].name(), "R-NUMA");
    }

    #[test]
    fn default_hooks_are_inert() {
        #[derive(Debug)]
        struct Inert;
        impl RelocationPolicy for Inert {
            fn name(&self) -> &'static str {
                "inert"
            }
        }
        let page = PageRef::new(mem_trace::PageId(1), mem_trace::PageIdx(1));
        let mut p = Inert;
        assert!(p.classify_page(page, NodeId(0), NodeId(1)).is_none());
        p.on_miss(page);
        p.on_remote_miss(page, NodeId(0), NodeId(1), false);
        p.on_refetch(NodeId(1), page, MissClass::CapacityConflict);
        assert!(p.drain_ops().is_empty());
        assert!(p.on_write_to_read_only(page).is_empty());
        assert!(!p.page_is_replicated(page));
        p.note_op_performed(&PageOp::Migrate {
            page,
            to: NodeId(0),
        });
        assert_eq!(p.stats(), PolicyStats::default());
        assert_eq!(p.stats().page_operations(), 0);
    }
}
