//! Feature-gated profiling counters (`--features profile-counters`) for
//! the >64-node cost-cliff investigation.
//!
//! Two candidate explanations were on the table for a 96-node point
//! costing ~10x a 64-node one: `SharerSet`s promoting off their inline
//! word (counted by `mem_trace::sharers::profile`, re-exported here), and
//! the simulator's O(nodes) gather loops — per-node work done on every
//! page operation regardless of how many nodes are involved.  This module
//! counts the latter so one instrumented run attributes the cliff.
//! Compiled out entirely when the feature is off.

use std::sync::atomic::{AtomicU64, Ordering};

pub use mem_trace::sharers::profile as sharers;

/// Node-slots visited by `migrate_page`'s update-every-node's-view loop
/// (O(nodes) per migration, touched or not).
pub static GATHER_VISITS: AtomicU64 = AtomicU64::new(0);
/// Migrations that ran that loop.
pub static GATHERS: AtomicU64 = AtomicU64::new(0);

/// `(gather-loop migrations, node visits)` since the last [`reset`].
pub fn snapshot() -> (u64, u64) {
    (
        GATHERS.load(Ordering::Relaxed),
        GATHER_VISITS.load(Ordering::Relaxed),
    )
}

/// Zero this module's counters and the forwarded `SharerSet` ones.
pub fn reset() {
    GATHERS.store(0, Ordering::Relaxed);
    GATHER_VISITS.store(0, Ordering::Relaxed);
    sharers::reset();
}
