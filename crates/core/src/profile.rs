//! Feature-gated profiling counters (`--features profile-counters`) for
//! the >64-node cost-cliff investigation.
//!
//! Two candidate explanations were on the table for a 96-node point
//! costing ~10x a 64-node one: `SharerSet`s promoting off their inline
//! word (counted by `mem_trace::sharers::profile`, re-exported here), and
//! the simulator's O(nodes) gather loops — per-node work done on every
//! page operation regardless of how many nodes are involved.  This module
//! counts the latter so one instrumented run attributes the cliff.
//! Compiled out entirely when the feature is off.

use std::sync::atomic::{AtomicU64, Ordering};

pub use mem_trace::sharers::profile as sharers;

/// Node-slots visited by `migrate_page`'s update-every-node's-view loop
/// (O(nodes) per migration, touched or not).
pub static GATHER_VISITS: AtomicU64 = AtomicU64::new(0);
/// Migrations that ran that loop.
pub static GATHERS: AtomicU64 = AtomicU64::new(0);

/// Buckets in the burst-occupancy histogram (power-of-two widths).
pub const BATCH_BUCKETS: usize = 8;

/// Bursts pulled by the batched run loop (`RunState::execute` pulls
/// consecutive same-processor events in one `next_burst` call).
pub static BATCHES: AtomicU64 = AtomicU64::new(0);
/// Events delivered through those bursts.
pub static BATCH_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Burst-occupancy histogram: bucket `i` counts bursts whose length fell
/// in `[2^i, 2^(i+1))`; the last bucket is open-ended.  A distribution
/// piled into bucket 0 means the schedule forces single-event bursts and
/// the batching is not paying; mass in the high buckets means the
/// devirtualized burst pull is amortized well.
pub static BATCH_OCCUPANCY: [AtomicU64; BATCH_BUCKETS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Record one burst of `len` events pulled by the run loop.
#[inline]
pub fn record_batch(len: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    BATCH_EVENTS.fetch_add(len as u64, Ordering::Relaxed);
    let bucket = (usize::BITS - 1 - len.max(1).leading_zeros()).min(BATCH_BUCKETS as u32 - 1);
    BATCH_OCCUPANCY[bucket as usize].fetch_add(1, Ordering::Relaxed);
}

/// `(gather-loop migrations, node visits)` since the last [`reset`].
pub fn snapshot() -> (u64, u64) {
    (
        GATHERS.load(Ordering::Relaxed),
        GATHER_VISITS.load(Ordering::Relaxed),
    )
}

/// `(bursts, events, occupancy histogram)` since the last [`reset`].
pub fn batch_snapshot() -> (u64, u64, [u64; BATCH_BUCKETS]) {
    let mut hist = [0u64; BATCH_BUCKETS];
    for (slot, counter) in hist.iter_mut().zip(BATCH_OCCUPANCY.iter()) {
        *slot = counter.load(Ordering::Relaxed);
    }
    (
        BATCHES.load(Ordering::Relaxed),
        BATCH_EVENTS.load(Ordering::Relaxed),
        hist,
    )
}

/// Zero this module's counters and the forwarded `SharerSet` ones.
pub fn reset() {
    GATHERS.store(0, Ordering::Relaxed);
    GATHER_VISITS.store(0, Ordering::Relaxed);
    BATCHES.store(0, Ordering::Relaxed);
    BATCH_EVENTS.store(0, Ordering::Relaxed);
    for counter in &BATCH_OCCUPANCY {
        counter.store(0, Ordering::Relaxed);
    }
    sharers::reset();
}
