//! The cost model of Table 3 (block and page operation latencies).
//!
//! All values are in 600 MHz processor cycles.  The *base* model corresponds
//! to an aggressive system with hardware support for page operations (lazy
//! TLB shootdown through directory poisoning, page-copy hardware), as in the
//! SGI Origin 2000.  The *slow* model (Section 6.2) increases the page
//! operation overheads roughly ten-fold to represent stock kernel-based
//! implementations: 50 µs soft traps, 5 µs TLB shootdowns and an extra 10 µs
//! of page copying.

use mem_trace::BLOCKS_PER_PAGE;
use serde::{Deserialize, Serialize};
use sim_engine::Cycles;

/// Latencies of the simulated memory system (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// One-way network latency.
    pub network_latency: Cycles,
    /// Latency of a miss satisfied by local memory (or the block/page cache).
    pub local_miss: Cycles,
    /// Round-trip latency of a remote miss satisfied by the home node.
    pub remote_miss: Cycles,
    /// Latency of a processor-cache hit.
    pub cache_hit: Cycles,
    /// Cost of a soft trap (page fault, R-NUMA relocation interrupt).
    pub soft_trap: Cycles,
    /// Cost of shooting down a TLB on one node.
    pub tlb_shootdown: Cycles,
    /// Minimum cost of a page allocation/replacement or R-NUMA relocation
    /// (no blocks to flush).
    pub page_alloc_min: Cycles,
    /// Maximum cost of a page allocation/replacement or R-NUMA relocation
    /// (a full page of blocks to flush).
    pub page_alloc_max: Cycles,
    /// Minimum cost of page invalidation and data gathering (migration /
    /// replication / switch to read-write).
    pub page_gather_min: Cycles,
    /// Maximum cost of page invalidation and data gathering.
    pub page_gather_max: Cycles,
    /// Minimum cost of copying a page to a new home or replica.
    pub page_copy_min: Cycles,
    /// Maximum cost of copying a page to a new home or replica.
    pub page_copy_max: Cycles,
}

impl CostModel {
    /// The paper's base system (Table 3): aggressive hardware support.
    pub const fn base() -> Self {
        CostModel {
            network_latency: Cycles(80),
            local_miss: Cycles(104),
            remote_miss: Cycles(418),
            cache_hit: Cycles(1),
            soft_trap: Cycles(3000),
            tlb_shootdown: Cycles(300),
            page_alloc_min: Cycles(3000),
            page_alloc_max: Cycles(11500),
            page_gather_min: Cycles(3000),
            page_gather_max: Cycles(11500),
            page_copy_min: Cycles(8000),
            page_copy_max: Cycles(21800),
        }
    }

    /// The paper's slow page-operation system (Section 6.2): 50 µs soft
    /// traps, 5 µs TLB shootdowns, and 10 µs (6000 cycles) of extra page
    /// copying overhead per page.
    pub const fn slow() -> Self {
        CostModel {
            soft_trap: Cycles(30_000),
            tlb_shootdown: Cycles(3_000),
            page_copy_min: Cycles(8_000 + 6_000),
            page_copy_max: Cycles(21_800 + 6_000),
            ..Self::base()
        }
    }

    /// A variant of this model with the remote path stretched by `factor`
    /// (Section 6.3 uses `factor = 4`, giving a remote:local ratio of 16).
    pub fn with_remote_latency_factor(mut self, factor: u64) -> Self {
        self.network_latency = self.network_latency * factor;
        self.remote_miss = self.remote_miss * factor;
        self
    }

    /// Remote-to-local access-latency ratio.
    pub fn remote_to_local_ratio(&self) -> f64 {
        self.remote_miss.raw() as f64 / self.local_miss.raw() as f64
    }

    /// Interpolate a per-page operation cost between `min` and `max`
    /// according to how many of the page's blocks are involved.
    fn scaled(min: Cycles, max: Cycles, blocks: u32, blocks_per_page: u64) -> Cycles {
        let blocks = u64::from(blocks).min(blocks_per_page);
        let span = max.raw().saturating_sub(min.raw());
        Cycles::new(min.raw() + span * blocks / blocks_per_page)
    }

    /// Cost of a page allocation, replacement, or R-NUMA relocation that
    /// flushes `blocks_flushed` blocks, at the paper's 64-blocks-per-page
    /// geometry.
    pub fn page_alloc_cost(&self, blocks_flushed: u32) -> Cycles {
        self.page_alloc_cost_at(blocks_flushed, BLOCKS_PER_PAGE)
    }

    /// [`CostModel::page_alloc_cost`] for a page of `blocks_per_page`
    /// blocks (the interpolation endpoint moves with the swept geometry).
    pub fn page_alloc_cost_at(&self, blocks_flushed: u32, blocks_per_page: u64) -> Cycles {
        Self::scaled(
            self.page_alloc_min,
            self.page_alloc_max,
            blocks_flushed,
            blocks_per_page,
        )
    }

    /// Cost of page invalidation and data gathering when `blocks_cached`
    /// blocks are cached somewhere in the cluster (paper geometry).
    pub fn page_gather_cost(&self, blocks_cached: u32) -> Cycles {
        self.page_gather_cost_at(blocks_cached, BLOCKS_PER_PAGE)
    }

    /// [`CostModel::page_gather_cost`] for a page of `blocks_per_page`
    /// blocks.
    pub fn page_gather_cost_at(&self, blocks_cached: u32, blocks_per_page: u64) -> Cycles {
        Self::scaled(
            self.page_gather_min,
            self.page_gather_max,
            blocks_cached,
            blocks_per_page,
        )
    }

    /// Cost of copying a page of which `blocks_valid` blocks hold data
    /// (paper geometry).
    pub fn page_copy_cost(&self, blocks_valid: u32) -> Cycles {
        self.page_copy_cost_at(blocks_valid, BLOCKS_PER_PAGE)
    }

    /// [`CostModel::page_copy_cost`] for a page of `blocks_per_page` blocks.
    pub fn page_copy_cost_at(&self, blocks_valid: u32, blocks_per_page: u64) -> Cycles {
        Self::scaled(
            self.page_copy_min,
            self.page_copy_max,
            blocks_valid,
            blocks_per_page,
        )
    }

    /// Latency of a remote miss that must be forwarded to a dirty third-node
    /// owner (an extra network traversal over the plain remote miss).
    pub fn dirty_remote_miss(&self) -> Cycles {
        self.remote_miss + self.network_latency + Cycles::new(24)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::base()
    }
}

/// Policy thresholds used by the page-operation engines.
///
/// The paper tunes one set of thresholds for the fast systems and a more
/// conservative set for the slow systems of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Misses by one node to one page before migration/replication triggers.
    pub migrep_threshold: u64,
    /// Misses handled at a home node between counter resets.
    pub migrep_reset_interval: u64,
    /// Capacity/conflict refetches before R-NUMA relocates a page.
    pub rnuma_threshold: u64,
    /// Misses to a page before R-NUMA is *allowed* to relocate it (only used
    /// by the R-NUMA+MigRep hybrid of Section 6.4; 0 = no delay).
    pub rnuma_relocation_delay: u64,
}

impl Thresholds {
    /// The paper's fast-system thresholds: 800-miss migration/replication
    /// threshold, 32000-miss reset interval, 32-refetch R-NUMA threshold.
    pub const fn paper_fast() -> Self {
        Thresholds {
            migrep_threshold: 800,
            migrep_reset_interval: 32_000,
            rnuma_threshold: 32,
            rnuma_relocation_delay: 0,
        }
    }

    /// The paper's slow-system thresholds (Section 6.2): 1200 and 64.
    pub const fn paper_slow() -> Self {
        Thresholds {
            migrep_threshold: 1200,
            migrep_reset_interval: 32_000,
            rnuma_threshold: 64,
            rnuma_relocation_delay: 0,
        }
    }

    /// Thresholds scaled down by `factor` for reduced-size workloads, so the
    /// miss-count-to-threshold ratios stay comparable to the paper's runs.
    pub fn scaled_down(self, factor: u64) -> Self {
        let f = factor.max(1);
        Thresholds {
            migrep_threshold: (self.migrep_threshold / f).max(1),
            migrep_reset_interval: (self.migrep_reset_interval / f).max(4),
            rnuma_threshold: (self.rnuma_threshold / f).max(1),
            rnuma_relocation_delay: self.rnuma_relocation_delay / f,
        }
    }

    /// Set the hybrid's relocation delay (Section 6.4 uses 32000 misses).
    pub fn with_relocation_delay(mut self, delay: u64) -> Self {
        self.rnuma_relocation_delay = delay;
        self
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper_fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_model_matches_table_3() {
        let c = CostModel::base();
        assert_eq!(c.network_latency, Cycles::new(80));
        assert_eq!(c.local_miss, Cycles::new(104));
        assert_eq!(c.remote_miss, Cycles::new(418));
        assert_eq!(c.soft_trap, Cycles::new(3000));
        assert_eq!(c.tlb_shootdown, Cycles::new(300));
        assert_eq!(c.page_alloc_min, Cycles::new(3000));
        assert_eq!(c.page_alloc_max, Cycles::new(11500));
        assert_eq!(c.page_gather_min, Cycles::new(3000));
        assert_eq!(c.page_gather_max, Cycles::new(11500));
        assert_eq!(c.page_copy_min, Cycles::new(8000));
        assert_eq!(c.page_copy_max, Cycles::new(21800));
    }

    #[test]
    fn slow_model_matches_section_6_2() {
        let c = CostModel::slow();
        // 50 us soft trap and 5 us TLB shootdown at 600 MHz.
        assert_eq!(c.soft_trap, Cycles::from_micros(50.0));
        assert_eq!(c.tlb_shootdown, Cycles::from_micros(5.0));
        // 10 us (6000 cycles) of additional page copy cost.
        assert_eq!(
            c.page_copy_min,
            CostModel::base().page_copy_min + Cycles::new(6000)
        );
        assert_eq!(
            c.page_copy_max,
            CostModel::base().page_copy_max + Cycles::new(6000)
        );
        // Block-level latencies unchanged.
        assert_eq!(c.remote_miss, CostModel::base().remote_miss);
    }

    #[test]
    fn remote_latency_factor_scales_ratio() {
        let base = CostModel::base();
        assert!((base.remote_to_local_ratio() - 4.02).abs() < 0.01);
        let far = base.with_remote_latency_factor(4);
        assert_eq!(far.remote_miss, Cycles::new(418 * 4));
        assert_eq!(far.network_latency, Cycles::new(320));
        assert!((far.remote_to_local_ratio() - 16.08).abs() < 0.01);
        // Local path unchanged.
        assert_eq!(far.local_miss, base.local_miss);
    }

    #[test]
    fn page_operation_costs_interpolate_with_block_count() {
        let c = CostModel::base();
        assert_eq!(c.page_alloc_cost(0), Cycles::new(3000));
        assert_eq!(c.page_alloc_cost(64), Cycles::new(11500));
        let mid = c.page_alloc_cost(32);
        assert!(mid > Cycles::new(3000) && mid < Cycles::new(11500));
        assert_eq!(c.page_copy_cost(0), Cycles::new(8000));
        assert_eq!(c.page_copy_cost(64), Cycles::new(21800));
        assert_eq!(c.page_gather_cost(64), Cycles::new(11500));
        // Counts beyond a full page clamp.
        assert_eq!(c.page_alloc_cost(200), Cycles::new(11500));
    }

    #[test]
    fn dirty_remote_miss_exceeds_clean_remote_miss() {
        let c = CostModel::base();
        assert!(c.dirty_remote_miss() > c.remote_miss);
    }

    #[test]
    fn paper_thresholds() {
        let fast = Thresholds::paper_fast();
        assert_eq!(fast.migrep_threshold, 800);
        assert_eq!(fast.migrep_reset_interval, 32_000);
        assert_eq!(fast.rnuma_threshold, 32);
        let slow = Thresholds::paper_slow();
        assert_eq!(slow.migrep_threshold, 1200);
        assert_eq!(slow.rnuma_threshold, 64);
    }

    #[test]
    fn scaled_thresholds_never_reach_zero() {
        let t = Thresholds::paper_fast().scaled_down(10_000);
        assert!(t.migrep_threshold >= 1);
        assert!(t.rnuma_threshold >= 1);
        assert!(t.migrep_reset_interval >= 4);
    }

    #[test]
    fn relocation_delay_builder() {
        let t = Thresholds::paper_fast().with_relocation_delay(32_000);
        assert_eq!(t.rnuma_relocation_delay, 32_000);
    }
}
