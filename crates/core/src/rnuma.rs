//! The R-NUMA reactive relocation engine (Section 3.2).
//!
//! Every node keeps, for every remote CC-NUMA page it uses, a *refetch
//! counter*: the number of times a block of the page was fetched again after
//! having been replaced from the node's cache hierarchy for capacity or
//! conflict reasons.  When the counter crosses a threshold (32 refetches in
//! the paper's base system), the node takes a relocation interrupt and remaps
//! the page into its local S-COMA page cache.  The decision is purely local:
//! no other node is involved.
//!
//! The R-NUMA+MigRep hybrid of Section 6.4 additionally *delays* relocation
//! until a page has seen a minimum number of misses, to give the home node's
//! migration/replication counters a chance to observe un-perturbed traffic.

use crate::cost::Thresholds;
use crate::policy::{PageOp, PolicyStats, RelocationPolicy};
use mem_trace::{NodeId, PageIdx, PageRef, Slab};
use smp_node::classify::MissClass;

/// The per-node reactive relocation policy.
#[derive(Debug, Clone)]
pub struct RNumaEngine {
    threshold: u64,
    relocation_delay: u64,
    /// Refetch counters, indexed `[node][interned page]`; both dimensions
    /// grow on demand.
    refetch: Vec<Slab<u64>>,
    /// Total misses observed per page (all nodes), for the hybrid's delay.
    page_misses: Slab<u64>,
    /// Relocations decided but not yet drained by the simulator.
    pending: Vec<PageOp>,
    relocations: u64,
}

impl RNumaEngine {
    /// Create an engine with the given thresholds.
    pub fn new(thresholds: Thresholds) -> Self {
        RNumaEngine {
            threshold: thresholds.rnuma_threshold,
            relocation_delay: thresholds.rnuma_relocation_delay,
            refetch: Vec::new(),
            page_misses: Slab::new(),
            pending: Vec::new(),
            relocations: 0,
        }
    }

    /// Record any miss to `page` (used only to drive the hybrid's
    /// relocation-delay window).
    pub fn record_page_miss(&mut self, page: PageIdx) {
        if self.relocation_delay > 0 {
            *self.page_misses.entry(page.index()) += 1;
        }
    }

    /// Record a capacity/conflict *refetch* of a block of `page` by `node`
    /// while the page is mapped CC-NUMA.  Returns `true` if the node should
    /// relocate the page into its page cache now.
    pub fn record_refetch(&mut self, node: NodeId, page: PageIdx) -> bool {
        if node.index() >= self.refetch.len() {
            self.refetch.resize_with(node.index() + 1, Slab::new);
        }
        let counter = self.refetch[node.index()].entry(page.index());
        *counter += 1;
        if *counter < self.threshold {
            return false;
        }
        if self.relocation_delay > 0 {
            let seen = self.page_misses.get(page.index()).copied().unwrap_or(0);
            if seen < self.relocation_delay {
                return false;
            }
        }
        true
    }

    /// Record that `node` relocated `page`; its refetch counter restarts.
    pub fn note_relocated(&mut self, node: NodeId, page: PageIdx) {
        if let Some(counter) = self
            .refetch
            .get_mut(node.index())
            .and_then(|s| s.get_mut(page.index()))
        {
            *counter = 0;
        }
        self.relocations += 1;
    }

    /// Current refetch count of `(node, page)`.
    pub fn refetch_count(&self, node: NodeId, page: PageIdx) -> u64 {
        self.refetch
            .get(node.index())
            .and_then(|s| s.get(page.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Total relocations performed.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// The relocation threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl RelocationPolicy for RNumaEngine {
    fn name(&self) -> &'static str {
        "R-NUMA"
    }

    /// Every data miss feeds the hybrid's relocation-delay window.
    fn on_miss(&mut self, page: PageRef) {
        self.record_page_miss(page.idx);
    }

    /// Capacity/conflict refetches drive the relocation decision; other
    /// miss classes are ignored (cold and coherence misses would recur in
    /// the page cache just the same).
    fn on_refetch(&mut self, node: NodeId, page: PageRef, class: MissClass) {
        if class == MissClass::CapacityConflict && self.record_refetch(node, page.idx) {
            self.pending.push(PageOp::Relocate { page, to: node });
        }
    }

    fn drain_ops(&mut self) -> Vec<PageOp> {
        std::mem::take(&mut self.pending)
    }

    fn note_op_performed(&mut self, op: &PageOp) {
        if let PageOp::Relocate { page, to } = *op {
            self.note_relocated(to, page.idx);
        }
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            relocations: self.relocations,
            ..PolicyStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thresholds(t: u64, delay: u64) -> Thresholds {
        Thresholds {
            migrep_threshold: 800,
            migrep_reset_interval: 32_000,
            rnuma_threshold: t,
            rnuma_relocation_delay: delay,
        }
    }

    const NODE: NodeId = NodeId(2);
    const PAGE: PageIdx = PageIdx(11);

    #[test]
    fn relocation_fires_at_threshold() {
        let mut e = RNumaEngine::new(thresholds(4, 0));
        assert!(!e.record_refetch(NODE, PAGE));
        assert!(!e.record_refetch(NODE, PAGE));
        assert!(!e.record_refetch(NODE, PAGE));
        assert!(e.record_refetch(NODE, PAGE));
        e.note_relocated(NODE, PAGE);
        assert_eq!(e.relocations(), 1);
        assert_eq!(e.refetch_count(NODE, PAGE), 0);
    }

    #[test]
    fn counters_are_per_node_and_per_page() {
        let mut e = RNumaEngine::new(thresholds(3, 0));
        e.record_refetch(NODE, PAGE);
        e.record_refetch(NODE, PageIdx(99));
        e.record_refetch(NodeId(5), PAGE);
        assert_eq!(e.refetch_count(NODE, PAGE), 1);
        assert_eq!(e.refetch_count(NODE, PageIdx(99)), 1);
        assert_eq!(e.refetch_count(NodeId(5), PAGE), 1);
    }

    #[test]
    fn threshold_of_one_relocates_immediately() {
        let mut e = RNumaEngine::new(thresholds(1, 0));
        assert!(e.record_refetch(NODE, PAGE));
    }

    #[test]
    fn relocation_delay_postpones_relocation() {
        let mut e = RNumaEngine::new(thresholds(2, 10));
        // The refetch threshold is reached, but the page has not seen enough
        // total misses yet.
        e.record_refetch(NODE, PAGE);
        assert!(!e.record_refetch(NODE, PAGE));
        for _ in 0..10 {
            e.record_page_miss(PAGE);
        }
        assert!(e.record_refetch(NODE, PAGE));
    }

    #[test]
    fn page_miss_recording_is_skipped_without_delay() {
        let mut e = RNumaEngine::new(thresholds(2, 0));
        e.record_page_miss(PAGE);
        // No delay configured: the map stays empty (internal detail observed
        // through behaviour: relocation still triggers purely on refetches).
        e.record_refetch(NODE, PAGE);
        assert!(e.record_refetch(NODE, PAGE));
    }

    #[test]
    fn refetches_keep_signaling_until_relocation_is_noted() {
        let mut e = RNumaEngine::new(thresholds(2, 0));
        e.record_refetch(NODE, PAGE);
        assert!(e.record_refetch(NODE, PAGE));
        // The caller did not relocate (e.g. transient memory pressure); the
        // next refetch signals again.
        assert!(e.record_refetch(NODE, PAGE));
        e.note_relocated(NODE, PAGE);
        assert!(!e.record_refetch(NODE, PAGE));
    }
}
