//! The cluster simulator: drives per-processor traces through the full
//! memory system of the configured DSM system.
//!
//! The simulator is trace-driven with per-processor virtual time.  It always
//! advances the processor with the smallest local clock, so shared-memory
//! accesses from different processors interleave in global time order;
//! coherence state changes are applied at that point and the latency of each
//! access (Table 3 costs plus bus / network-interface queueing) is charged
//! to the issuing processor.  Barriers and locks couple the processors'
//! clocks exactly as the PARMACS synchronization of the original SPLASH-2
//! programs would.
//!
//! Traces are consumed through the pull-based [`TraceSource`] abstraction:
//! the simulator never indexes into a materialized event vector, it only
//! asks a source for one processor's next event.  A materialized
//! [`ProgramTrace`] is just one such source ([`ProgramTrace::source`]); the
//! same run can instead be fed by a streaming generator or a recorded trace
//! file with bounded memory ([`ClusterSimulator::run_source`]).

use std::collections::{BTreeSet, VecDeque};

use dsm_protocol::block_cache::BlockState;
use dsm_protocol::directory::{DataSource, Directory};
use dsm_protocol::page_cache::AllocOutcome;
use dsm_protocol::{Interconnect, MsgKind};
use mem_trace::{
    AccessKind, BlockRef, Geometry, GlobalAddr, MemRef, NodeId, PageInterner, PageRef, ProcId,
    ProgramTrace, Slab, TraceError, TraceEvent, TraceSource, MAX_LOCK_ID,
};
use sim_engine::{Cycles, ProcScheduler, Scheduler};
use smp_node::cache::{CacheOutcome, LineState, Victim};
use smp_node::classify::MissClass;
use smp_node::page_table::{PageMapping, PageMode, PageProtection};
use smp_node::BusTransaction;

use crate::config::{MachineConfig, SystemConfig};
use crate::node::{NodeState, ProcState, Waiting};
use crate::placement::PagePlacement;
use crate::policy::{policies_for, PageOp, RelocationPolicy};
use crate::stats::SimResult;

/// Simulates one system configuration on one machine configuration.
#[derive(Debug, Clone)]
pub struct ClusterSimulator {
    machine: MachineConfig,
    system: SystemConfig,
}

impl ClusterSimulator {
    /// Create a simulator.
    pub fn new(machine: MachineConfig, system: SystemConfig) -> Self {
        ClusterSimulator { machine, system }
    }

    /// The system configuration being simulated.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The machine configuration being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Run `trace` to completion and return the collected result.
    ///
    /// # Panics
    /// Panics if the trace is malformed or was generated for a different
    /// number of processors than this machine has.  Use
    /// [`ClusterSimulator::try_run`] for the fallible equivalent.
    pub fn run(&self, trace: &ProgramTrace) -> SimResult {
        assert_eq!(
            trace.topology.total_procs(),
            self.machine.topology.total_procs(),
            "trace generated for a different machine"
        );
        self.try_run(trace)
            // dsm-lint: allow(panic-path, documented infallible wrapper: service-path traces come from catalog generators and are well-formed by construction; untrusted traces go through try_run)
            .unwrap_or_else(|e| panic!("malformed trace {}: {e:?}", trace.name))
    }

    /// Run `trace` to completion, reporting malformed traces (wrong
    /// processor count, mismatched barriers, unbalanced locks) as an error
    /// instead of panicking.
    pub fn try_run(&self, trace: &ProgramTrace) -> Result<SimResult, TraceError> {
        trace.validate()?;
        self.try_run_source(&mut trace.source())
    }

    /// Run a streaming [`TraceSource`] to completion.
    ///
    /// # Panics
    /// Panics if the stream is malformed.  Use
    /// [`ClusterSimulator::try_run_source`] for the fallible equivalent.
    pub fn run_source(&self, source: &mut dyn TraceSource) -> SimResult {
        let name = source.name().to_string();
        self.try_run_source(source)
            // dsm-lint: allow(panic-path, documented infallible wrapper: service-path traces come from catalog generators and are well-formed by construction; untrusted traces go through try_run_source)
            .unwrap_or_else(|e| panic!("malformed trace {name}: {e:?}"))
    }

    /// Run a streaming [`TraceSource`] to completion.
    ///
    /// A stream cannot be validated up front the way a materialized trace
    /// can, so structural errors are detected as they are reached: a barrier
    /// episode whose arrivals disagree on the barrier id, a lock release by
    /// a processor that does not hold the lock, or streams that end while
    /// processors are still blocked.
    pub fn try_run_source(&self, source: &mut dyn TraceSource) -> Result<SimResult, TraceError> {
        let streams = source.topology().total_procs();
        let expected = self.machine.topology.total_procs();
        if streams != expected {
            return Err(TraceError::ProcCountMismatch { streams, expected });
        }
        let mut run = RunState::new(&self.machine, &self.system);
        let mut queue = ProcScheduler::with_capacity(expected);
        run.execute(source, &mut queue)
    }
}

#[derive(Debug, Clone, Default)]
struct LockState {
    held_by: Option<u16>,
    waiters: VecDeque<u16>,
}

/// Upper bound on one burst pull from the trace source.  Large enough to
/// amortize the per-burst virtual call over a long compute/access run,
/// small enough that the per-processor staging buffers stay a rounding
/// error next to the demux window (128 events × total procs).
const BURST_EVENTS: usize = 128;

/// Per-processor staging buffer between a [`TraceSource`] and the run
/// loop: events arrive in bursts ([`TraceSource::next_burst`], one virtual
/// call for up to [`BURST_EVENTS`] events) and are consumed one at a time
/// against the scheduler horizon.  Batching the *supply* this way leaves
/// the consumption order — and therefore every golden fingerprint —
/// untouched: an event is still only executed when its processor is the
/// schedule's `(clock, proc id)` minimum.
struct EventFeed {
    buf: Vec<TraceEvent>,
    head: usize,
}

impl EventFeed {
    fn new() -> Self {
        EventFeed {
            buf: Vec::with_capacity(BURST_EVENTS),
            head: 0,
        }
    }

    /// Events pulled from the source but not yet consumed.  A processor
    /// with pending events is by definition not exhausted, so callers
    /// check this before paying a `TraceSource::exhausted` probe.
    #[inline]
    fn has_pending(&self) -> bool {
        self.head < self.buf.len()
    }

    /// The next event of `proc`'s stream, refilling from `source` when the
    /// buffer runs dry.  `None` exactly when `source.next_event(proc)`
    /// would have returned `None`.
    #[inline]
    fn next(&mut self, source: &mut dyn TraceSource, proc: ProcId) -> Option<TraceEvent> {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
            if source.next_burst(proc, &mut self.buf, BURST_EVENTS) == 0 {
                return None;
            }
            #[cfg(feature = "profile-counters")]
            crate::profile::record_batch(self.buf.len());
        }
        let ev = self.buf[self.head];
        self.head += 1;
        Some(ev)
    }
}

pub(crate) struct RunState<'a> {
    machine: &'a MachineConfig,
    system: &'a SystemConfig,
    /// The machine's address-space geometry: every page/block decomposition
    /// and dense-index derivation below goes through this (the paper's
    /// 4-KB/64-B values reproduce the historical constants exactly).
    geometry: Geometry,
    procs: Vec<ProcState>,
    nodes: Vec<NodeState>,
    placement: PagePlacement,
    directory: Directory,
    network: Interconnect,
    /// The page-relocation policy stack prescribed by the system
    /// configuration (MigRep engine, R-NUMA engine, third-party policies).
    /// The simulator drives these through the [`RelocationPolicy`] hooks and
    /// never branches on which concrete policies are installed.
    policies: Vec<Box<dyn RelocationPolicy>>,
    /// The page-id interner: every address entering the simulator is
    /// resolved to its dense `PageIdx`/`BlockIdx` exactly once, here; all
    /// per-page and per-block state downstream is `Vec`-indexed.
    interner: PageInterner,
    /// Lock table, indexed directly by lock id (the generators number locks
    /// densely from zero; ids above [`MAX_LOCK_ID`] are rejected as
    /// malformed before touching the table).
    locks: Slab<LockState>,
    barrier_waiting: Vec<u16>,
    accesses: u64,
    barriers_done: u64,
    /// Precomputed proc index → home node index (replaces the division in
    /// `Topology::node_of` on the per-access path).
    proc_node: Vec<u32>,
    /// Single-entry intern memo: the last `(page id, page ref)` resolved.
    /// Never invalidated — the interner is append-only, so a page's dense
    /// index is stable for the life of the run.  Accesses show strong page
    /// locality (consecutive same-proc references usually stay on one
    /// page), so this skips the interner's hash probe for most of a burst.
    page_memo: Option<PageRef>,
}

impl<'a> RunState<'a> {
    pub(crate) fn new(machine: &'a MachineConfig, system: &'a SystemConfig) -> Self {
        let total_procs = machine.topology.total_procs();
        let geometry = machine.geometry;
        // A hard assert, not debug-only: MachineConfig's fields are public,
        // and an L1 line size diverging from the coherence unit would yield
        // internally inconsistent miss/traffic numbers with no other signal.
        // (One check per run; nowhere near the hot path.)
        assert_eq!(
            machine.l1.block_bytes, geometry.block_bytes,
            "L1 line size must match the machine geometry's block size \
             (use MachineConfig::with_geometry, which keeps them in sync)"
        );
        let nodes = (0..machine.topology.nodes as usize)
            .map(|i| NodeState::new(i, system, geometry))
            .collect();
        RunState {
            machine,
            system,
            geometry,
            procs: (0..total_procs)
                .map(|_| ProcState::new(machine.l1))
                .collect(),
            nodes,
            placement: PagePlacement::new(),
            directory: Directory::with_geometry(geometry),
            network: Interconnect::new(
                machine.topology.nodes as usize,
                system.costs.network_latency,
            )
            .with_block_bytes(geometry.block_bytes),
            policies: policies_for(system),
            interner: PageInterner::with_geometry(geometry),
            locks: Slab::new(),
            barrier_waiting: Vec::new(),
            accesses: 0,
            barriers_done: 0,
            proc_node: (0..total_procs)
                .map(|p| machine.topology.node_of(ProcId(p as u16)).index() as u32)
                .collect(),
            page_memo: None,
        }
    }

    /// Resolve an address's page through the single-entry memo, falling
    /// back to the interner's hash probe on a memo miss.
    #[inline]
    fn page_ref_of(&mut self, addr: GlobalAddr) -> PageRef {
        let id = self.geometry.page_of(addr);
        if let Some(memo) = self.page_memo {
            if memo.id == id {
                return memo;
            }
        }
        let page = self.interner.intern_ref(id);
        self.page_memo = Some(page);
        page
    }

    fn barrier_cost(&self) -> Cycles {
        self.system.costs.remote_miss * 2
    }

    fn lock_cost(&self) -> Cycles {
        self.system.costs.remote_miss
    }

    /// Drive `source` to completion through `queue`.  Generic over the
    /// [`Scheduler`] so the same loop runs serial (one [`ProcScheduler`])
    /// and sharded (a `ShardedScheduler` routing cross-shard wakeups
    /// through pair queues) — the interleaving, and therefore the result,
    /// is bit-identical either way because both schedulers pop in the same
    /// `(clock, proc id)` order.
    pub(crate) fn execute<Q: Scheduler>(
        &mut self,
        source: &mut dyn TraceSource,
        queue: &mut Q,
    ) -> Result<SimResult, TraceError> {
        let workload = source.name().to_string();
        // Per-processor burst buffers: the supply side of the batched
        // pipeline.  A processor's pending buffered events always count
        // toward its "not exhausted" status below.
        let mut feeds: Vec<EventFeed> = (0..self.procs.len()).map(|_| EventFeed::new()).collect();
        for p in 0..self.procs.len() {
            if !source.exhausted(ProcId(p as u16)) {
                // dsm-lint: allow(cast-truncation, proc index is bounded by total_procs which fits u16 by construction)
                queue.push(Cycles::ZERO, p as u16);
            } else {
                self.procs[p].done = true;
            }
        }

        'sched: while let Some((_, p)) = queue.pop() {
            let pid = p as usize;
            // Run `p` for as long as it remains the schedule's minimum.
            // After each event the advanced clock is compared against the
            // heap's head in the scheduler's own `(clock, proc id)` order:
            // when popping would hand `p` straight back, the push/pop round
            // trip is skipped.  The interleaving is bit-identical to the
            // push-always loop — only the heap traffic is gone.
            //
            // The head itself is read once per batch, not once per event:
            // while `p` runs, nothing else pushes into the scheduler (see
            // `Scheduler::peek`'s contract), so the horizon is invariant
            // until this loop's one mid-batch push — an unlock handoff —
            // refreshes it.
            let mut horizon = queue.peek();
            loop {
                let Some(ev) = feeds[pid].next(source, ProcId(p)) else {
                    // A stream that ends early because the source gave up
                    // (window cap exceeded) is an error, not an exhausted
                    // processor.
                    if let Some(e) = source.take_error() {
                        return Err(e);
                    }
                    self.procs[pid].done = true;
                    continue 'sched;
                };
                match ev {
                    TraceEvent::Compute(c) => {
                        self.procs[pid].time += Cycles::new(u64::from(c));
                    }
                    TraceEvent::Access(m) => {
                        let now = self.procs[pid].time;
                        let latency = self.service_access(pid, m, now);
                        self.procs[pid].time += latency;
                        self.accesses += 1;
                        let nidx = self.proc_node[pid] as usize;
                        self.nodes[nidx].stats.memory_stall_cycles += latency;
                    }
                    TraceEvent::Barrier(id) => {
                        self.procs[pid].waiting = Waiting::Barrier(id);
                        self.barrier_waiting.push(p);
                        if self.barrier_waiting.len() == self.procs.len() {
                            // Every arrival must name the same barrier: a
                            // stream cannot be checked up front, so check
                            // the episode (all arrivals, not just the ones
                            // after the first).
                            if let Some(&other) = self
                                .barrier_waiting
                                .iter()
                                .find(|&&q| self.procs[q as usize].waiting != Waiting::Barrier(id))
                            {
                                return Err(TraceError::BarrierMismatch {
                                    proc_a: ProcId(p),
                                    proc_b: ProcId(other),
                                });
                            }
                            let release = self
                                .barrier_waiting
                                .iter()
                                .map(|&q| self.procs[q as usize].time)
                                .max()
                                .unwrap_or(Cycles::ZERO)
                                + self.barrier_cost();
                            let waiting = std::mem::take(&mut self.barrier_waiting);
                            for q in waiting {
                                let qi = q as usize;
                                self.procs[qi].time = release;
                                self.procs[qi].waiting = Waiting::None;
                                if feeds[qi].has_pending() || !source.exhausted(ProcId(q)) {
                                    queue.push(release, q);
                                } else {
                                    self.procs[qi].done = true;
                                }
                            }
                            self.barriers_done += 1;
                        }
                        continue 'sched;
                    }
                    TraceEvent::Lock(id) => {
                        if id > MAX_LOCK_ID {
                            return Err(TraceError::LockIdOutOfRange {
                                proc: ProcId(p),
                                lock: id,
                            });
                        }
                        let acquire_now = {
                            let lock = self.locks.entry(id as usize);
                            if lock.held_by.is_none() {
                                lock.held_by = Some(p);
                                true
                            } else {
                                lock.waiters.push_back(p);
                                false
                            }
                        };
                        if acquire_now {
                            let cost = self.lock_cost();
                            self.procs[pid].time += cost;
                        } else {
                            self.procs[pid].waiting = Waiting::Lock(id);
                            continue 'sched;
                        }
                    }
                    TraceEvent::Unlock(id) => {
                        if id > MAX_LOCK_ID {
                            return Err(TraceError::LockIdOutOfRange {
                                proc: ProcId(p),
                                lock: id,
                            });
                        }
                        let release_time = self.procs[pid].time;
                        let next = {
                            let lock = self.locks.entry(id as usize);
                            if lock.held_by != Some(p) {
                                return Err(TraceError::UnbalancedLock {
                                    proc: ProcId(p),
                                    lock: id,
                                });
                            }
                            lock.held_by = None;
                            lock.waiters.pop_front()
                        };
                        if let Some(w) = next {
                            let wi = w as usize;
                            let cost = self.lock_cost();
                            self.locks.entry(id as usize).held_by = Some(w);
                            self.procs[wi].time = self.procs[wi].time.max(release_time) + cost;
                            self.procs[wi].waiting = Waiting::None;
                            if feeds[wi].has_pending() || !source.exhausted(ProcId(w)) {
                                queue.push(self.procs[wi].time, w);
                                // The one push that happens while `p` keeps
                                // running: the cached horizon is stale.
                                horizon = queue.peek();
                            } else {
                                self.procs[wi].done = true;
                            }
                        }
                    }
                }
                // `p` is still runnable (compute, access, immediate lock
                // acquire, or unlock).  Keep running it while it beats the
                // schedule's head; otherwise re-enqueue it.
                if !feeds[pid].has_pending() && source.exhausted(ProcId(p)) {
                    self.procs[pid].done = true;
                    continue 'sched;
                }
                let time = self.procs[pid].time;
                if let Some(head) = horizon {
                    if (time, p) >= head {
                        queue.push(time, p);
                        continue 'sched;
                    }
                }
                // Heap empty, or (time, p) orders before its head: `p` is
                // exactly what `pop` would return.  Go around again.
            }
        }

        // The queue ran dry.  If the source poisoned itself mid-run (the
        // demultiplexing window cap tripped inside an `exhausted` probe),
        // that error outranks any blocked-processor diagnosis below.
        if let Some(e) = source.take_error() {
            return Err(e);
        }

        // The queue ran dry: every processor must have drained its stream.
        // Anything still blocked means the streams desynchronized (e.g. one
        // stream ended while others wait at a barrier it never reached).
        let blocked = self
            .procs
            .iter()
            .filter(|p| p.waiting != Waiting::None)
            .count();
        if blocked > 0 {
            return Err(TraceError::Deadlock { blocked });
        }

        Ok(self.finish(&workload))
    }

    fn finish(&mut self, workload: &str) -> SimResult {
        let execution_time = self
            .procs
            .iter()
            .map(|p| p.time)
            .max()
            .unwrap_or(Cycles::ZERO);
        // Fold per-processor miss classifications into the node stats.
        for (i, proc) in self.procs.iter().enumerate() {
            let nidx = self.machine.topology.node_of(ProcId(i as u16)).index();
            let (cold, coherence, capacity) = proc.classifier.counts();
            let stats = &mut self.nodes[nidx].stats;
            stats.cold_misses += cold;
            stats.coherence_misses += coherence;
            stats.capacity_conflict_misses += capacity;
        }
        SimResult {
            system: self.system.name.clone(),
            workload: workload.to_string(),
            execution_time,
            per_node: self.nodes.iter().map(|n| n.stats.clone()).collect(),
            traffic: self.network.traffic().clone(),
            accesses: self.accesses,
            barriers: self.barriers_done,
        }
    }

    // ------------------------------------------------------------------
    // Memory access path
    // ------------------------------------------------------------------

    fn service_access(&mut self, pid: usize, m: MemRef, now: Cycles) -> Cycles {
        let nidx = self.proc_node[pid] as usize;
        let node_id = NodeId(nidx as u16);
        // The one hash probe of the access path (memoized for the
        // page-local runs a burst usually is): everything below keys its
        // state by the dense indices resolved here, decomposed at the
        // machine's geometry.
        let page = self.page_ref_of(m.addr);
        let block = self.geometry.block_ref_of(page, m.addr);
        let is_write = m.kind.is_write();
        let costs = self.system.costs;
        let mut latency = Cycles::ZERO;

        // --- page mapping (soft page fault on first reference) ----------
        let mut mapping = match self.nodes[nidx].page_table.lookup(page.idx) {
            Some(mp) => mp,
            None => {
                let home = self.placement.first_touch(page.idx, node_id);
                latency += costs.soft_trap;
                // A policy may want a non-default mapping (e.g. MigRep maps
                // pages this node holds replicas of as replicas); otherwise
                // the page gets the plain CC-NUMA mapping.
                let mp = self
                    .policies
                    .iter()
                    .find_map(|p| p.classify_page(page, node_id, home))
                    .unwrap_or_else(|| {
                        if home == node_id {
                            PageMapping::new(PageMode::LocalHome, home)
                        } else {
                            PageMapping::new(PageMode::RemoteCcNuma, home)
                        }
                    });
                self.nodes[nidx].page_table.map(page.idx, mp);
                mp
            }
        };

        // --- write to a read-only replica: protection fault -------------
        if is_write && mapping.protection == PageProtection::ReadOnly {
            latency += costs.soft_trap;
            latency += self.switch_page_to_read_write(page, nidx, node_id, now + latency);
            mapping = self.nodes[nidx]
                .page_table
                .lookup(page.idx)
                // dsm-lint: allow(panic-path, switch_page_to_read_write installs the mapping on this node before returning; a missing entry is a simulator state-machine bug)
                .expect("page remapped after switch to read-write");
        }

        // --- processor cache ---------------------------------------------
        let outcome = self.procs[pid].cache.access(block, m.kind);
        match outcome {
            CacheOutcome::Hit => {
                self.nodes[nidx].stats.l1_hits += 1;
                if is_write {
                    self.invalidate_block_in_sibling_procs(nidx, pid, block);
                }
                latency + costs.cache_hit
            }
            CacheOutcome::UpgradeMiss => {
                latency += self.service_upgrade(nidx, node_id, page, block, mapping, now + latency);
                // A page operation triggered by the upgrade (e.g. a
                // migration flush) may have dropped the line; refill it.
                if self.procs[pid].cache.state_of(block).is_valid() {
                    self.procs[pid].cache.upgrade(block);
                } else {
                    self.procs[pid].cache.fill(block, LineState::Modified);
                    self.procs[pid].classifier.record_fill(block.idx);
                }
                self.invalidate_block_in_sibling_procs(nidx, pid, block);
                latency
            }
            CacheOutcome::Miss { victim } => {
                if let Some(v) = victim {
                    self.handle_l1_victim(pid, nidx, node_id, v, now);
                }
                let class = self.procs[pid].classifier.classify_miss(block.idx);
                latency += self.service_data_miss(
                    nidx,
                    node_id,
                    page,
                    block,
                    m.kind,
                    class,
                    mapping,
                    now + latency,
                );
                let fill_state = if is_write {
                    LineState::Modified
                } else {
                    LineState::Shared
                };
                self.procs[pid].cache.fill(block, fill_state);
                self.procs[pid].classifier.record_fill(block.idx);
                if is_write {
                    self.invalidate_block_in_sibling_procs(nidx, pid, block);
                }
                latency
            }
        }
    }

    /// Write hit on a line held shared: obtain exclusive ownership.
    fn service_upgrade(
        &mut self,
        nidx: usize,
        node_id: NodeId,
        page: PageRef,
        block: BlockRef,
        mapping: PageMapping,
        now: Cycles,
    ) -> Cycles {
        let costs = self.system.costs;
        let home = self.placement.home_of(page.idx).unwrap_or(node_id);
        let reply = self.directory.handle_write(block.idx, node_id);
        let mut remote_invalidations = false;
        for victim_node in &reply.invalidate {
            if *victim_node != node_id {
                remote_invalidations = true;
                self.invalidate_block_on_node(victim_node.index(), block);
            }
        }

        let remote_page = home != node_id && mapping.mode != PageMode::Replica;
        let latency = if remote_page {
            // Ownership is granted by the (remote) home directory.
            let t = self.network.round_trip(
                node_id,
                home,
                now,
                MsgKind::WriteRequest,
                MsgKind::WriteReply,
                Cycles::ZERO,
            );
            self.nodes[nidx].stats.remote_misses += 1;
            // Ownership requests reach the home node and are counted by its
            // relocation policies.
            let ops = if mapping.mode == PageMode::RemoteCcNuma {
                self.record_home_miss(page, home, node_id, true)
            } else {
                Vec::new()
            };
            if !ops.is_empty() {
                let mut extra = Cycles::ZERO;
                for op in ops {
                    extra += self.perform_page_op(op, now + extra);
                }
                return costs.remote_miss.max(t - now) + extra;
            }
            costs.remote_miss.max(t - now)
        } else {
            let t = self.nodes[nidx].bus.issue(now, BusTransaction::Upgrade);
            if remote_invalidations {
                costs.remote_miss.max(t - now)
            } else {
                (t - now).max(BusTransaction::Upgrade.cpu_cycles())
            }
        };

        // The written block becomes dirty wherever the node keeps it.
        match mapping.mode {
            PageMode::RemoteCcNuma => {
                if let Some(bc) = self.nodes[nidx].block_cache.as_mut() {
                    bc.mark_dirty(block);
                }
            }
            PageMode::SComa => {
                if let Some(pc) = self.nodes[nidx].page_cache.as_mut() {
                    pc.mark_dirty(block.idx);
                }
            }
            _ => {}
        }
        latency
    }

    /// Data miss in the processor cache: find the block, charging the right
    /// latency for the page's current mapping.
    #[allow(clippy::too_many_arguments)]
    fn service_data_miss(
        &mut self,
        nidx: usize,
        node_id: NodeId,
        page: PageRef,
        block: BlockRef,
        kind: AccessKind,
        class: MissClass,
        mapping: PageMapping,
        now: Cycles,
    ) -> Cycles {
        let costs = self.system.costs;
        let is_write = kind.is_write();
        let home = self.placement.home_of(page.idx).unwrap_or(node_id);
        for policy in &mut self.policies {
            policy.on_miss(page);
        }

        match mapping.mode {
            PageMode::LocalHome | PageMode::Replica => {
                // Data lives in local memory unless a remote node owns it dirty.
                let remote_owner = self.directory.owner_of(block.idx).filter(|o| *o != node_id);
                if is_write {
                    let reply = self.directory.handle_write(block.idx, node_id);
                    for victim in &reply.invalidate {
                        if *victim != node_id {
                            self.invalidate_block_on_node(victim.index(), block);
                        }
                    }
                } else {
                    self.directory.handle_read(block.idx, node_id);
                    if let Some(owner) = remote_owner {
                        self.downgrade_block_on_node(owner.index(), block);
                    }
                }

                let latency = if let Some(owner) = remote_owner {
                    let t = self.network.round_trip(
                        node_id,
                        owner,
                        now,
                        MsgKind::OwnerForward,
                        if is_write {
                            MsgKind::WriteReply
                        } else {
                            MsgKind::ReadReply
                        },
                        Cycles::ZERO,
                    );
                    self.count_remote_miss(nidx, class);
                    costs.dirty_remote_miss().max(t - now)
                } else {
                    let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
                    self.nodes[nidx].stats.local_misses += 1;
                    costs.local_miss.max(t - now)
                };

                let mut latency = latency;
                if mapping.mode == PageMode::LocalHome {
                    // Local misses are counted so that the home-vs-requester
                    // comparison in the migration policy sees them.  The
                    // built-in engines never decide on home-local misses, but
                    // a third-party policy may; its operations are honoured
                    // here like anywhere else.
                    let ops = self.record_home_miss(page, home, node_id, is_write);
                    for op in ops {
                        latency += self.perform_page_op(op, now + latency);
                    }
                }
                latency
            }

            PageMode::SComa => {
                let present = self.nodes[nidx]
                    .page_cache
                    .as_mut()
                    // dsm-lint: allow(panic-path, PageMode::SComa is only assigned on nodes constructed with a page cache; the pairing is a construction invariant)
                    .expect("S-COMA mapping without a page cache")
                    .lookup_block(block.idx);
                if present {
                    if is_write {
                        let reply = self.directory.handle_write(block.idx, node_id);
                        let mut remote_invalidations = false;
                        for victim in &reply.invalidate {
                            if *victim != node_id {
                                remote_invalidations = true;
                                self.invalidate_block_on_node(victim.index(), block);
                            }
                        }
                        self.nodes[nidx]
                            .page_cache
                            .as_mut()
                            // dsm-lint: allow(panic-path, same page-cache access re-taken after the presence check at the top of this match arm)
                            .expect("checked above")
                            .mark_dirty(block.idx);
                        if remote_invalidations {
                            self.count_remote_miss(nidx, class);
                            costs.remote_miss
                        } else {
                            let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
                            self.nodes[nidx].stats.local_misses += 1;
                            costs.local_miss.max(t - now)
                        }
                    } else {
                        let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
                        self.nodes[nidx].stats.local_misses += 1;
                        costs.local_miss.max(t - now)
                    }
                } else {
                    // Fine-grain miss in the page cache: fetch from the home
                    // and install the block locally.
                    let latency =
                        self.remote_fetch(nidx, node_id, home, block, is_write, class, now);
                    self.nodes[nidx]
                        .page_cache
                        .as_mut()
                        // dsm-lint: allow(panic-path, same page-cache access re-taken after the presence check at the top of this match arm)
                        .expect("checked above")
                        .install_block(block.idx, is_write);
                    latency
                }
            }

            PageMode::RemoteCcNuma => {
                let block_cache_hit = self.nodes[nidx]
                    .block_cache
                    .as_mut()
                    .map(|bc| bc.lookup(block).is_some())
                    .unwrap_or(false);

                if block_cache_hit {
                    if is_write {
                        let reply = self.directory.handle_write(block.idx, node_id);
                        let mut remote_invalidations = false;
                        for victim in &reply.invalidate {
                            if *victim != node_id {
                                remote_invalidations = true;
                                self.invalidate_block_on_node(victim.index(), block);
                            }
                        }
                        if let Some(bc) = self.nodes[nidx].block_cache.as_mut() {
                            bc.mark_dirty(block);
                        }
                        if remote_invalidations {
                            self.count_remote_miss(nidx, class);
                            costs.remote_miss
                        } else {
                            let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
                            self.nodes[nidx].stats.local_misses += 1;
                            costs.local_miss.max(t - now)
                        }
                    } else {
                        let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
                        self.nodes[nidx].stats.local_misses += 1;
                        costs.local_miss.max(t - now)
                    }
                } else {
                    let mut latency =
                        self.remote_fetch(nidx, node_id, home, block, is_write, class, now);
                    // Install in the block cache (CC-NUMA family only).
                    let victim = self.nodes[nidx].block_cache.as_mut().and_then(|bc| {
                        bc.fill(
                            block,
                            if is_write {
                                BlockState::Dirty
                            } else {
                                BlockState::Clean
                            },
                        )
                    });
                    if let Some((victim_block, victim_state)) = victim {
                        self.handle_block_cache_victim(
                            nidx,
                            node_id,
                            victim_block,
                            victim_state,
                            now,
                        );
                    }
                    latency += self.policy_after_home_miss(
                        page,
                        home,
                        node_id,
                        is_write,
                        class,
                        now + latency,
                    );
                    latency
                }
            }
        }
    }

    /// A fetch that must reach the home node (or the dirty owner) across the
    /// network.
    #[allow(clippy::too_many_arguments)]
    fn remote_fetch(
        &mut self,
        nidx: usize,
        node_id: NodeId,
        home: NodeId,
        block: BlockRef,
        is_write: bool,
        class: MissClass,
        now: Cycles,
    ) -> Cycles {
        let costs = self.system.costs;
        if home == node_id {
            // The page migrated here since it was mapped; the fetch is local.
            if is_write {
                let reply = self.directory.handle_write(block.idx, node_id);
                for victim in &reply.invalidate {
                    if *victim != node_id {
                        self.invalidate_block_on_node(victim.index(), block);
                    }
                }
            } else {
                self.directory.handle_read(block.idx, node_id);
            }
            let t = self.nodes[nidx].bus.issue(now, BusTransaction::BlockFill);
            self.nodes[nidx].stats.local_misses += 1;
            return costs.local_miss.max(t - now);
        }

        let mut base = costs.remote_miss;
        if is_write {
            let reply = self.directory.handle_write(block.idx, node_id);
            if let DataSource::Owner(owner) = reply.source {
                if owner != node_id && owner != home {
                    base = costs.dirty_remote_miss();
                }
            }
            for victim in &reply.invalidate {
                if *victim != node_id {
                    self.invalidate_block_on_node(victim.index(), block);
                }
            }
        } else {
            let reply = self.directory.handle_read(block.idx, node_id);
            if let DataSource::Owner(owner) = reply.source {
                if owner != node_id {
                    if owner != home {
                        base = costs.dirty_remote_miss();
                    }
                    self.downgrade_block_on_node(owner.index(), block);
                }
            }
        }

        let (req, rep) = if is_write {
            (MsgKind::WriteRequest, MsgKind::WriteReply)
        } else {
            (MsgKind::ReadRequest, MsgKind::ReadReply)
        };
        let t = self
            .network
            .round_trip(node_id, home, now, req, rep, Cycles::ZERO);
        self.count_remote_miss(nidx, class);
        base.max(t - now)
    }

    fn count_remote_miss(&mut self, nidx: usize, class: MissClass) {
        self.nodes[nidx].stats.remote_misses += 1;
        if class == MissClass::CapacityConflict {
            self.nodes[nidx].stats.remote_capacity_misses += 1;
        }
    }

    /// Policy hooks that fire when a miss actually reached the page's home
    /// node: every policy observes the home-counted miss and the requesting
    /// node's refetch, and the operations they request are performed in
    /// policy order, each charged at the time the previous one completed.
    fn policy_after_home_miss(
        &mut self,
        page: PageRef,
        home: NodeId,
        node_id: NodeId,
        is_write: bool,
        class: MissClass,
        now: Cycles,
    ) -> Cycles {
        let mut ops = Vec::new();
        for policy in &mut self.policies {
            policy.on_remote_miss(page, home, node_id, is_write);
            policy.on_refetch(node_id, page, class);
            ops.extend(policy.drain_ops());
        }
        let mut extra = Cycles::ZERO;
        for op in ops {
            extra += self.perform_page_op(op, now + extra);
        }
        extra
    }

    /// Let every policy count a miss that reached `page`'s home node, and
    /// collect the page operations they want performed in response.
    fn record_home_miss(
        &mut self,
        page: PageRef,
        home: NodeId,
        requester: NodeId,
        is_write: bool,
    ) -> Vec<PageOp> {
        let mut ops = Vec::new();
        for policy in &mut self.policies {
            policy.on_remote_miss(page, home, requester, is_write);
            ops.extend(policy.drain_ops());
        }
        ops
    }

    /// Report a completed page operation to every policy.
    fn notify_op_performed(&mut self, op: &PageOp) {
        for policy in &mut self.policies {
            policy.note_op_performed(op);
        }
    }

    fn perform_page_op(&mut self, op: PageOp, now: Cycles) -> Cycles {
        match op {
            PageOp::Replicate { page, to } => self.replicate_page(page, to, now),
            PageOp::Migrate { page, to } => self.migrate_page(page, to, now),
            PageOp::Relocate { page, to } => self.relocate_page(page, to, now),
        }
    }

    // ------------------------------------------------------------------
    // Page operations
    // ------------------------------------------------------------------

    fn replicate_page(&mut self, page: PageRef, to: NodeId, now: Cycles) -> Cycles {
        let costs = self.system.costs;
        let home = match self.placement.home_of(page.idx) {
            Some(h) if h != to => h,
            _ => return Cycles::ZERO,
        };
        // Request + full page of data from the home.
        let bpp = self.geometry.blocks_per_page();
        let mut t = self.network.send(to, home, now, MsgKind::PageControl);
        for _ in 0..bpp {
            t = self.network.send(home, to, t, MsgKind::PageDataBlock);
        }
        // dsm-lint: allow(cast-truncation, blocks_per_page = page_bytes/block_bytes is a small bounded ratio; fits u32 with room to spare)
        let latency = (costs.soft_trap + costs.page_copy_cost_at(bpp as u32, bpp)).max(t - now);

        self.notify_op_performed(&PageOp::Replicate { page, to });
        let to_idx = to.index();
        self.nodes[to_idx]
            .page_table
            .map(page.idx, PageMapping::replica(home));
        self.nodes[to_idx].stats.replications += 1;
        self.nodes[to_idx].stats.page_op_cycles += latency;
        latency
    }

    fn migrate_page(&mut self, page: PageRef, to: NodeId, now: Cycles) -> Cycles {
        let costs = self.system.costs;
        if self.policies.iter().any(|p| p.page_is_replicated(page)) {
            // Replicated pages are read-shared; migrating them would be a
            // policy error (the paper's engines prefer replication).
            return Cycles::ZERO;
        }
        let old_home = match self.placement.home_of(page.idx) {
            Some(h) if h != to => h,
            _ => return Cycles::ZERO,
        };

        // Gather: invalidate and flush every cached copy of the page.
        // `nodes_touched` is ordered so the control messages below go out in
        // a deterministic node order (a HashSet here made MigRep runs differ
        // run-to-run through network-interface queueing).
        let flushed = self.directory.purge_page(page.idx);
        let mut blocks_cached = 0u32;
        let mut nodes_touched: BTreeSet<usize> = BTreeSet::new();
        for (block_idx, holders) in &flushed {
            blocks_cached += 1;
            let block = self
                .geometry
                .block_ref_at(page, self.geometry.index_in_page_idx(*block_idx));
            for holder in holders {
                nodes_touched.insert(holder.index());
                self.invalidate_block_on_node(holder.index(), block);
            }
        }

        // Control messages to every cacher, then the page moves to its new
        // home.
        let bpp = self.geometry.blocks_per_page();
        let mut t = now;
        for n in &nodes_touched {
            t = self
                .network
                .send(old_home, NodeId(*n as u16), t, MsgKind::PageControl);
        }
        for _ in 0..bpp {
            t = self.network.send(old_home, to, t, MsgKind::PageDataBlock);
        }

        let gather = costs.page_gather_cost_at(blocks_cached, bpp);
        // dsm-lint: allow(cast-truncation, blocks_per_page = page_bytes/block_bytes is a small bounded ratio; fits u32 with room to spare)
        let copy = costs.page_copy_cost_at(bpp as u32, bpp);
        let shootdowns = costs.tlb_shootdown * (nodes_touched.len() as u64 + 1);
        let latency = (costs.soft_trap + gather + copy + shootdowns).max(t - now);

        self.placement.migrate(page.idx, to);
        self.notify_op_performed(&PageOp::Migrate { page, to });

        // Update every node's view of the page.  O(nodes) per migration
        // whether or not a node ever saw the page — one of the two >64-node
        // cost-cliff suspects the profile-counters feature counts.
        #[cfg(feature = "profile-counters")]
        {
            use std::sync::atomic::Ordering;
            crate::profile::GATHERS.fetch_add(1, Ordering::Relaxed);
            crate::profile::GATHER_VISITS.fetch_add(self.nodes.len() as u64, Ordering::Relaxed);
        }
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let here = NodeId(idx as u16);
            if let Some(mp) = node.page_table.lookup(page.idx) {
                node.page_table.set_home(page.idx, to);
                if here == to {
                    if mp.mode == PageMode::SComa {
                        if let Some(pc) = node.page_cache.as_mut() {
                            pc.deallocate(page.idx);
                        }
                    }
                    node.page_table.set_mode(page.idx, PageMode::LocalHome);
                    node.page_table
                        .set_protection(page.idx, PageProtection::ReadWrite);
                } else if mp.mode == PageMode::LocalHome {
                    node.page_table.set_mode(page.idx, PageMode::RemoteCcNuma);
                }
            } else if here == to {
                node.page_table
                    .map(page.idx, PageMapping::new(PageMode::LocalHome, to));
            }
        }

        let to_idx = to.index();
        self.nodes[to_idx].stats.migrations += 1;
        self.nodes[to_idx].stats.page_op_cycles += latency;
        latency
    }

    fn switch_page_to_read_write(
        &mut self,
        page: PageRef,
        writer_nidx: usize,
        writer_node: NodeId,
        now: Cycles,
    ) -> Cycles {
        let costs = self.system.costs;
        let home = self.placement.home_of(page.idx).unwrap_or(writer_node);
        let holders: Vec<NodeId> = self
            .policies
            .iter_mut()
            .flat_map(|p| p.on_write_to_read_only(page))
            .collect();

        let mut flushed_blocks = 0u32;
        let mut t = self
            .network
            .send(writer_node, home, now, MsgKind::PageControl);
        for holder in &holders {
            t = self.network.send(home, *holder, t, MsgKind::PageControl);
            flushed_blocks += self.flush_page_on_node(holder.index(), page);
            let mode = if *holder == home {
                PageMode::LocalHome
            } else {
                PageMode::RemoteCcNuma
            };
            self.nodes[holder.index()]
                .page_table
                .map(page.idx, PageMapping::new(mode, home));
        }
        // The writer's own mapping reverts to a normal read-write mapping
        // even if (defensively) it was not registered as a replica holder.
        let writer_mode = if writer_node == home {
            PageMode::LocalHome
        } else {
            PageMode::RemoteCcNuma
        };
        self.nodes[writer_nidx]
            .page_table
            .map(page.idx, PageMapping::new(writer_mode, home));

        let latency = (costs.page_gather_cost_at(flushed_blocks, self.geometry.blocks_per_page())
            + costs.tlb_shootdown * (holders.len() as u64).max(1))
        .max(t - now);
        self.nodes[writer_nidx].stats.switches_to_rw += 1;
        self.nodes[writer_nidx].stats.page_op_cycles += latency;
        latency
    }

    fn relocate_page(&mut self, page: PageRef, node_id: NodeId, now: Cycles) -> Cycles {
        let costs = self.system.costs;
        let nidx = node_id.index();
        // Flush the node's cached blocks of the page; they will be refetched
        // A policy may request relocation on a system whose nodes have no
        // S-COMA page cache (e.g. a third-party policy attached to a
        // CC-NUMA base); there is nowhere to relocate to, so the operation
        // is ignored rather than performed.
        if self.nodes[nidx].page_cache.is_none() {
            return Cycles::ZERO;
        }
        // on demand into the page cache.
        let flushed = self.flush_page_on_node(nidx, page);
        for block in self.geometry.block_indices(page.idx) {
            self.directory.handle_eviction(block, node_id);
        }

        let mut extra = Cycles::ZERO;
        let outcome = self.nodes[nidx]
            .page_cache
            .as_mut()
            // dsm-lint: allow(panic-path, relocation only runs for systems whose nodes are constructed with page caches)
            .expect("relocation without a page cache")
            .allocate(page);
        if let AllocOutcome::Replaced {
            victim,
            victim_blocks,
            victim_dirty,
        } = outcome
        {
            let victim_home = self.placement.home_of(victim.idx).unwrap_or(node_id);
            let victim_mode = if victim_home == node_id {
                PageMode::LocalHome
            } else {
                PageMode::RemoteCcNuma
            };
            self.nodes[nidx]
                .page_table
                .map(victim.idx, PageMapping::new(victim_mode, victim_home));
            let victim_l1 = self.flush_page_on_node(nidx, victim);
            let mut t = now;
            for _ in 0..victim_dirty {
                t = self
                    .network
                    .send(node_id, victim_home, t, MsgKind::WriteBack);
            }
            for block in self.geometry.block_indices(victim.idx) {
                self.directory.handle_eviction(block, node_id);
            }
            extra += costs
                .page_alloc_cost_at(victim_blocks + victim_l1, self.geometry.blocks_per_page())
                .max(t - now);
            self.nodes[nidx].stats.page_cache_replacements += 1;
        }

        let home = self.placement.home_of(page.idx).unwrap_or(node_id);
        self.nodes[nidx]
            .page_table
            .map(page.idx, PageMapping::new(PageMode::SComa, home));
        self.notify_op_performed(&PageOp::Relocate { page, to: node_id });

        let latency = costs.soft_trap
            + costs.tlb_shootdown
            + costs.page_alloc_cost_at(flushed, self.geometry.blocks_per_page())
            + extra;
        self.nodes[nidx].stats.relocations += 1;
        self.nodes[nidx].stats.page_op_cycles += latency;
        latency
    }

    // ------------------------------------------------------------------
    // Coherence helpers
    // ------------------------------------------------------------------

    /// Invalidate `block` everywhere on a node (processor caches, block
    /// cache, page cache).
    fn invalidate_block_on_node(&mut self, nidx: usize, block: BlockRef) {
        let topo = self.machine.topology;
        for proc in topo.procs_of(NodeId(nidx as u16)) {
            let p = &mut self.procs[proc.index()];
            if p.cache.invalidate(block).is_valid() {
                p.classifier.record_invalidation(block.idx);
            }
        }
        if let Some(bc) = self.nodes[nidx].block_cache.as_mut() {
            bc.invalidate(block);
        }
        if let Some(pc) = self.nodes[nidx].page_cache.as_mut() {
            pc.invalidate_block(block.idx);
        }
    }

    /// Downgrade `block` to a shared state everywhere on a node.
    fn downgrade_block_on_node(&mut self, nidx: usize, block: BlockRef) {
        let topo = self.machine.topology;
        for proc in topo.procs_of(NodeId(nidx as u16)) {
            self.procs[proc.index()].cache.downgrade(block);
        }
    }

    /// Intra-node coherence: a write by one processor invalidates the copies
    /// held by its siblings on the same node.
    fn invalidate_block_in_sibling_procs(
        &mut self,
        nidx: usize,
        writer_pid: usize,
        block: BlockRef,
    ) {
        let topo = self.machine.topology;
        for proc in topo.procs_of(NodeId(nidx as u16)) {
            if proc.index() == writer_pid {
                continue;
            }
            let p = &mut self.procs[proc.index()];
            if p.cache.invalidate(block).is_valid() {
                p.classifier.record_invalidation(block.idx);
            }
        }
    }

    /// Drop every cached block of `page` on a node (page flush).  Departures
    /// are recorded as evictions so the subsequent refetches are classified
    /// capacity/conflict, as the paper does for relocation-induced refetches.
    fn flush_page_on_node(&mut self, nidx: usize, page: PageRef) -> u32 {
        let topo = self.machine.topology;
        let geometry = self.geometry;
        let mut flushed = 0u32;
        for proc in topo.procs_of(NodeId(nidx as u16)) {
            let p = &mut self.procs[proc.index()];
            let resident: Vec<BlockRef> = p
                .cache
                .resident_blocks()
                .filter(|(b, _)| geometry.page_of_block_idx(b.idx) == page.idx)
                .map(|(b, _)| b)
                .collect();
            for block in resident {
                p.cache.invalidate(block);
                p.classifier.record_eviction(block.idx);
                flushed += 1;
            }
        }
        if let Some(bc) = self.nodes[nidx].block_cache.as_mut() {
            flushed += bc.flush_page(page).len() as u32;
        }
        flushed
    }

    fn handle_l1_victim(
        &mut self,
        pid: usize,
        nidx: usize,
        node_id: NodeId,
        victim: Victim,
        now: Cycles,
    ) {
        self.procs[pid].classifier.record_eviction(victim.block.idx);
        if !victim.state.is_dirty() {
            return;
        }
        self.nodes[nidx].bus.issue(now, BusTransaction::WriteBack);
        let vpage = self.geometry.page_of_block_idx(victim.block.idx);
        let mode = self.nodes[nidx].page_table.lookup(vpage).map(|m| m.mode);
        match mode {
            Some(PageMode::RemoteCcNuma) => {
                let written_back_locally = self.nodes[nidx]
                    .block_cache
                    .as_mut()
                    .map(|bc| bc.mark_dirty(victim.block))
                    .unwrap_or(false);
                if !written_back_locally {
                    // No block cache (or not present): the dirty block goes
                    // straight back to its home.
                    let home = self.placement.home_of(vpage).unwrap_or(node_id);
                    self.network.send(node_id, home, now, MsgKind::WriteBack);
                    self.directory.handle_eviction(victim.block.idx, node_id);
                }
            }
            Some(PageMode::SComa) => {
                if let Some(pc) = self.nodes[nidx].page_cache.as_mut() {
                    pc.mark_dirty(victim.block.idx);
                }
            }
            _ => {}
        }
    }

    fn handle_block_cache_victim(
        &mut self,
        nidx: usize,
        node_id: NodeId,
        victim_block: BlockRef,
        victim_state: BlockState,
        now: Cycles,
    ) {
        // Inclusion: the processor caches may not keep a block the block
        // cache no longer holds.
        let topo = self.machine.topology;
        for proc in topo.procs_of(NodeId(nidx as u16)) {
            let p = &mut self.procs[proc.index()];
            if p.cache.invalidate(victim_block).is_valid() {
                p.classifier.record_eviction(victim_block.idx);
            }
        }
        let vpage = self.geometry.page_of_block_idx(victim_block.idx);
        let home = self.placement.home_of(vpage).unwrap_or(node_id);
        if victim_state == BlockState::Dirty {
            self.network.send(node_id, home, now, MsgKind::WriteBack);
        }
        self.directory.handle_eviction(victim_block.idx, node_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MigRep, PageCaching, System};
    use crate::config::MachineConfig;
    use mem_trace::{GlobalAddr, TraceBuilder, PAGE_SIZE};

    /// A stride that maps two blocks to the same line of both the processor
    /// cache and the node's (4x larger) block cache, so the conflict stream
    /// is visible to the home node in every system.
    fn conflict_stride(machine: &MachineConfig) -> u64 {
        machine.l1.size_bytes * machine.topology.procs_per_node as u64
    }

    /// Two conflicting remote blocks read in a loop by one processor of
    /// node 1; both pages are first touched (homed) on node 0.
    fn conflict_loop_trace(machine: &MachineConfig, iterations: usize) -> ProgramTrace {
        let mut b = TraceBuilder::new("conflict-loop", machine.topology);
        let stride = conflict_stride(machine);
        b.write(ProcId(0), GlobalAddr(0));
        b.write(ProcId(0), GlobalAddr(stride));
        b.barrier_all();
        let reader = ProcId(machine.topology.procs_per_node); // first proc of node 1
        for _ in 0..iterations {
            b.read(reader, GlobalAddr(0));
            b.read(reader, GlobalAddr(stride));
        }
        b.barrier_all();
        b.build()
    }

    /// A page written once by node 0 and then read over and over by every
    /// other node: the classic replication candidate.
    fn read_shared_trace(machine: &MachineConfig, iterations: usize) -> ProgramTrace {
        let mut b = TraceBuilder::new("read-shared", machine.topology);
        let stride = conflict_stride(machine);
        b.write(ProcId(0), GlobalAddr(0));
        b.write(ProcId(0), GlobalAddr(stride));
        b.barrier_all();
        for _ in 0..iterations {
            for node in machine.topology.node_ids().skip(1) {
                let reader = machine.topology.procs_of(node).next().unwrap();
                b.read(reader, GlobalAddr(0));
                b.read(reader, GlobalAddr(stride));
            }
        }
        b.barrier_all();
        b.build()
    }

    /// A page first touched by node 0 but afterwards used exclusively (and
    /// heavily, read-write) by node 1: the classic migration candidate.
    fn migration_trace(machine: &MachineConfig, iterations: usize) -> ProgramTrace {
        let mut b = TraceBuilder::new("migration", machine.topology);
        let stride = conflict_stride(machine);
        b.read(ProcId(0), GlobalAddr(0));
        b.read(ProcId(0), GlobalAddr(stride));
        b.barrier_all();
        let user = ProcId(machine.topology.procs_per_node);
        for i in 0..iterations {
            let addr = GlobalAddr((i as u64 % 2) * stride);
            if i % 3 == 0 {
                b.write(user, addr);
            } else {
                b.read(user, addr);
            }
            // Keep the two conflicting lines alternating so misses recur.
            b.read(user, GlobalAddr(((i as u64 + 1) % 2) * stride));
        }
        b.barrier_all();
        b.build()
    }

    fn scaled_thresholds() -> crate::cost::Thresholds {
        crate::cost::Thresholds::paper_fast().scaled_down(16)
    }

    #[test]
    fn perfect_cc_numa_is_never_slower_than_cc_numa() {
        let machine = MachineConfig::PAPER;
        let trace = conflict_loop_trace(&machine, 500);
        let perfect = ClusterSimulator::new(machine, System::perfect_cc_numa().build()).run(&trace);
        let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        assert!(perfect.execution_time <= base.execution_time);
        assert!(perfect.total_remote_misses() <= base.total_remote_misses());
        // The conflicting blocks thrash the finite block cache but fit the
        // infinite one.
        assert!(base.total_remote_misses() > 500);
        assert!(perfect.total_remote_misses() < 10);
    }

    #[test]
    fn r_numa_relocates_hot_conflicting_pages() {
        let machine = MachineConfig::PAPER;
        let trace = conflict_loop_trace(&machine, 500);
        let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        let rnuma = ClusterSimulator::new(machine, System::r_numa().build()).run(&trace);
        assert!(rnuma.per_node_relocations() > 0.0, "expected relocations");
        assert!(rnuma.total_remote_misses() < base.total_remote_misses());
        assert!(rnuma.execution_time < base.execution_time);
    }

    #[test]
    fn replication_converts_read_shared_remote_misses_to_local() {
        let machine = MachineConfig::PAPER;
        let trace = read_shared_trace(&machine, 400);
        let thresholds = scaled_thresholds();
        let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        let rep = ClusterSimulator::new(
            machine,
            System::cc_numa()
                .with(MigRep::replication_only())
                .with(thresholds)
                .build(),
        )
        .run(&trace);
        let total_replications: u64 = rep.per_node.iter().map(|n| n.replications).sum();
        assert!(total_replications > 0, "expected pages to be replicated");
        assert!(rep.total_remote_misses() < base.total_remote_misses());
        assert!(rep.execution_time <= base.execution_time);
    }

    #[test]
    fn migration_moves_page_to_its_dominant_user() {
        let machine = MachineConfig::PAPER;
        let trace = migration_trace(&machine, 600);
        let thresholds = scaled_thresholds();
        let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        let mig = ClusterSimulator::new(
            machine,
            System::cc_numa()
                .with(MigRep::migration_only())
                .with(thresholds)
                .build(),
        )
        .run(&trace);
        let total_migrations: u64 = mig.per_node.iter().map(|n| n.migrations).sum();
        assert!(total_migrations > 0, "expected pages to migrate");
        // The migrated pages' misses become local on node 1.
        assert!(mig.total_remote_misses() < base.total_remote_misses());
    }

    #[test]
    fn write_to_replicated_page_switches_it_back_to_read_write() {
        let machine = MachineConfig::PAPER;
        let mut b = TraceBuilder::new("rw-switch", machine.topology);
        let stride = conflict_stride(&machine);
        b.write(ProcId(0), GlobalAddr(0));
        b.write(ProcId(0), GlobalAddr(stride));
        b.barrier_all();
        let reader = ProcId(machine.topology.procs_per_node);
        for _ in 0..200 {
            b.read(reader, GlobalAddr(0));
            b.read(reader, GlobalAddr(stride));
        }
        b.barrier_all();
        // Now the reader writes the replicated page.
        b.write(reader, GlobalAddr(0));
        b.barrier_all();
        let trace = b.build();

        let rep = ClusterSimulator::new(
            machine,
            System::cc_numa()
                .with(MigRep::replication_only())
                .with(scaled_thresholds())
                .build(),
        )
        .run(&trace);
        let replications: u64 = rep.per_node.iter().map(|n| n.replications).sum();
        let switches: u64 = rep.per_node.iter().map(|n| n.switches_to_rw).sum();
        assert!(replications > 0);
        assert_eq!(switches, 1, "the single write should force one switch");
    }

    #[test]
    fn finite_page_cache_replaces_pages_under_pressure() {
        let machine = MachineConfig::PAPER;
        // Touch many distinct remote pages repeatedly with a 4-frame page
        // cache: replacements are inevitable.
        let mut b = TraceBuilder::new("pressure", machine.topology);
        let pages = 16u64;
        for p in 0..pages {
            b.write(ProcId(0), GlobalAddr(p * PAGE_SIZE));
        }
        b.barrier_all();
        let reader = ProcId(machine.topology.procs_per_node);
        for round in 0..200u64 {
            let p = round % pages;
            b.read(reader, GlobalAddr(p * PAGE_SIZE));
            // A second line in the same L1 set to force conflict evictions.
            b.read(reader, GlobalAddr(p * PAGE_SIZE + machine.l1.size_bytes));
        }
        b.barrier_all();
        let trace = b.build();

        let tiny_cache = System::r_numa()
            .with(PageCaching::bytes(4 * PAGE_SIZE))
            .with(crate::cost::Thresholds {
                rnuma_threshold: 2,
                ..crate::cost::Thresholds::paper_fast()
            });
        let result = ClusterSimulator::new(machine, tiny_cache.build()).run(&trace);
        assert!(result.per_node_relocations() > 0.0);
        assert!(
            result.total_page_cache_replacements() > 0,
            "a 4-frame cache cycling over 32 hot pages must replace"
        );

        // With an infinite page cache the same workload never replaces.
        let inf = ClusterSimulator::new(
            machine,
            System::r_numa()
                .with(PageCaching::infinite())
                .with(crate::cost::Thresholds {
                    rnuma_threshold: 2,
                    ..crate::cost::Thresholds::paper_fast()
                })
                .build(),
        )
        .run(&trace);
        assert_eq!(inf.total_page_cache_replacements(), 0);
        assert!(inf.execution_time <= result.execution_time);
    }

    #[test]
    fn barriers_synchronize_processor_clocks() {
        let machine = MachineConfig::tiny();
        let mut b = TraceBuilder::new("barrier", machine.topology);
        // Processor 0 computes for a long time; everyone then meets at a
        // barrier and does one more access.
        b.compute(ProcId(0), 1_000_000);
        b.barrier_all();
        for p in machine.topology.proc_ids() {
            b.read(p, GlobalAddr(0));
        }
        let trace = b.build();
        let result = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        assert!(result.execution_time.raw() >= 1_000_000);
        assert_eq!(result.barriers, 1);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let machine = MachineConfig::tiny();
        let mut b = TraceBuilder::new("locks", machine.topology);
        for p in machine.topology.proc_ids() {
            b.lock(p, 1);
            b.write(p, GlobalAddr(0));
            b.compute(p, 10_000);
            b.unlock(p, 1);
        }
        let trace = b.build();
        let result = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        // Four critical sections of 10k cycles each must serialize.
        assert!(result.execution_time.raw() >= 40_000);
    }

    #[test]
    fn simulation_is_deterministic() {
        let machine = MachineConfig::PAPER;
        let trace = read_shared_trace(&machine, 50);
        let sys = System::cc_numa()
            .with(MigRep::both())
            .with(scaled_thresholds())
            .build();
        let a = ClusterSimulator::new(machine, sys.clone()).run(&trace);
        let b = ClusterSimulator::new(machine, sys).run(&trace);
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.total_remote_misses(), b.total_remote_misses());
        assert_eq!(a.total_page_operations(), b.total_page_operations());
    }

    /// Regression test: page migration gathers cached copies from a set of
    /// nodes, and the order of the control messages must be deterministic
    /// (an unordered set here once made MigRep runs differ bit-for-bit
    /// through network-interface queueing).
    #[test]
    fn migration_heavy_simulation_is_deterministic() {
        let machine = MachineConfig::PAPER;
        let mut b = TraceBuilder::new("migration-det", machine.topology);
        let stride = conflict_stride(&machine);
        // Every node caches both pages, so the migration gather touches many
        // nodes; then node 1 dominates with a write-heavy mix (upgrade
        // misses reach the home and feed its migration counters).
        for p in machine.topology.proc_ids() {
            b.read(p, GlobalAddr(0));
            b.read(p, GlobalAddr(stride));
        }
        b.barrier_all();
        let user = ProcId(machine.topology.procs_per_node);
        for i in 0..600u64 {
            let addr = GlobalAddr((i % 2) * stride);
            if i % 3 == 0 {
                b.write(user, addr);
            } else {
                b.read(user, addr);
            }
            b.read(user, GlobalAddr(((i + 1) % 2) * stride));
        }
        b.barrier_all();
        let trace = b.build();

        let sys = System::cc_numa()
            .with(MigRep::migration_only())
            .with(scaled_thresholds())
            .build();
        let a = ClusterSimulator::new(machine, sys.clone()).run(&trace);
        let c = ClusterSimulator::new(machine, sys).run(&trace);
        let migrations: u64 = a.per_node.iter().map(|n| n.migrations).sum();
        assert!(migrations > 0, "expected migrations in this trace");
        assert_eq!(a, c, "migration path must be bit-deterministic");
    }

    /// An empty trace drives every zero-denominator edge through the real
    /// simulator: zero accesses, zero execution time, empty per-node
    /// counters — all ratio helpers must stay finite.
    #[test]
    fn empty_trace_yields_safe_zero_denominator_results() {
        let machine = MachineConfig::tiny();
        let trace = TraceBuilder::new("empty", machine.topology).build();
        let r = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        assert_eq!(r.accesses, 0);
        assert!(r.execution_time.is_zero());
        assert_eq!(r.normalized_against(&r), 1.0);
        assert_eq!(r.local_hit_fraction(), 0.0);
        assert_eq!(r.per_node_remote_misses(), 0.0);
        assert_eq!(r.total_page_operations(), 0);
    }

    #[test]
    fn accesses_and_stats_are_accounted() {
        let machine = MachineConfig::tiny();
        let mut b = TraceBuilder::new("count", machine.topology);
        b.read(ProcId(0), GlobalAddr(0));
        b.write(ProcId(1), GlobalAddr(PAGE_SIZE));
        b.compute(ProcId(2), 77);
        let trace = b.build();
        let r = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        assert_eq!(r.accesses, 2);
        let total_misses: u64 = r.per_node.iter().map(|n| n.total_misses()).sum();
        assert_eq!(total_misses, 2, "both cold misses are counted");
    }

    /// Third-party policies plug into the same operation pipeline as the
    /// built-in engines: their drained operations are performed and charged.
    #[test]
    fn third_party_policy_drives_page_ops() {
        #[derive(Debug, Default)]
        struct MigrateToRequester {
            // A third-party policy can key per-page state by the dense
            // `page.idx` it receives; a map keyed by the sparse id works
            // too, as here.
            counts: std::collections::HashMap<(mem_trace::PageId, NodeId), u64>,
            pending: Vec<PageOp>,
        }
        impl RelocationPolicy for MigrateToRequester {
            fn name(&self) -> &'static str {
                "migrate-to-requester"
            }
            fn on_remote_miss(
                &mut self,
                page: PageRef,
                home: NodeId,
                requester: NodeId,
                _is_write: bool,
            ) {
                if requester == home {
                    return;
                }
                let c = self.counts.entry((page.id, requester)).or_insert(0);
                *c += 1;
                if *c == 20 {
                    self.pending.push(PageOp::Migrate {
                        page,
                        to: requester,
                    });
                }
            }
            fn drain_ops(&mut self) -> Vec<PageOp> {
                std::mem::take(&mut self.pending)
            }
        }

        let machine = MachineConfig::PAPER;
        let trace = conflict_loop_trace(&machine, 500);
        let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
        let sys = System::cc_numa()
            .policy(|| Box::<MigrateToRequester>::default())
            .named("CC-NUMA+custom")
            .build();
        let custom = ClusterSimulator::new(machine, sys).run(&trace);
        let migrations: u64 = custom.per_node.iter().map(|n| n.migrations).sum();
        assert!(
            migrations > 0,
            "custom policy's migrations were not performed"
        );
        assert!(custom.total_remote_misses() < base.total_remote_misses());
    }

    /// A policy asking to relocate on a system whose nodes have no page
    /// cache is ignored, not a panic.
    #[test]
    fn relocate_without_page_cache_is_ignored_not_fatal() {
        #[derive(Debug, Default)]
        struct RelocateEverything {
            pending: Vec<PageOp>,
        }
        impl RelocationPolicy for RelocateEverything {
            fn name(&self) -> &'static str {
                "relocate-everything"
            }
            fn on_remote_miss(
                &mut self,
                page: PageRef,
                _home: NodeId,
                requester: NodeId,
                _is_write: bool,
            ) {
                self.pending.push(PageOp::Relocate {
                    page,
                    to: requester,
                });
            }
            fn drain_ops(&mut self) -> Vec<PageOp> {
                std::mem::take(&mut self.pending)
            }
        }

        let machine = MachineConfig::PAPER;
        let trace = conflict_loop_trace(&machine, 50);
        let sys = System::cc_numa()
            .policy(|| Box::<RelocateEverything>::default())
            .build();
        let r = ClusterSimulator::new(machine, sys).run(&trace);
        assert_eq!(r.per_node.iter().map(|n| n.relocations).sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "different machine")]
    fn trace_for_wrong_machine_is_rejected() {
        let machine = MachineConfig::PAPER;
        let trace = TraceBuilder::new("small", mem_trace::Topology::new(1, 1)).build();
        ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
    }

    #[test]
    fn try_run_reports_errors_instead_of_panicking() {
        let machine = MachineConfig::tiny();
        let sim = ClusterSimulator::new(machine, System::cc_numa().build());

        // Wrong processor count.
        let trace = TraceBuilder::new("small", mem_trace::Topology::new(1, 1)).build();
        assert_eq!(
            sim.try_run(&trace),
            Err(TraceError::ProcCountMismatch {
                streams: 1,
                expected: 4
            })
        );

        // Unbalanced lock.
        let mut b = TraceBuilder::new("bad-lock", machine.topology);
        b.unlock(ProcId(0), 3);
        assert!(matches!(
            sim.try_run(&b.build()),
            Err(TraceError::UnbalancedLock {
                proc: ProcId(0),
                lock: 3
            })
        ));

        // Lock id past the dense-table bound: rejected up front (validate)
        // and mid-stream (a corrupt replay file could smuggle one past
        // validation), never allocated.
        let mut b = TraceBuilder::new("huge-lock", machine.topology);
        b.lock(ProcId(0), u32::MAX);
        let trace = b.build();
        assert!(matches!(
            sim.try_run(&trace),
            Err(TraceError::LockIdOutOfRange {
                proc: ProcId(0),
                lock: u32::MAX
            })
        ));
        assert!(matches!(
            sim.try_run_source(&mut trace.source()),
            Err(TraceError::LockIdOutOfRange { .. })
        ));

        // A well-formed trace still runs and matches the panicking shim.
        let mut b = TraceBuilder::new("good", machine.topology);
        b.write(ProcId(0), GlobalAddr(0));
        b.barrier_all();
        b.read(ProcId(2), GlobalAddr(0));
        let trace = b.build();
        let ok = sim.try_run(&trace).expect("valid trace");
        assert_eq!(ok, sim.run(&trace));
    }

    #[test]
    fn run_source_on_a_cursor_matches_run_on_the_trace() {
        let machine = MachineConfig::PAPER;
        let trace = read_shared_trace(&machine, 50);
        let sys = System::cc_numa()
            .with(MigRep::both())
            .with(scaled_thresholds())
            .build();
        let sim = ClusterSimulator::new(machine, sys);
        let materialized = sim.run(&trace);
        let streamed = sim.run_source(&mut trace.source());
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn streamed_barrier_mismatch_is_detected_mid_run() {
        // Per-proc streams whose barrier ids disagree: the up-front validate
        // would catch this; the streaming path must catch it at the episode
        // no matter which arrival carries the divergent id — including the
        // first arrival (a regression here once let a divergent first
        // arrival slip through unchecked).
        let machine = MachineConfig::tiny();
        let topo = machine.topology;
        let sim = ClusterSimulator::new(machine, System::cc_numa().build());
        for divergent in 0..topo.total_procs() {
            let mut per_proc = vec![vec![TraceEvent::Barrier(0)]; topo.total_procs()];
            per_proc[divergent][0] = TraceEvent::Barrier(7);
            let trace = ProgramTrace::new("mismatch", topo, per_proc);
            assert!(
                matches!(
                    sim.try_run_source(&mut trace.source()),
                    Err(TraceError::BarrierMismatch { .. })
                ),
                "divergent barrier on proc {divergent} not detected"
            );
        }
    }

    #[test]
    fn streamed_desync_ends_in_a_deadlock_error() {
        // Processor 0 never reaches the barrier the rest wait at.
        let machine = MachineConfig::tiny();
        let topo = machine.topology;
        let mut per_proc = vec![vec![TraceEvent::Barrier(0)]; topo.total_procs()];
        per_proc[0] = vec![TraceEvent::Compute(5)];
        let trace = ProgramTrace::new("desync", topo, per_proc);
        let sim = ClusterSimulator::new(machine, System::cc_numa().build());
        assert_eq!(
            sim.try_run_source(&mut trace.source()),
            Err(TraceError::Deadlock { blocked: 3 })
        );
    }
}
