//! [`ShardedSimulator`]: one cluster simulation spread across worker
//! threads, bit-identical to the serial [`ClusterSimulator`].
//!
//! # What is sharded, and what is not
//!
//! A shard is a contiguous set of home nodes (a [`ShardMap`] partition)
//! together with everything keyed by them: the processors they host, the
//! trace supply feeding those processors, and — inside the scheduler — the
//! wakeups of those processors.  Two layers split along that boundary:
//!
//! * **Supply** runs on real worker threads: one filtered generator
//!   replica per shard ([`mem_trace::ShardedSource`]) produces each
//!   shard's event streams concurrently with the simulation consuming
//!   them, so trace generation leaves the critical path entirely.
//! * **Scheduling** runs through a [`sim_engine::ShardedScheduler`]: one
//!   deterministic heap per shard, cross-shard wakeups routed through
//!   per-shard-pair queues, popped in the same global `(clock, proc id)`
//!   order as the serial scheduler — provably, not just empirically (see
//!   `sim_engine::shard`'s module docs).
//!
//! The coherence state machine itself is **not** run speculatively in
//! parallel: the protocol applies remote effects at the issuing
//! processor's clock, so the conservative clock window between shards is
//! zero-width and any speculative split would have to replicate the
//! entire directory to stay bit-exact (the zero-lookahead finding in
//! ROADMAP.md).  Determinism is the contract the whole harness stands on
//! — golden fingerprints pin every committed result — so the sharded
//! runner keeps the state machine serial and takes its parallelism where
//! it is free: supply threads plus shard-partitioned scheduling.  The
//! result is bit-identical to the serial path *at any worker count*, which
//! the parity suite checks across the full golden matrix.

use mem_trace::{ShardMap, ShardedSource, StepGenerator, TraceError, TraceSource};
use sim_engine::{ProcScheduler, ShardedScheduler};

use crate::config::{MachineConfig, SystemConfig};
use crate::simulator::{ClusterSimulator, RunState};
use crate::stats::SimResult;

/// Resolve a worker-count request: `0` means auto (one worker per
/// available core, clamped to the node count — a shard owns whole nodes).
pub fn resolve_workers(workers: usize, machine: &MachineConfig) -> usize {
    let nodes = machine.topology.nodes as usize;
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(nodes)
    } else {
        workers.min(nodes)
    }
}

/// A [`ClusterSimulator`] that spreads one simulation across `workers`
/// shards.  `workers == 1` is exactly the serial path; `workers == 0`
/// means auto (available cores).  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardedSimulator {
    inner: ClusterSimulator,
    workers: usize,
}

impl ShardedSimulator {
    /// Create a sharded simulator.  `workers` as in
    /// [`ShardedSimulator::workers`]: `0` = auto, `1` = serial.
    pub fn new(machine: MachineConfig, system: SystemConfig, workers: usize) -> Self {
        ShardedSimulator {
            inner: ClusterSimulator::new(machine, system),
            workers,
        }
    }

    /// Wrap an existing simulator.
    pub fn from_simulator(inner: ClusterSimulator, workers: usize) -> Self {
        ShardedSimulator { inner, workers }
    }

    /// The serial simulator this wraps.
    pub fn simulator(&self) -> &ClusterSimulator {
        &self.inner
    }

    /// The requested worker count (`0` = auto).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The effective worker count: the request resolved against available
    /// cores and clamped to the machine's node count.
    pub fn resolved_workers(&self) -> usize {
        resolve_workers(self.workers, self.inner.machine())
    }

    /// The shard partition a run will use.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.inner.machine().topology, self.resolved_workers())
    }

    /// Run per-shard generator replicas to completion through the sharded
    /// scheduler.  `replicas` must hold one equally constructed generator
    /// per shard of [`ShardedSimulator::shard_map`] (each is filtered to
    /// its shard's processors and runs on its own supply thread).
    ///
    /// # Panics
    /// Panics if the stream is malformed.  Use
    /// [`ShardedSimulator::try_run_replicas`] for the fallible equivalent.
    pub fn run_replicas(&self, name: &str, replicas: Vec<Box<dyn StepGenerator>>) -> SimResult {
        self.try_run_replicas(name, replicas)
            .unwrap_or_else(|e| panic!("malformed trace {name}: {e:?}"))
    }

    /// Fallible [`ShardedSimulator::run_replicas`].
    pub fn try_run_replicas(
        &self,
        name: &str,
        replicas: Vec<Box<dyn StepGenerator>>,
    ) -> Result<SimResult, TraceError> {
        let map = self.shard_map();
        let mut source = ShardedSource::spawn(name, map, replicas);
        self.try_run_source(&mut source)
    }

    /// Run an already sharded (or any other) [`TraceSource`] through the
    /// sharded scheduler.
    ///
    /// # Panics
    /// Panics if the stream is malformed.
    pub fn run_source(&self, source: &mut dyn TraceSource) -> SimResult {
        let name = source.name().to_string();
        self.try_run_source(source)
            // dsm-lint: allow(panic-path, documented infallible wrapper; the sweep path feeds generator-built sharded sources that are well-formed by construction)
            .unwrap_or_else(|e| panic!("malformed trace {name}: {e:?}"))
    }

    /// Fallible [`ShardedSimulator::run_source`].
    pub fn try_run_source(&self, source: &mut dyn TraceSource) -> Result<SimResult, TraceError> {
        let machine = self.inner.machine();
        let streams = source.topology().total_procs();
        let expected = machine.topology.total_procs();
        if streams != expected {
            return Err(TraceError::ProcCountMismatch { streams, expected });
        }
        let workers = self.resolved_workers();
        let mut run = RunState::new(machine, self.inner.system());
        if workers <= 1 {
            // The exact serial path: one heap, no shard bookkeeping.
            let mut queue = ProcScheduler::with_capacity(expected);
            run.execute(source, &mut queue)
        } else {
            let map = ShardMap::new(machine.topology, workers);
            let mut queue = ShardedScheduler::new(map.proc_table(), map.shards());
            run.execute(source, &mut queue)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::System;
    use mem_trace::{GlobalAddr, ProcId, Topology, TraceBuilder};

    fn toy_trace() -> mem_trace::ProgramTrace {
        let topo = Topology::new(4, 2);
        let mut b = TraceBuilder::new("toy", topo).with_think_cycles(5);
        for round in 0u64..8 {
            for p in topo.proc_ids() {
                b.read(p, GlobalAddr(round * 4096));
                b.write(p, GlobalAddr(64 * p.0 as u64 + round * 8192));
            }
            b.barrier_all();
        }
        b.lock(ProcId(3), 0);
        b.unlock(ProcId(3), 0);
        b.build()
    }

    #[test]
    fn sharded_scheduler_matches_serial_result_exactly() {
        let trace = toy_trace();
        let machine = MachineConfig::PAPER.with_topology(trace.topology);
        let system = System::cc_numa().build();
        let serial = ClusterSimulator::new(machine, system.clone()).run(&trace);
        for workers in [1usize, 2, 3, 4, 9] {
            let sim = ShardedSimulator::new(machine, system.clone(), workers);
            let got = sim.run_source(&mut trace.source());
            assert_eq!(got, serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn worker_resolution_clamps_to_nodes() {
        let machine = MachineConfig::PAPER.with_topology(Topology::new(4, 2));
        assert_eq!(resolve_workers(1, &machine), 1);
        assert_eq!(resolve_workers(3, &machine), 3);
        assert_eq!(resolve_workers(64, &machine), 4);
        let auto = resolve_workers(0, &machine);
        assert!((1..=4).contains(&auto), "auto resolved to {auto}");
        let sim = ShardedSimulator::new(machine, System::cc_numa().build(), 0);
        assert_eq!(sim.workers(), 0);
        assert_eq!(sim.resolved_workers(), auto);
        assert_eq!(sim.shard_map().shards() as usize, auto);
    }

    #[test]
    fn proc_count_mismatch_is_reported() {
        let trace = toy_trace();
        let machine = MachineConfig::PAPER.with_topology(Topology::new(2, 2));
        let sim = ShardedSimulator::new(machine, System::cc_numa().build(), 2);
        match sim.try_run_source(&mut trace.source()) {
            Err(TraceError::ProcCountMismatch { streams, expected }) => {
                assert_eq!((streams, expected), (8, 4));
            }
            other => panic!("expected ProcCountMismatch, got {other:?}"),
        }
    }
}
