//! `dsm-core` — the systems studied by Lai & Falsafi (SPAA 2000):
//! CC-NUMA, CC-NUMA with page migration/replication, R-NUMA, and the
//! R-NUMA+MigRep hybrid, together with the cluster simulator that runs
//! shared-memory traces through them.
//!
//! # Overview
//!
//! The paper compares two ways of attacking capacity/conflict remote-miss
//! traffic in a CC-NUMA cluster of SMPs:
//!
//! * **page migration/replication** (`CC-NUMA+MigRep`) — the home node of a
//!   page monitors per-node miss counters and either migrates the page to
//!   its dominant user or replicates a read-shared page into the readers'
//!   local memories;
//! * **fine-grain memory caching** (`R-NUMA`) — each node monitors the
//!   capacity/conflict refetches it performs on a remote page and, past a
//!   threshold, relocates the page into a local S-COMA page cache so that
//!   further misses are satisfied from local memory at block granularity.
//!
//! Each technique is a [`RelocationPolicy`] implementation; the simulator
//! core is policy-agnostic and drives whatever stack of policies the system
//! configuration prescribes.  Systems are composed with the [`System`]
//! builder; see the [`policy`] module for how to plug in a third-party
//! policy.
//!
//! # Quick start
//!
//! ```
//! use dsm_core::{ClusterSimulator, MachineConfig, System};
//! use mem_trace::{GlobalAddr, ProcId, TraceBuilder};
//!
//! // A toy trace: processor 4 (node 1) repeatedly reads two blocks that are
//! // homed on node 0 and conflict in both its processor cache and the
//! // CC-NUMA block cache, producing a stream of capacity/conflict remote
//! // misses that R-NUMA eliminates by relocating the two pages.
//! let machine = MachineConfig::PAPER;
//! let mut b = TraceBuilder::new("toy", machine.topology);
//! b.write(ProcId(0), GlobalAddr(0));
//! b.write(ProcId(0), GlobalAddr(64 * 1024));
//! b.barrier_all();
//! for _ in 0..1000 {
//!     b.read(ProcId(4), GlobalAddr(0));
//!     b.read(ProcId(4), GlobalAddr(64 * 1024)); // conflicting line
//! }
//! b.barrier_all();
//! let trace = b.build();
//!
//! let base = ClusterSimulator::new(machine, System::cc_numa().build()).run(&trace);
//! let rnuma = ClusterSimulator::new(machine, System::r_numa().build()).run(&trace);
//! assert!(rnuma.execution_time < base.execution_time);
//! assert!(rnuma.total_remote_misses() < base.total_remote_misses());
//! ```

pub mod builder;
pub mod config;
pub mod cost;
pub mod migrep;
pub mod node;
pub mod placement;
pub mod policy;
#[cfg(feature = "profile-counters")]
pub mod profile;
pub mod rnuma;
pub mod sharded;
pub mod simulator;
pub mod stats;

pub use builder::{BlockCaching, MigRep, PageCaching, System, SystemBuilder, SystemFeature};
pub use config::{MachineConfig, MigRepConfig, SystemConfig};
pub use cost::{CostModel, Thresholds};
pub use migrep::MigRepEngine;
pub use placement::PagePlacement;
pub use policy::{PageOp, PolicyFactory, PolicyStats, RelocationPolicy};
pub use rnuma::RNumaEngine;
pub use sharded::{resolve_workers, ShardedSimulator};
pub use simulator::ClusterSimulator;
pub use stats::{NodeStats, SimResult};
