//! The page migration/replication engine (CC-NUMA+MigRep, Section 3.1).
//!
//! The home node of every page keeps per-node read- and write-miss counters
//! for the page.  On every cache-fill request it increments the requester's
//! counter and checks two conditions:
//!
//! * **replication** — the page has seen no write misses and the requesting
//!   node's read-miss count exceeds the threshold: the requester receives a
//!   read-only replica;
//! * **migration** — the requesting node's miss count exceeds the current
//!   home's miss count by at least the threshold: the page migrates to the
//!   requester.
//!
//! Counters are reset periodically (the paper uses a 32000-miss interval) so
//! that decisions reflect recent behaviour.  A write to a replicated page
//! anywhere in the cluster forces the page back to a single read-write copy
//! and invalidates every replica.

use crate::config::MigRepConfig;
use crate::cost::Thresholds;
use crate::policy::{PolicyStats, RelocationPolicy};
use mem_trace::{NodeId, PageIdx, PageRef, SharerSet, Slab};
use smp_node::page_table::PageMapping;

pub use crate::policy::PageOp;

#[derive(Debug, Clone, Default)]
struct PageCounters {
    /// Read misses per *remote* requesting node (the home node's cluster
    /// device counts requests it receives from other nodes), indexed by
    /// node; grown to the highest requester seen.
    reads: Slab<u64>,
    /// Write misses per *remote* requesting node, indexed like `reads`.
    writes: Slab<u64>,
    /// Misses by the home node itself (observed on its own memory bus);
    /// used only for the migration comparison against remote requesters.
    home_misses: u64,
    /// Misses to this page since its counters were last reset.
    since_reset: u64,
}

impl PageCounters {
    fn total_of(&self, node: NodeId) -> u64 {
        self.reads.get(node.index()).copied().unwrap_or(0)
            + self.writes.get(node.index()).copied().unwrap_or(0)
    }

    fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

/// The migration/replication policy engine.
#[derive(Debug, Clone)]
pub struct MigRepEngine {
    cfg: MigRepConfig,
    threshold: u64,
    reset_interval: u64,
    counters: Slab<PageCounters>,
    /// Per-page set of nodes holding read-only replicas, indexed by
    /// interned page ([`SharerSet`]: inline word for clusters of up to 64
    /// nodes, boxed bitset beyond).
    replicas: Slab<SharerSet>,
    /// Operations decided but not yet drained by the simulator.
    pending: Vec<PageOp>,
    migrations: u64,
    replications: u64,
    switches_to_rw: u64,
}

impl MigRepEngine {
    /// Create an engine with the given policy switches and thresholds.
    pub fn new(cfg: MigRepConfig, thresholds: Thresholds) -> Self {
        MigRepEngine {
            cfg,
            threshold: thresholds.migrep_threshold,
            reset_interval: thresholds.migrep_reset_interval,
            counters: Slab::new(),
            replicas: Slab::new(),
            pending: Vec::new(),
            migrations: 0,
            replications: 0,
            switches_to_rw: 0,
        }
    }

    /// Record a miss to `page` (currently homed on `home`) issued by
    /// `requester`, and return the page operation the policy wants to
    /// perform, if any.  The caller is responsible for actually carrying it
    /// out (and for then calling [`MigRepEngine::note_migrated`] /
    /// [`MigRepEngine::note_replicated`]).
    pub fn record_miss(
        &mut self,
        page: PageRef,
        home: NodeId,
        requester: NodeId,
        is_write: bool,
    ) -> Option<PageOp> {
        let threshold = self.threshold;
        let reset_interval = self.reset_interval;
        let (already_replica, page_replicated) = match self.replicas.get(page.idx.index()) {
            Some(holders) => (holders.contains(requester.index()), !holders.is_empty()),
            None => (false, false),
        };
        let counters = self.counters.entry(page.idx.index());
        counters.since_reset += 1;
        if requester == home {
            counters.home_misses += 1;
        } else if is_write {
            *counters.writes.entry(requester.index()) += 1;
        } else {
            *counters.reads.entry(requester.index()) += 1;
        }

        let mut decision = None;
        if requester != home {
            // Replication: read-only page, frequent remote reader.
            if self.cfg.replication
                && !is_write
                && !already_replica
                && counters.total_writes() == 0
                && counters.reads.get(requester.index()).copied().unwrap_or(0) >= threshold
            {
                decision = Some(PageOp::Replicate {
                    page,
                    to: requester,
                });
            }

            // Migration: requester misses far more than the home does.
            // Replicated (read-shared) pages are never migration candidates.
            if decision.is_none()
                && self.cfg.migration
                && !page_replicated
                && counters.total_of(requester) >= counters.home_misses + threshold
            {
                decision = Some(PageOp::Migrate {
                    page,
                    to: requester,
                });
            }
        }

        // Periodic reset (the paper resets the miss counters at a preset
        // interval) so that decisions reflect recent behaviour only.
        if counters.since_reset >= reset_interval {
            *counters = PageCounters::default();
        }
        decision
    }

    /// `true` if `page` currently has at least one replica.
    pub fn is_replicated(&self, page: PageIdx) -> bool {
        self.replicas
            .get(page.index())
            .is_some_and(|h| !h.is_empty())
    }

    /// `true` if `node` holds a replica of `page`.
    pub fn holds_replica(&self, page: PageIdx, node: NodeId) -> bool {
        self.replicas
            .get(page.index())
            .is_some_and(|h| h.contains(node.index()))
    }

    /// Nodes holding replicas of `page`, ascending.
    pub fn replica_holders(&self, page: PageIdx) -> Vec<NodeId> {
        self.replicas
            .get(page.index())
            .map(SharerSet::nodes)
            .unwrap_or_default()
    }

    /// Record that a replica of `page` was installed on `node`.
    pub fn note_replicated(&mut self, page: PageIdx, node: NodeId) {
        self.replicas.entry(page.index()).insert(node.index());
        self.replications += 1;
    }

    /// Record that `page` migrated; its counters restart from zero.
    pub fn note_migrated(&mut self, page: PageIdx) {
        if let Some(c) = self.counters.get_mut(page.index()) {
            *c = PageCounters::default();
        }
        self.migrations += 1;
    }

    /// A write hit a replicated page: every replica must be invalidated and
    /// the page switched back to a single read-write copy.  Returns the
    /// nodes whose replicas were dropped.
    pub fn switch_to_read_write(&mut self, page: PageIdx) -> Vec<NodeId> {
        let holders = self.replica_holders(page);
        if !holders.is_empty() {
            self.replicas.entry(page.index()).clear();
            self.switches_to_rw += 1;
            // The sharing pattern changed; restart the page's counters.
            if let Some(c) = self.counters.get_mut(page.index()) {
                *c = PageCounters::default();
            }
        }
        holders
    }

    /// `(migrations, replications, switches back to read-write)`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.migrations, self.replications, self.switches_to_rw)
    }

    /// The policy configuration.
    pub fn config(&self) -> MigRepConfig {
        self.cfg
    }
}

impl RelocationPolicy for MigRepEngine {
    fn name(&self) -> &'static str {
        match (self.cfg.migration, self.cfg.replication) {
            (true, true) => "MigRep",
            (true, false) => "Mig",
            (false, true) => "Rep",
            (false, false) => "MigRep-off",
        }
    }

    /// Nodes holding a replica map faulting pages as replicas instead of
    /// remote CC-NUMA pages.
    fn classify_page(&self, page: PageRef, node: NodeId, home: NodeId) -> Option<PageMapping> {
        if self.holds_replica(page.idx, node) {
            Some(PageMapping::replica(home))
        } else {
            None
        }
    }

    fn on_remote_miss(&mut self, page: PageRef, home: NodeId, requester: NodeId, is_write: bool) {
        if let Some(op) = self.record_miss(page, home, requester, is_write) {
            self.pending.push(op);
        }
    }

    fn drain_ops(&mut self) -> Vec<PageOp> {
        std::mem::take(&mut self.pending)
    }

    fn on_write_to_read_only(&mut self, page: PageRef) -> Vec<NodeId> {
        self.switch_to_read_write(page.idx)
    }

    fn page_is_replicated(&self, page: PageRef) -> bool {
        self.is_replicated(page.idx)
    }

    fn note_op_performed(&mut self, op: &PageOp) {
        match *op {
            PageOp::Replicate { page, to } => self.note_replicated(page.idx, to),
            PageOp::Migrate { page, .. } => self.note_migrated(page.idx),
            PageOp::Relocate { .. } => {}
        }
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            migrations: self.migrations,
            replications: self.replications,
            relocations: 0,
            switches_to_rw: self.switches_to_rw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thresholds(t: u64, reset: u64) -> Thresholds {
        Thresholds {
            migrep_threshold: t,
            migrep_reset_interval: reset,
            rnuma_threshold: 32,
            rnuma_relocation_delay: 0,
        }
    }

    use mem_trace::PageId;

    const PAGE: PageRef = PageRef {
        id: PageId(7),
        idx: PageIdx(7),
    };
    const HOME: NodeId = NodeId(0);
    const REMOTE: NodeId = NodeId(3);

    #[test]
    fn replication_triggers_after_threshold_reads() {
        let mut e = MigRepEngine::new(MigRepConfig::BOTH, thresholds(4, 1_000));
        for _ in 0..3 {
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, false), None);
        }
        assert_eq!(
            e.record_miss(PAGE, HOME, REMOTE, false),
            Some(PageOp::Replicate {
                page: PAGE,
                to: REMOTE
            })
        );
        e.note_replicated(PAGE.idx, REMOTE);
        assert!(e.is_replicated(PAGE.idx));
        assert!(e.holds_replica(PAGE.idx, REMOTE));
        assert_eq!(e.counts(), (0, 1, 0));
        // Once replicated, further reads do not re-trigger replication.
        assert_eq!(e.record_miss(PAGE, HOME, REMOTE, false), None);
    }

    #[test]
    fn write_misses_block_replication() {
        let mut e = MigRepEngine::new(MigRepConfig::REPLICATION_ONLY, thresholds(3, 1_000));
        e.record_miss(PAGE, HOME, REMOTE, true);
        for _ in 0..10 {
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, false), None);
        }
    }

    #[test]
    fn migration_triggers_when_requester_outpaces_home() {
        let mut e = MigRepEngine::new(MigRepConfig::MIGRATION_ONLY, thresholds(5, 1_000));
        // Requester misses repeatedly; home never misses.
        let mut decision = None;
        for _ in 0..5 {
            decision = e.record_miss(PAGE, HOME, REMOTE, true);
        }
        assert_eq!(
            decision,
            Some(PageOp::Migrate {
                page: PAGE,
                to: REMOTE
            })
        );
        e.note_migrated(PAGE.idx);
        assert_eq!(e.counts().0, 1);
    }

    #[test]
    fn home_activity_suppresses_migration() {
        let mut e = MigRepEngine::new(MigRepConfig::MIGRATION_ONLY, thresholds(5, 1_000));
        for _ in 0..20 {
            // Home node itself also misses (local misses recorded with
            // requester == home).
            e.record_miss(PAGE, HOME, HOME, false);
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, false), None);
        }
    }

    #[test]
    fn replication_preferred_over_migration_for_read_only_pages() {
        let mut e = MigRepEngine::new(MigRepConfig::BOTH, thresholds(2, 1_000));
        e.record_miss(PAGE, HOME, REMOTE, false);
        let d = e.record_miss(PAGE, HOME, REMOTE, false);
        assert_eq!(
            d,
            Some(PageOp::Replicate {
                page: PAGE,
                to: REMOTE
            })
        );
    }

    #[test]
    fn counters_reset_after_interval() {
        let mut e = MigRepEngine::new(MigRepConfig::MIGRATION_ONLY, thresholds(10, 8));
        // 8 misses -> counters reset before reaching the threshold of 10, so
        // no migration ever fires even after many misses.
        for _ in 0..100 {
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, true), None);
        }
    }

    #[test]
    fn switch_to_read_write_drops_all_replicas() {
        let mut e = MigRepEngine::new(MigRepConfig::BOTH, thresholds(1, 1_000));
        e.note_replicated(PAGE.idx, NodeId(1));
        e.note_replicated(PAGE.idx, NodeId(4));
        let dropped = e.switch_to_read_write(PAGE.idx);
        assert_eq!(dropped, vec![NodeId(1), NodeId(4)]);
        assert!(!e.is_replicated(PAGE.idx));
        assert_eq!(e.counts().2, 1);
        // Idempotent.
        assert!(e.switch_to_read_write(PAGE.idx).is_empty());
    }

    #[test]
    fn local_misses_never_trigger_page_ops() {
        let mut e = MigRepEngine::new(MigRepConfig::BOTH, thresholds(1, 1_000));
        for _ in 0..50 {
            assert_eq!(e.record_miss(PAGE, HOME, HOME, false), None);
        }
    }

    #[test]
    fn disabled_engine_never_decides() {
        let off = MigRepConfig {
            migration: false,
            replication: false,
        };
        let mut e = MigRepEngine::new(off, thresholds(1, 1_000));
        for _ in 0..10 {
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, false), None);
            assert_eq!(e.record_miss(PAGE, HOME, REMOTE, true), None);
        }
    }
}
