//! First-touch page placement and home-node tracking.
//!
//! All systems in the paper start from the same "first-touch" placement
//! policy: at the start of the parallel phase, the first node to request a
//! page becomes its home.  Page migration later *changes* the home; this
//! module is the single source of truth for "where does page P live right
//! now".
//!
//! Homes are a dense slab over interned [`PageIdx`]es — the home lookup on
//! every miss is a single array access.

use mem_trace::{NodeId, PageIdx, Slab};

/// Tracks the home node of every shared page.
#[derive(Debug, Clone, Default)]
pub struct PagePlacement {
    homes: Slab<Option<NodeId>>,
    placed: usize,
    first_touches: u64,
    migrations: u64,
}

impl PagePlacement {
    /// An empty placement (no page has been touched yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The home of `page`, if it has been placed.
    #[inline]
    pub fn home_of(&self, page: PageIdx) -> Option<NodeId> {
        self.homes.get(page.index()).copied().flatten()
    }

    /// `true` if `page` has been placed.
    pub fn is_placed(&self, page: PageIdx) -> bool {
        self.home_of(page).is_some()
    }

    /// Place `page` on first touch by `node`; returns the page's home (the
    /// toucher if this really was the first touch, the existing home
    /// otherwise).
    pub fn first_touch(&mut self, page: PageIdx, node: NodeId) -> NodeId {
        let slot = self.homes.entry(page.index());
        match slot {
            Some(home) => *home,
            None => {
                *slot = Some(node);
                self.placed += 1;
                self.first_touches += 1;
                node
            }
        }
    }

    /// Migrate `page` to a new home.  Returns the previous home.
    ///
    /// # Panics
    /// Panics if the page has never been placed (migration of an untouched
    /// page is a policy bug).
    pub fn migrate(&mut self, page: PageIdx, new_home: NodeId) -> NodeId {
        let slot = self
            .homes
            .get_mut(page.index())
            .and_then(Option::as_mut)
            // dsm-lint: allow(panic-path, the relocation engine only migrates pages it has already placed — a touch precedes every migration decision; an unplaced page is a policy bug worth a loud stop)
            .expect("migrating a page that was never placed");
        let old = *slot;
        *slot = new_home;
        self.migrations += 1;
        old
    }

    /// Number of pages placed so far.
    pub fn pages_placed(&self) -> usize {
        self.placed
    }

    /// Number of pages currently homed on `node`.
    pub fn pages_homed_on(&self, node: NodeId) -> usize {
        self.homes.iter().filter(|h| **h == Some(node)).count()
    }

    /// `(first touches, migrations)` performed so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.first_touches, self.migrations)
    }

    /// Iterate over all placements.
    pub fn iter(&self) -> impl Iterator<Item = (PageIdx, NodeId)> + '_ {
        self.homes
            .iter_enumerated()
            .filter_map(|(i, h)| h.map(|n| (PageIdx(i as u32), n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_assigns_home_once() {
        let mut p = PagePlacement::new();
        assert!(!p.is_placed(PageIdx(1)));
        assert_eq!(p.first_touch(PageIdx(1), NodeId(3)), NodeId(3));
        // Second toucher does not steal the page.
        assert_eq!(p.first_touch(PageIdx(1), NodeId(5)), NodeId(3));
        assert_eq!(p.home_of(PageIdx(1)), Some(NodeId(3)));
        assert_eq!(p.counters(), (1, 0));
    }

    #[test]
    fn migration_changes_home() {
        let mut p = PagePlacement::new();
        p.first_touch(PageIdx(2), NodeId(0));
        let old = p.migrate(PageIdx(2), NodeId(6));
        assert_eq!(old, NodeId(0));
        assert_eq!(p.home_of(PageIdx(2)), Some(NodeId(6)));
        assert_eq!(p.counters(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn migrating_unplaced_page_panics() {
        PagePlacement::new().migrate(PageIdx(9), NodeId(0));
    }

    #[test]
    fn per_node_page_counts() {
        let mut p = PagePlacement::new();
        p.first_touch(PageIdx(0), NodeId(0));
        p.first_touch(PageIdx(1), NodeId(0));
        p.first_touch(PageIdx(2), NodeId(1));
        assert_eq!(p.pages_placed(), 3);
        assert_eq!(p.pages_homed_on(NodeId(0)), 2);
        assert_eq!(p.pages_homed_on(NodeId(1)), 1);
        assert_eq!(p.pages_homed_on(NodeId(7)), 0);
        assert_eq!(p.iter().count(), 3);
    }
}
