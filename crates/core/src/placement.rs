//! First-touch page placement and home-node tracking.
//!
//! All systems in the paper start from the same "first-touch" placement
//! policy: at the start of the parallel phase, the first node to request a
//! page becomes its home.  Page migration later *changes* the home; this
//! module is the single source of truth for "where does page P live right
//! now".

use mem_trace::{NodeId, PageId};
use std::collections::HashMap;

/// Tracks the home node of every shared page.
#[derive(Debug, Clone, Default)]
pub struct PagePlacement {
    homes: HashMap<PageId, NodeId>,
    first_touches: u64,
    migrations: u64,
}

impl PagePlacement {
    /// An empty placement (no page has been touched yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The home of `page`, if it has been placed.
    pub fn home_of(&self, page: PageId) -> Option<NodeId> {
        self.homes.get(&page).copied()
    }

    /// `true` if `page` has been placed.
    pub fn is_placed(&self, page: PageId) -> bool {
        self.homes.contains_key(&page)
    }

    /// Place `page` on first touch by `node`; returns the page's home (the
    /// toucher if this really was the first touch, the existing home
    /// otherwise).
    pub fn first_touch(&mut self, page: PageId, node: NodeId) -> NodeId {
        match self.homes.get(&page) {
            Some(home) => *home,
            None => {
                self.homes.insert(page, node);
                self.first_touches += 1;
                node
            }
        }
    }

    /// Migrate `page` to a new home.  Returns the previous home.
    ///
    /// # Panics
    /// Panics if the page has never been placed (migration of an untouched
    /// page is a policy bug).
    pub fn migrate(&mut self, page: PageId, new_home: NodeId) -> NodeId {
        let old = self
            .homes
            .insert(page, new_home)
            .expect("migrating a page that was never placed");
        self.migrations += 1;
        old
    }

    /// Number of pages placed so far.
    pub fn pages_placed(&self) -> usize {
        self.homes.len()
    }

    /// Number of pages currently homed on `node`.
    pub fn pages_homed_on(&self, node: NodeId) -> usize {
        self.homes.values().filter(|h| **h == node).count()
    }

    /// `(first touches, migrations)` performed so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.first_touches, self.migrations)
    }

    /// Iterate over all placements.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, NodeId)> + '_ {
        self.homes.iter().map(|(p, n)| (*p, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_assigns_home_once() {
        let mut p = PagePlacement::new();
        assert!(!p.is_placed(PageId(1)));
        assert_eq!(p.first_touch(PageId(1), NodeId(3)), NodeId(3));
        // Second toucher does not steal the page.
        assert_eq!(p.first_touch(PageId(1), NodeId(5)), NodeId(3));
        assert_eq!(p.home_of(PageId(1)), Some(NodeId(3)));
        assert_eq!(p.counters(), (1, 0));
    }

    #[test]
    fn migration_changes_home() {
        let mut p = PagePlacement::new();
        p.first_touch(PageId(2), NodeId(0));
        let old = p.migrate(PageId(2), NodeId(6));
        assert_eq!(old, NodeId(0));
        assert_eq!(p.home_of(PageId(2)), Some(NodeId(6)));
        assert_eq!(p.counters(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn migrating_unplaced_page_panics() {
        PagePlacement::new().migrate(PageId(9), NodeId(0));
    }

    #[test]
    fn per_node_page_counts() {
        let mut p = PagePlacement::new();
        p.first_touch(PageId(0), NodeId(0));
        p.first_touch(PageId(1), NodeId(0));
        p.first_touch(PageId(2), NodeId(1));
        assert_eq!(p.pages_placed(), 3);
        assert_eq!(p.pages_homed_on(NodeId(0)), 2);
        assert_eq!(p.pages_homed_on(NodeId(1)), 1);
        assert_eq!(p.pages_homed_on(NodeId(7)), 0);
        assert_eq!(p.iter().count(), 3);
    }
}
