//! Machine and system configuration: which of the paper's systems to build.
//!
//! A *machine* configuration fixes the cluster topology and the processor
//! caches (identical for every system compared in a figure).  A *system*
//! configuration selects the caching/page-operation technique under study:
//! plain CC-NUMA (finite or perfect block cache), CC-NUMA with page
//! migration and/or replication, R-NUMA with a finite or infinite page
//! cache, or the R-NUMA+MigRep hybrid of Section 6.4.

use crate::cost::{CostModel, Thresholds};
use dsm_protocol::{BlockCacheConfig, PageCacheConfig};
use mem_trace::Topology;
use smp_node::CacheConfig;

/// Hardware common to every system in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cluster topology (nodes x processors per node).
    pub topology: Topology,
    /// Per-processor data cache.
    pub l1: CacheConfig,
}

impl MachineConfig {
    /// The paper's machine: 8 nodes x 4 processors, 16-KB direct-mapped L1s.
    pub const PAPER: MachineConfig = MachineConfig {
        topology: Topology::PAPER,
        l1: CacheConfig::PAPER_L1,
    };

    /// A small machine for unit tests (2 nodes x 2 processors, 4-KB L1s).
    pub fn tiny() -> Self {
        MachineConfig {
            topology: Topology::new(2, 2),
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                block_bytes: mem_trace::BLOCK_SIZE,
            },
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Page migration/replication policy switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigRepConfig {
    /// Enable page migration.
    pub migration: bool,
    /// Enable page replication.
    pub replication: bool,
}

impl MigRepConfig {
    /// Both migration and replication (the paper's "MigRep").
    pub const BOTH: MigRepConfig = MigRepConfig {
        migration: true,
        replication: true,
    };
    /// Migration only ("Mig").
    pub const MIGRATION_ONLY: MigRepConfig = MigRepConfig {
        migration: true,
        replication: false,
    };
    /// Replication only ("Rep").
    pub const REPLICATION_ONLY: MigRepConfig = MigRepConfig {
        migration: false,
        replication: true,
    };
}

/// A complete system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name used in reports ("CC-NUMA", "R-NUMA", ...).
    pub name: String,
    /// The SRAM block cache of the cluster device, if the system has one.
    /// R-NUMA systems omit it (the page cache subsumes it).
    pub block_cache: Option<BlockCacheConfig>,
    /// The S-COMA page cache, if the system supports fine-grain memory
    /// caching (R-NUMA variants only).
    pub page_cache: Option<PageCacheConfig>,
    /// Page migration/replication support, if enabled.
    pub migrep: Option<MigRepConfig>,
    /// Cost model (Table 3 base or the slow variant).
    pub costs: CostModel,
    /// Policy thresholds.
    pub thresholds: Thresholds,
}

impl SystemConfig {
    /// Base CC-NUMA with the paper's 64-KB block cache.
    pub fn cc_numa() -> Self {
        SystemConfig {
            name: "CC-NUMA".to_string(),
            block_cache: Some(BlockCacheConfig::PAPER),
            page_cache: None,
            migrep: None,
            costs: CostModel::base(),
            thresholds: Thresholds::paper_fast(),
        }
    }

    /// Perfect CC-NUMA: an infinite block cache.  Every figure in the paper
    /// is normalized against this system.
    pub fn perfect_cc_numa() -> Self {
        SystemConfig {
            name: "Perfect-CC-NUMA".to_string(),
            block_cache: Some(BlockCacheConfig::Infinite),
            ..Self::cc_numa()
        }
    }

    /// CC-NUMA with page replication only ("Rep").
    pub fn cc_numa_rep() -> Self {
        SystemConfig {
            name: "Rep".to_string(),
            migrep: Some(MigRepConfig::REPLICATION_ONLY),
            ..Self::cc_numa()
        }
    }

    /// CC-NUMA with page migration only ("Mig").
    pub fn cc_numa_mig() -> Self {
        SystemConfig {
            name: "Mig".to_string(),
            migrep: Some(MigRepConfig::MIGRATION_ONLY),
            ..Self::cc_numa()
        }
    }

    /// CC-NUMA with both page migration and replication ("MigRep").
    pub fn cc_numa_migrep() -> Self {
        SystemConfig {
            name: "MigRep".to_string(),
            migrep: Some(MigRepConfig::BOTH),
            ..Self::cc_numa()
        }
    }

    /// R-NUMA with the given page cache (no block cache).
    pub fn r_numa_with(page_cache: PageCacheConfig) -> Self {
        SystemConfig {
            name: "R-NUMA".to_string(),
            block_cache: None,
            page_cache: Some(page_cache),
            migrep: None,
            costs: CostModel::base(),
            thresholds: Thresholds::paper_fast(),
        }
    }

    /// R-NUMA with the paper's base 2.4-MB page cache.
    pub fn r_numa() -> Self {
        Self::r_numa_with(PageCacheConfig::PAPER)
    }

    /// R-NUMA with an infinite page cache ("R-NUMA-Inf").
    pub fn r_numa_inf() -> Self {
        SystemConfig {
            name: "R-NUMA-Inf".to_string(),
            ..Self::r_numa_with(PageCacheConfig::Infinite)
        }
    }

    /// R-NUMA with half the base page cache ("R-NUMA-1/2", Section 6.4).
    pub fn r_numa_half() -> Self {
        SystemConfig {
            name: "R-NUMA-1/2".to_string(),
            ..Self::r_numa_with(PageCacheConfig::PAPER_HALF)
        }
    }

    /// The R-NUMA+MigRep hybrid of Section 6.4: R-NUMA with half the page
    /// cache, page migration/replication enabled, and relocation delayed
    /// until a page has seen `relocation_delay` misses.
    pub fn r_numa_migrep(page_cache: PageCacheConfig, relocation_delay: u64) -> Self {
        SystemConfig {
            name: "R-NUMA-1/2+MigRep".to_string(),
            block_cache: None,
            page_cache: Some(page_cache),
            migrep: Some(MigRepConfig::BOTH),
            costs: CostModel::base(),
            thresholds: Thresholds::paper_fast().with_relocation_delay(relocation_delay),
        }
    }

    /// Replace the cost model (e.g. [`CostModel::slow`]).
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Replace the thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Rename the configuration (for reporting variants).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// `true` if this system performs fine-grain memory caching (has a page
    /// cache).
    pub fn is_rnuma(&self) -> bool {
        self.page_cache.is_some()
    }

    /// `true` if this system performs page migration and/or replication.
    pub fn has_migrep(&self) -> bool {
        self.migrep.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_numa_variants_share_the_block_cache() {
        for cfg in [
            SystemConfig::cc_numa(),
            SystemConfig::cc_numa_rep(),
            SystemConfig::cc_numa_mig(),
            SystemConfig::cc_numa_migrep(),
        ] {
            assert_eq!(cfg.block_cache, Some(BlockCacheConfig::PAPER));
            assert!(cfg.page_cache.is_none());
            assert!(!cfg.is_rnuma());
        }
        assert!(!SystemConfig::cc_numa().has_migrep());
        assert!(SystemConfig::cc_numa_migrep().has_migrep());
        assert_eq!(
            SystemConfig::cc_numa_rep().migrep,
            Some(MigRepConfig::REPLICATION_ONLY)
        );
        assert_eq!(
            SystemConfig::cc_numa_mig().migrep,
            Some(MigRepConfig::MIGRATION_ONLY)
        );
    }

    #[test]
    fn perfect_cc_numa_has_infinite_block_cache() {
        let cfg = SystemConfig::perfect_cc_numa();
        assert_eq!(cfg.block_cache, Some(BlockCacheConfig::Infinite));
    }

    #[test]
    fn r_numa_variants_have_no_block_cache() {
        for cfg in [
            SystemConfig::r_numa(),
            SystemConfig::r_numa_inf(),
            SystemConfig::r_numa_half(),
        ] {
            assert!(cfg.block_cache.is_none());
            assert!(cfg.is_rnuma());
            assert!(!cfg.has_migrep());
        }
        assert_eq!(
            SystemConfig::r_numa().page_cache,
            Some(PageCacheConfig::PAPER)
        );
        assert_eq!(
            SystemConfig::r_numa_half().page_cache,
            Some(PageCacheConfig::PAPER_HALF)
        );
        assert_eq!(
            SystemConfig::r_numa_inf().page_cache,
            Some(PageCacheConfig::Infinite)
        );
    }

    #[test]
    fn hybrid_has_both_mechanisms_and_a_delay() {
        let cfg = SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 32_000);
        assert!(cfg.is_rnuma());
        assert!(cfg.has_migrep());
        assert_eq!(cfg.thresholds.rnuma_relocation_delay, 32_000);
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::cc_numa_migrep()
            .with_costs(CostModel::slow())
            .with_thresholds(Thresholds::paper_slow())
            .named("MigRep-Slow");
        assert_eq!(cfg.name, "MigRep-Slow");
        assert_eq!(cfg.costs, CostModel::slow());
        assert_eq!(cfg.thresholds.migrep_threshold, 1200);
    }

    #[test]
    fn machine_configs() {
        assert_eq!(MachineConfig::PAPER.topology.total_procs(), 32);
        assert_eq!(MachineConfig::PAPER.l1.size_bytes, 16 * 1024);
        let tiny = MachineConfig::tiny();
        assert_eq!(tiny.topology.total_procs(), 4);
    }
}
