//! Machine and system configuration: which of the paper's systems to build.
//!
//! A *machine* configuration fixes the cluster topology and the processor
//! caches (identical for every system compared in a figure).  A *system*
//! configuration selects the caching/page-operation technique under study:
//! plain CC-NUMA (finite or perfect block cache), CC-NUMA with page
//! migration and/or replication, R-NUMA with a finite or infinite page
//! cache, or the R-NUMA+MigRep hybrid of Section 6.4.

use crate::builder::{MigRep, PageCaching, System};
use crate::cost::{CostModel, Thresholds};
use crate::policy::PolicyFactory;
use dsm_protocol::{BlockCacheConfig, PageCacheConfig};
use mem_trace::Topology;
use smp_node::CacheConfig;

/// Hardware common to every system in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cluster topology (nodes x processors per node).
    pub topology: Topology,
    /// Per-processor data cache.
    pub l1: CacheConfig,
}

impl MachineConfig {
    /// The paper's machine: 8 nodes x 4 processors, 16-KB direct-mapped L1s.
    pub const PAPER: MachineConfig = MachineConfig {
        topology: Topology::PAPER,
        l1: CacheConfig::PAPER_L1,
    };

    /// A small machine for unit tests (2 nodes x 2 processors, 4-KB L1s).
    pub fn tiny() -> Self {
        MachineConfig {
            topology: Topology::new(2, 2),
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                block_bytes: mem_trace::BLOCK_SIZE,
            },
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Page migration/replication policy switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigRepConfig {
    /// Enable page migration.
    pub migration: bool,
    /// Enable page replication.
    pub replication: bool,
}

impl MigRepConfig {
    /// Both migration and replication (the paper's "MigRep").
    pub const BOTH: MigRepConfig = MigRepConfig {
        migration: true,
        replication: true,
    };
    /// Migration only ("Mig").
    pub const MIGRATION_ONLY: MigRepConfig = MigRepConfig {
        migration: true,
        replication: false,
    };
    /// Replication only ("Rep").
    pub const REPLICATION_ONLY: MigRepConfig = MigRepConfig {
        migration: false,
        replication: true,
    };
}

/// A complete system configuration.
///
/// Built with the [`System`] / [`SystemBuilder`](crate::SystemBuilder)
/// API; the inherent constructors below are deprecated shims kept so that
/// old-vs-new parity can be proven test-for-test.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name used in reports ("CC-NUMA", "R-NUMA", ...).
    pub name: String,
    /// The SRAM block cache of the cluster device, if the system has one.
    /// R-NUMA systems omit it (the page cache subsumes it).
    pub block_cache: Option<BlockCacheConfig>,
    /// The S-COMA page cache, if the system supports fine-grain memory
    /// caching (R-NUMA variants only).
    pub page_cache: Option<PageCacheConfig>,
    /// Page migration/replication support, if enabled.
    pub migrep: Option<MigRepConfig>,
    /// Cost model (Table 3 base or the slow variant).
    pub costs: CostModel,
    /// Policy thresholds.
    pub thresholds: Thresholds,
    /// Third-party relocation policies registered through
    /// [`SystemBuilder::policy`](crate::SystemBuilder::policy), instantiated
    /// fresh for every simulation run.
    pub extra_policies: Vec<PolicyFactory>,
}

impl SystemConfig {
    /// Base CC-NUMA with the paper's 64-KB block cache.
    #[deprecated(since = "0.1.0", note = "use `System::cc_numa().build()`")]
    pub fn cc_numa() -> Self {
        System::cc_numa().build()
    }

    /// Perfect CC-NUMA: an infinite block cache.  Every figure in the paper
    /// is normalized against this system.
    #[deprecated(since = "0.1.0", note = "use `System::perfect_cc_numa().build()`")]
    pub fn perfect_cc_numa() -> Self {
        System::perfect_cc_numa().build()
    }

    /// CC-NUMA with page replication only ("Rep").
    #[deprecated(
        since = "0.1.0",
        note = "use `System::cc_numa().with(MigRep::replication_only()).build()`"
    )]
    pub fn cc_numa_rep() -> Self {
        System::cc_numa().with(MigRep::replication_only()).build()
    }

    /// CC-NUMA with page migration only ("Mig").
    #[deprecated(
        since = "0.1.0",
        note = "use `System::cc_numa().with(MigRep::migration_only()).build()`"
    )]
    pub fn cc_numa_mig() -> Self {
        System::cc_numa().with(MigRep::migration_only()).build()
    }

    /// CC-NUMA with both page migration and replication ("MigRep").
    #[deprecated(
        since = "0.1.0",
        note = "use `System::cc_numa().with(MigRep::both()).build()`"
    )]
    pub fn cc_numa_migrep() -> Self {
        System::cc_numa().with(MigRep::both()).build()
    }

    /// R-NUMA with the given page cache (no block cache).
    #[deprecated(
        since = "0.1.0",
        note = "use `System::r_numa().with(PageCaching::config(..)).build()`"
    )]
    pub fn r_numa_with(page_cache: PageCacheConfig) -> Self {
        System::r_numa()
            .with(PageCaching::config(page_cache))
            .named("R-NUMA")
            .build()
    }

    /// R-NUMA with the paper's base 2.4-MB page cache.
    #[deprecated(since = "0.1.0", note = "use `System::r_numa().build()`")]
    pub fn r_numa() -> Self {
        System::r_numa().build()
    }

    /// R-NUMA with an infinite page cache ("R-NUMA-Inf").
    #[deprecated(
        since = "0.1.0",
        note = "use `System::r_numa().with(PageCaching::infinite()).build()`"
    )]
    pub fn r_numa_inf() -> Self {
        System::r_numa().with(PageCaching::infinite()).build()
    }

    /// R-NUMA with half the base page cache ("R-NUMA-1/2", Section 6.4).
    #[deprecated(
        since = "0.1.0",
        note = "use `System::r_numa().with(PageCaching::half()).build()`"
    )]
    pub fn r_numa_half() -> Self {
        System::r_numa().with(PageCaching::half()).build()
    }

    /// The R-NUMA+MigRep hybrid of Section 6.4: R-NUMA with half the page
    /// cache, page migration/replication enabled, and relocation delayed
    /// until a page has seen `relocation_delay` misses.
    #[deprecated(
        since = "0.1.0",
        note = "use `System::r_numa().with(PageCaching::half()).with(MigRep::both()).relocation_delay(..).build()`"
    )]
    pub fn r_numa_migrep(page_cache: PageCacheConfig, relocation_delay: u64) -> Self {
        System::r_numa()
            .with(PageCaching::config(page_cache))
            .with(MigRep::both())
            .relocation_delay(relocation_delay)
            .named("R-NUMA-1/2+MigRep")
            .build()
    }

    /// Replace the cost model (e.g. [`CostModel::slow`]).
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Replace the thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Rename the configuration (for reporting variants).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// `true` if this system performs fine-grain memory caching (has a page
    /// cache).
    pub fn is_rnuma(&self) -> bool {
        self.page_cache.is_some()
    }

    /// `true` if this system performs page migration and/or replication.
    pub fn has_migrep(&self) -> bool {
        self.migrep.is_some()
    }
}

#[cfg(test)]
// The deprecated constructors are exercised deliberately: they are the
// compatibility shims whose behaviour the builder must reproduce.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::builder::PageCaching;

    #[test]
    fn shims_reproduce_the_builder_output() {
        assert_eq!(SystemConfig::cc_numa(), System::cc_numa().build());
        assert_eq!(
            SystemConfig::perfect_cc_numa(),
            System::perfect_cc_numa().build()
        );
        assert_eq!(
            SystemConfig::cc_numa_migrep(),
            System::cc_numa().with(MigRep::both()).build()
        );
        assert_eq!(SystemConfig::r_numa(), System::r_numa().build());
        assert_eq!(
            SystemConfig::r_numa_half(),
            System::r_numa().with(PageCaching::half()).build()
        );
        assert_eq!(
            SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 32_000),
            System::r_numa()
                .with(PageCaching::half())
                .with(MigRep::both())
                .relocation_delay(32_000)
                .build()
        );
    }

    #[test]
    fn cc_numa_variants_share_the_block_cache() {
        for cfg in [
            SystemConfig::cc_numa(),
            SystemConfig::cc_numa_rep(),
            SystemConfig::cc_numa_mig(),
            SystemConfig::cc_numa_migrep(),
        ] {
            assert_eq!(cfg.block_cache, Some(BlockCacheConfig::PAPER));
            assert!(cfg.page_cache.is_none());
            assert!(!cfg.is_rnuma());
        }
        assert!(!SystemConfig::cc_numa().has_migrep());
        assert!(SystemConfig::cc_numa_migrep().has_migrep());
        assert_eq!(
            SystemConfig::cc_numa_rep().migrep,
            Some(MigRepConfig::REPLICATION_ONLY)
        );
        assert_eq!(
            SystemConfig::cc_numa_mig().migrep,
            Some(MigRepConfig::MIGRATION_ONLY)
        );
    }

    #[test]
    fn perfect_cc_numa_has_infinite_block_cache() {
        let cfg = SystemConfig::perfect_cc_numa();
        assert_eq!(cfg.block_cache, Some(BlockCacheConfig::Infinite));
    }

    #[test]
    fn r_numa_variants_have_no_block_cache() {
        for cfg in [
            SystemConfig::r_numa(),
            SystemConfig::r_numa_inf(),
            SystemConfig::r_numa_half(),
        ] {
            assert!(cfg.block_cache.is_none());
            assert!(cfg.is_rnuma());
            assert!(!cfg.has_migrep());
        }
        assert_eq!(
            SystemConfig::r_numa().page_cache,
            Some(PageCacheConfig::PAPER)
        );
        assert_eq!(
            SystemConfig::r_numa_half().page_cache,
            Some(PageCacheConfig::PAPER_HALF)
        );
        assert_eq!(
            SystemConfig::r_numa_inf().page_cache,
            Some(PageCacheConfig::Infinite)
        );
    }

    #[test]
    fn hybrid_has_both_mechanisms_and_a_delay() {
        let cfg = SystemConfig::r_numa_migrep(PageCacheConfig::PAPER_HALF, 32_000);
        assert!(cfg.is_rnuma());
        assert!(cfg.has_migrep());
        assert_eq!(cfg.thresholds.rnuma_relocation_delay, 32_000);
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::cc_numa_migrep()
            .with_costs(CostModel::slow())
            .with_thresholds(Thresholds::paper_slow())
            .named("MigRep-Slow");
        assert_eq!(cfg.name, "MigRep-Slow");
        assert_eq!(cfg.costs, CostModel::slow());
        assert_eq!(cfg.thresholds.migrep_threshold, 1200);
    }

    #[test]
    fn machine_configs() {
        assert_eq!(MachineConfig::PAPER.topology.total_procs(), 32);
        assert_eq!(MachineConfig::PAPER.l1.size_bytes, 16 * 1024);
        let tiny = MachineConfig::tiny();
        assert_eq!(tiny.topology.total_procs(), 4);
    }
}
