//! Machine and system configuration: which of the paper's systems to build.
//!
//! A *machine* configuration fixes the cluster topology and the processor
//! caches (identical for every system compared in a figure).  A *system*
//! configuration selects the caching/page-operation technique under study:
//! plain CC-NUMA (finite or perfect block cache), CC-NUMA with page
//! migration and/or replication, R-NUMA with a finite or infinite page
//! cache, or the R-NUMA+MigRep hybrid of Section 6.4.

use crate::cost::{CostModel, Thresholds};
use crate::policy::PolicyFactory;
use dsm_protocol::{BlockCacheConfig, PageCacheConfig};
use mem_trace::{Geometry, Topology};
use smp_node::CacheConfig;

/// Hardware common to every system in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cluster topology (nodes x processors per node).
    pub topology: Topology,
    /// Address-space geometry (page and cache-block sizes).  Traces carry
    /// byte addresses, so the same trace sweeps across geometries.
    pub geometry: Geometry,
    /// Per-processor data cache.
    pub l1: CacheConfig,
}

impl MachineConfig {
    /// The paper's machine: 8 nodes x 4 processors, 4-KB pages, 64-byte
    /// blocks, 16-KB direct-mapped L1s.
    pub const PAPER: MachineConfig = MachineConfig {
        topology: Topology::PAPER,
        geometry: Geometry::PAPER,
        l1: CacheConfig::PAPER_L1,
    };

    /// A small machine for unit tests (2 nodes x 2 processors, 4-KB L1s).
    pub fn tiny() -> Self {
        MachineConfig {
            topology: Topology::new(2, 2),
            geometry: Geometry::PAPER,
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                block_bytes: mem_trace::BLOCK_SIZE,
            },
        }
    }

    /// Replace the cluster topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the address-space geometry.  The L1's line size follows the
    /// geometry's block size (coherence and cache lines are the same unit in
    /// this model).
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self.l1.block_bytes = geometry.block_bytes;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Page migration/replication policy switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigRepConfig {
    /// Enable page migration.
    pub migration: bool,
    /// Enable page replication.
    pub replication: bool,
}

impl MigRepConfig {
    /// Both migration and replication (the paper's "MigRep").
    pub const BOTH: MigRepConfig = MigRepConfig {
        migration: true,
        replication: true,
    };
    /// Migration only ("Mig").
    pub const MIGRATION_ONLY: MigRepConfig = MigRepConfig {
        migration: true,
        replication: false,
    };
    /// Replication only ("Rep").
    pub const REPLICATION_ONLY: MigRepConfig = MigRepConfig {
        migration: false,
        replication: true,
    };
}

/// A complete system configuration.
///
/// Built with the [`System`](crate::System) /
/// [`SystemBuilder`](crate::SystemBuilder) API.  (The deprecated
/// `SystemConfig::*` constructors are gone; the behaviour they pinned is
/// now guarded by the golden-snapshot parity tests in
/// `tests/api_parity.rs`.)
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name used in reports ("CC-NUMA", "R-NUMA", ...).
    pub name: String,
    /// The SRAM block cache of the cluster device, if the system has one.
    /// R-NUMA systems omit it (the page cache subsumes it).
    pub block_cache: Option<BlockCacheConfig>,
    /// The S-COMA page cache, if the system supports fine-grain memory
    /// caching (R-NUMA variants only).
    pub page_cache: Option<PageCacheConfig>,
    /// Page migration/replication support, if enabled.
    pub migrep: Option<MigRepConfig>,
    /// Cost model (Table 3 base or the slow variant).
    pub costs: CostModel,
    /// Policy thresholds.
    pub thresholds: Thresholds,
    /// Third-party relocation policies registered through
    /// [`SystemBuilder::policy`](crate::SystemBuilder::policy), instantiated
    /// fresh for every simulation run.
    pub extra_policies: Vec<PolicyFactory>,
}

impl SystemConfig {
    /// Replace the cost model (e.g. [`CostModel::slow`]).
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Replace the thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Rename the configuration (for reporting variants).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// `true` if this system performs fine-grain memory caching (has a page
    /// cache).
    pub fn is_rnuma(&self) -> bool {
        self.page_cache.is_some()
    }

    /// `true` if this system performs page migration and/or replication.
    pub fn has_migrep(&self) -> bool {
        self.migrep.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MigRep, PageCaching, System};

    #[test]
    fn cc_numa_variants_share_the_block_cache() {
        for cfg in [
            System::cc_numa().build(),
            System::cc_numa().with(MigRep::replication_only()).build(),
            System::cc_numa().with(MigRep::migration_only()).build(),
            System::cc_numa().with(MigRep::both()).build(),
        ] {
            assert_eq!(cfg.block_cache, Some(BlockCacheConfig::PAPER));
            assert!(cfg.page_cache.is_none());
            assert!(!cfg.is_rnuma());
        }
        assert!(!System::cc_numa().build().has_migrep());
        assert!(System::cc_numa().with(MigRep::both()).build().has_migrep());
        assert_eq!(
            System::cc_numa()
                .with(MigRep::replication_only())
                .build()
                .migrep,
            Some(MigRepConfig::REPLICATION_ONLY)
        );
        assert_eq!(
            System::cc_numa()
                .with(MigRep::migration_only())
                .build()
                .migrep,
            Some(MigRepConfig::MIGRATION_ONLY)
        );
    }

    #[test]
    fn r_numa_variants_have_no_block_cache() {
        for cfg in [
            System::r_numa().build(),
            System::r_numa().with(PageCaching::infinite()).build(),
            System::r_numa().with(PageCaching::half()).build(),
        ] {
            assert!(cfg.block_cache.is_none());
            assert!(cfg.is_rnuma());
            assert!(!cfg.has_migrep());
        }
        assert_eq!(
            System::r_numa().build().page_cache,
            Some(PageCacheConfig::PAPER)
        );
        assert_eq!(
            System::perfect_cc_numa().build().block_cache,
            Some(BlockCacheConfig::Infinite)
        );
    }

    #[test]
    fn builders_compose() {
        let cfg = System::cc_numa()
            .with(MigRep::both())
            .build()
            .with_costs(CostModel::slow())
            .with_thresholds(Thresholds::paper_slow())
            .named("MigRep-Slow");
        assert_eq!(cfg.name, "MigRep-Slow");
        assert_eq!(cfg.costs, CostModel::slow());
        assert_eq!(cfg.thresholds.migrep_threshold, 1200);
    }

    #[test]
    fn machine_configs() {
        assert_eq!(MachineConfig::PAPER.topology.total_procs(), 32);
        assert_eq!(MachineConfig::PAPER.l1.size_bytes, 16 * 1024);
        assert_eq!(MachineConfig::PAPER.geometry, Geometry::PAPER);
        let tiny = MachineConfig::tiny();
        assert_eq!(tiny.topology.total_procs(), 4);
    }

    #[test]
    fn machine_axes_compose() {
        let m = MachineConfig::PAPER
            .with_topology(Topology::new(96, 1))
            .with_geometry(Geometry::new(8192, 128));
        assert_eq!(m.topology.total_procs(), 96);
        assert_eq!(m.geometry.blocks_per_page(), 64);
        assert_eq!(
            m.l1.block_bytes, 128,
            "the L1 line size follows the geometry's block size"
        );
    }
}
