//! Per-node and per-processor runtime state used by the cluster simulator.

use crate::config::SystemConfig;
use crate::stats::NodeStats;
use dsm_protocol::{BlockCache, PageCache};
use mem_trace::{Geometry, PageIdx};
use sim_engine::Cycles;
use smp_node::{CacheConfig, DataCache, MemoryBus, MissClassifier, PageTable};

/// Runtime state of one processor.
#[derive(Debug, Clone)]
pub struct ProcState {
    /// The processor's private data cache.
    pub cache: DataCache,
    /// Miss-classification history.
    pub classifier: MissClassifier,
    /// The processor's local clock.
    pub time: Cycles,
    /// `true` once the processor has drained its trace.
    pub done: bool,
    /// What the processor is currently blocked on, if anything.
    pub waiting: Waiting,
}

/// Blocking state of a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiting {
    /// Runnable.
    None,
    /// Arrived at a barrier and waiting for the rest of the cluster.
    Barrier(u32),
    /// Waiting to acquire a lock.
    Lock(u32),
}

impl ProcState {
    /// Fresh processor state with an empty cache.
    pub fn new(l1: CacheConfig) -> Self {
        ProcState {
            cache: DataCache::new(l1),
            classifier: MissClassifier::new(),
            time: Cycles::ZERO,
            done: false,
            waiting: Waiting::None,
        }
    }
}

/// Runtime state of one cluster node.
pub struct NodeState {
    /// The cluster device's SRAM block cache, if this system has one.
    pub block_cache: Option<BlockCache>,
    /// The S-COMA page cache, if this system supports fine-grain memory
    /// caching.
    pub page_cache: Option<PageCache>,
    /// The node's page table.
    pub page_table: PageTable,
    /// The node's memory bus.
    pub bus: MemoryBus,
    /// Counters reported at the end of the run.
    pub stats: NodeStats,
}

impl NodeState {
    /// Build the per-node hardware prescribed by `system` at the machine's
    /// address-space `geometry`.
    pub fn new(node_index: usize, system: &SystemConfig, geometry: Geometry) -> Self {
        NodeState {
            block_cache: system
                .block_cache
                .map(|c| BlockCache::with_geometry(c, geometry)),
            page_cache: system
                .page_cache
                .map(|c| PageCache::with_geometry(c, geometry)),
            page_table: PageTable::new(),
            bus: MemoryBus::new(node_index),
            stats: NodeStats::default(),
        }
    }

    /// `true` if this node has relocated `page` into its page cache.
    pub fn page_in_page_cache(&self, page: PageIdx) -> bool {
        self.page_cache
            .as_ref()
            .map(|pc| pc.contains_page(page))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::System;
    use crate::config::MachineConfig;

    #[test]
    fn node_state_builds_hardware_per_system() {
        let machine = MachineConfig::tiny();
        let cc = NodeState::new(0, &System::cc_numa().build(), machine.geometry);
        assert!(cc.block_cache.is_some());
        assert!(cc.page_cache.is_none());

        let rn = NodeState::new(0, &System::r_numa().build(), machine.geometry);
        assert!(rn.block_cache.is_none());
        assert!(rn.page_cache.is_some());
        assert!(!rn.page_in_page_cache(PageIdx(0)));

        let proc = ProcState::new(machine.l1);
        assert_eq!(proc.time, Cycles::ZERO);
        assert!(!proc.done);
        assert_eq!(proc.waiting, Waiting::None);
    }
}
