//! SMP node model: per-processor data caches, miss classification, the
//! node's split-transaction memory bus, and the node's page table / TLB.
//!
//! In the reproduced paper every cluster node is a 4-way SMP: four 600 MHz
//! processors with 16-KByte direct-mapped data caches, kept coherent by a
//! snoopy MOESI protocol over a 100 MHz split-transaction bus.  Remote data
//! is accessed through the node's DSM cluster device (crate `dsm-protocol`),
//! and the page-granularity mechanisms under study (first-touch placement,
//! migration/replication, R-NUMA relocation) manipulate the node's page
//! table, which this crate also models.

pub mod bus;
pub mod cache;
pub mod classify;
pub mod page_table;

pub use bus::{BusTransaction, MemoryBus};
pub use cache::{CacheConfig, CacheOutcome, DataCache, LineState, Victim};
pub use classify::{MissClass, MissClassifier};
pub use page_table::{PageMapping, PageMode, PageProtection, PageTable};
