//! Per-processor miss classification.
//!
//! The paper's analysis hinges on separating *capacity/conflict* misses —
//! the traffic page migration/replication and R-NUMA try to eliminate —
//! from cold and coherence misses.  A miss on block `B` by processor `P`
//! is classified as:
//!
//! * **cold** if `P` has never cached `B`,
//! * **coherence** if `B` last left `P`'s cache because another processor's
//!   write invalidated it,
//! * **capacity/conflict** if `B` last left `P`'s cache because it was
//!   evicted (displaced by another block) or flushed by a page operation.
//!
//! R-NUMA's per-page *refetch counters* count exactly the capacity/conflict
//! re-fetches, so the classifier is also the source of the signal that
//! drives relocation decisions.

use mem_trace::{BlockIdx, Slab};

/// Classification of a processor-cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First reference to the block by this processor.
    Cold,
    /// Block was invalidated by another processor's write.
    Coherence,
    /// Block was evicted for capacity/conflict reasons (or flushed by a page
    /// operation) and is now being re-fetched.
    CapacityConflict,
}

/// What the classifier remembers about a block: whether this processor ever
/// cached it and, if it left the cache, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum History {
    /// Never cached by this processor (the slab's default).
    #[default]
    Untouched,
    /// Currently believed resident.
    Resident,
    /// Displaced by a fill to the same cache line, or flushed by a page
    /// operation.
    Evicted,
    /// Invalidated by the coherence protocol (a remote write).
    Invalidated,
}

/// Tracks, per processor, the history needed to classify misses.
///
/// The history is a dense slab over interned block indices — one byte per
/// block the *cluster* touched — so the per-miss classification and the
/// per-fill/eviction/invalidation bookkeeping are single array accesses.
#[derive(Debug, Clone, Default)]
pub struct MissClassifier {
    history: Slab<History>,
    cold: u64,
    coherence: u64,
    capacity_conflict: u64,
}

impl MissClassifier {
    /// New classifier with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify (and record) a miss on `block`.  Call exactly once per
    /// processor-cache miss, before recording the subsequent fill.
    pub fn classify_miss(&mut self, block: BlockIdx) -> MissClass {
        let class = match self.history.get(block.index()).copied().unwrap_or_default() {
            History::Untouched => MissClass::Cold,
            History::Resident => {
                // Block believed resident yet we missed: this happens when a
                // page flush dropped the line without notifying the
                // classifier; treat as capacity/conflict, matching the
                // paper's accounting of relocation-induced refetches.
                MissClass::CapacityConflict
            }
            History::Evicted => MissClass::CapacityConflict,
            History::Invalidated => MissClass::Coherence,
        };
        match class {
            MissClass::Cold => self.cold += 1,
            MissClass::Coherence => self.coherence += 1,
            MissClass::CapacityConflict => self.capacity_conflict += 1,
        }
        class
    }

    /// Record that `block` is now resident in this processor's cache.
    pub fn record_fill(&mut self, block: BlockIdx) {
        *self.history.entry(block.index()) = History::Resident;
    }

    /// Record that `block` was evicted (capacity/conflict departure).
    pub fn record_eviction(&mut self, block: BlockIdx) {
        *self.history.entry(block.index()) = History::Evicted;
    }

    /// Record that `block` was invalidated by the coherence protocol.
    pub fn record_invalidation(&mut self, block: BlockIdx) {
        *self.history.entry(block.index()) = History::Invalidated;
    }

    /// `(cold, coherence, capacity_conflict)` counts so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.cold, self.coherence, self.capacity_conflict)
    }

    /// Total misses classified.
    pub fn total(&self) -> u64 {
        self.cold + self.coherence + self.capacity_conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_is_cold() {
        let mut c = MissClassifier::new();
        assert_eq!(c.classify_miss(BlockIdx(1)), MissClass::Cold);
        assert_eq!(c.counts(), (1, 0, 0));
    }

    #[test]
    fn refetch_after_eviction_is_capacity_conflict() {
        let mut c = MissClassifier::new();
        c.classify_miss(BlockIdx(1));
        c.record_fill(BlockIdx(1));
        c.record_eviction(BlockIdx(1));
        assert_eq!(c.classify_miss(BlockIdx(1)), MissClass::CapacityConflict);
        assert_eq!(c.counts(), (1, 0, 1));
    }

    #[test]
    fn refetch_after_invalidation_is_coherence() {
        let mut c = MissClassifier::new();
        c.classify_miss(BlockIdx(2));
        c.record_fill(BlockIdx(2));
        c.record_invalidation(BlockIdx(2));
        assert_eq!(c.classify_miss(BlockIdx(2)), MissClass::Coherence);
        assert_eq!(c.counts(), (1, 1, 0));
    }

    #[test]
    fn miss_while_marked_resident_counts_as_capacity_conflict() {
        // A page flush can drop lines without an explicit eviction record.
        let mut c = MissClassifier::new();
        c.classify_miss(BlockIdx(3));
        c.record_fill(BlockIdx(3));
        assert_eq!(c.classify_miss(BlockIdx(3)), MissClass::CapacityConflict);
    }

    #[test]
    fn departure_reason_is_most_recent_one() {
        let mut c = MissClassifier::new();
        c.classify_miss(BlockIdx(4));
        c.record_fill(BlockIdx(4));
        c.record_eviction(BlockIdx(4));
        c.record_fill(BlockIdx(4));
        c.record_invalidation(BlockIdx(4));
        assert_eq!(c.classify_miss(BlockIdx(4)), MissClass::Coherence);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn distinct_blocks_have_independent_histories() {
        let mut c = MissClassifier::new();
        c.classify_miss(BlockIdx(1));
        c.record_fill(BlockIdx(1));
        c.record_eviction(BlockIdx(1));
        assert_eq!(c.classify_miss(BlockIdx(2)), MissClass::Cold);
        assert_eq!(c.classify_miss(BlockIdx(1)), MissClass::CapacityConflict);
    }
}
