//! The node's split-transaction memory bus.
//!
//! The paper's nodes use a 100 MHz split-transaction bus connecting four
//! 600 MHz processors to an interleaved memory and to the DSM cluster
//! device.  With a 6:1 clock ratio, every bus cycle costs six processor
//! cycles.  Contention is modeled by treating the bus as a FIFO resource:
//! each transaction occupies the bus for its occupancy window and later
//! requests queue behind it (the paper "model\[s\] data caches and their
//! contention at the memory bus accurately").

use sim_engine::{Cycles, Resource};

/// Processor cycles per bus cycle (600 MHz CPU / 100 MHz bus).
pub const CPU_CYCLES_PER_BUS_CYCLE: u64 = 6;

/// Kinds of bus transactions and their occupancy in *bus* cycles.
///
/// Occupancies follow the usual split-transaction accounting: an address
/// phase of one bus cycle plus, for transactions carrying a 64-byte data
/// block over a 16-byte-wide data path, four data cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusTransaction {
    /// Address-only transaction: an upgrade/invalidation request.
    Upgrade,
    /// Block fill from local memory, the block cache or the cluster device.
    BlockFill,
    /// Write-back of a dirty block.
    WriteBack,
    /// Block transferred as part of a page flush / page move.
    PageFlushBlock,
}

impl BusTransaction {
    /// Occupancy of the transaction in bus cycles.
    pub fn bus_cycles(self) -> u64 {
        match self {
            BusTransaction::Upgrade => 1,
            BusTransaction::BlockFill => 5,
            BusTransaction::WriteBack => 5,
            BusTransaction::PageFlushBlock => 5,
        }
    }

    /// Occupancy of the transaction in processor cycles.
    pub fn cpu_cycles(self) -> Cycles {
        Cycles::new(self.bus_cycles() * CPU_CYCLES_PER_BUS_CYCLE)
    }
}

/// The node's memory bus: a FIFO resource plus transaction accounting.
#[derive(Debug, Clone)]
pub struct MemoryBus {
    resource: Resource,
    transactions: u64,
}

impl MemoryBus {
    /// A fresh, idle bus for the given node index (name used in reports).
    pub fn new(node_index: usize) -> Self {
        MemoryBus {
            resource: Resource::new(format!("bus[{node_index}]")),
            transactions: 0,
        }
    }

    /// Issue a transaction at `now`; returns the time at which the
    /// transaction (and therefore the requesting processor's use of the bus)
    /// completes, including any queueing delay behind earlier traffic.
    pub fn issue(&mut self, now: Cycles, tx: BusTransaction) -> Cycles {
        self.transactions += 1;
        self.resource.acquire(now, tx.cpu_cycles()).finish
    }

    /// Completion time a transaction would observe, without issuing it.
    pub fn probe(&self, now: Cycles, tx: BusTransaction) -> Cycles {
        self.resource.probe(now, tx.cpu_cycles())
    }

    /// Total transactions issued.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles of queueing delay suffered on this bus.
    pub fn queue_delay(&self) -> Cycles {
        self.resource.stats().queued
    }

    /// Bus utilization over the observed interval.
    pub fn utilization(&self) -> f64 {
        self.resource.stats().utilization()
    }

    /// Reset between runs.
    pub fn reset(&mut self) {
        self.resource.reset();
        self.transactions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ratio_matches_paper() {
        // 600 MHz processors on a 100 MHz bus.
        assert_eq!(CPU_CYCLES_PER_BUS_CYCLE, 6);
        assert_eq!(BusTransaction::Upgrade.cpu_cycles(), Cycles::new(6));
        assert_eq!(BusTransaction::BlockFill.cpu_cycles(), Cycles::new(30));
    }

    #[test]
    fn uncontended_transaction_completes_after_occupancy() {
        let mut bus = MemoryBus::new(0);
        let done = bus.issue(Cycles::new(1000), BusTransaction::BlockFill);
        assert_eq!(done, Cycles::new(1030));
    }

    #[test]
    fn contending_transactions_serialize() {
        let mut bus = MemoryBus::new(0);
        let first = bus.issue(Cycles::new(0), BusTransaction::BlockFill);
        let second = bus.issue(Cycles::new(0), BusTransaction::BlockFill);
        assert_eq!(first, Cycles::new(30));
        assert_eq!(second, Cycles::new(60));
        assert_eq!(bus.queue_delay(), Cycles::new(30));
        assert_eq!(bus.transactions(), 2);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut bus = MemoryBus::new(3);
        bus.issue(Cycles::new(0), BusTransaction::WriteBack);
        let t = bus.probe(Cycles::new(0), BusTransaction::Upgrade);
        assert_eq!(t, Cycles::new(36));
        assert_eq!(bus.transactions(), 1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut bus = MemoryBus::new(1);
        bus.issue(Cycles::new(0), BusTransaction::BlockFill);
        bus.reset();
        assert_eq!(bus.transactions(), 0);
        let done = bus.issue(Cycles::new(0), BusTransaction::BlockFill);
        assert_eq!(done, Cycles::new(30));
    }
}
