//! Per-node page table and page-mapping modes.
//!
//! Every node maps global shared pages into its local physical address
//! space.  How a page is mapped determines where a processor-cache miss on
//! that page is serviced:
//!
//! * [`PageMode::LocalHome`] — the page's home is this node; misses go to
//!   local memory.
//! * [`PageMode::RemoteCcNuma`] — the page lives on another node; misses go
//!   through the cluster device (block cache, then the DSM protocol).
//! * [`PageMode::SComa`] — R-NUMA relocated the page into this node's
//!   S-COMA page cache; misses are serviced from local memory if the block
//!   is present in the page cache, otherwise fetched from the home node and
//!   installed.
//! * [`PageMode::Replica`] — page replication installed a read-only copy in
//!   local memory; reads are local, writes fault and force the page back to
//!   a single read-write home.
//!
//! All page-mode transitions (first-touch, migration, replication, R-NUMA
//! relocation, replica invalidation) go through this table, so it is also
//! the natural place to count mapping operations and TLB shootdowns.

use mem_trace::{NodeId, PageId};
use std::collections::HashMap;

/// How a page is currently mapped on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageMode {
    /// The page's home memory is on this node.
    LocalHome,
    /// The page is remote and cached block-by-block through CC-NUMA.
    RemoteCcNuma,
    /// The page has been relocated into this node's S-COMA page cache.
    SComa,
    /// This node holds a read-only replica of the page.
    Replica,
}

/// Page access protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageProtection {
    /// Reads and writes allowed.
    ReadWrite,
    /// Writes fault (used for replicated pages).
    ReadOnly,
}

/// A node's view of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapping {
    /// Mapping mode.
    pub mode: PageMode,
    /// Access protection.
    pub protection: PageProtection,
    /// The page's current home node (kept up to date across migrations).
    pub home: NodeId,
}

impl PageMapping {
    /// A read-write mapping in the given mode with the given home.
    pub fn new(mode: PageMode, home: NodeId) -> Self {
        PageMapping {
            mode,
            protection: PageProtection::ReadWrite,
            home,
        }
    }

    /// A read-only replica mapping.
    pub fn replica(home: NodeId) -> Self {
        PageMapping {
            mode: PageMode::Replica,
            protection: PageProtection::ReadOnly,
            home,
        }
    }
}

/// Per-node page table.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<PageId, PageMapping>,
    map_operations: u64,
    unmap_operations: u64,
    tlb_shootdowns: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mapping of `page`, if mapped.
    pub fn lookup(&self, page: PageId) -> Option<PageMapping> {
        self.entries.get(&page).copied()
    }

    /// `true` if `page` is mapped.
    pub fn is_mapped(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// Install (or replace) the mapping of `page`.
    pub fn map(&mut self, page: PageId, mapping: PageMapping) {
        self.map_operations += 1;
        self.entries.insert(page, mapping);
    }

    /// Remove the mapping of `page`; returns the old mapping.  Counts a TLB
    /// shootdown on this node.
    pub fn unmap(&mut self, page: PageId) -> Option<PageMapping> {
        let old = self.entries.remove(&page);
        if old.is_some() {
            self.unmap_operations += 1;
            self.tlb_shootdowns += 1;
        }
        old
    }

    /// Change only the mode of an existing mapping; returns `false` if the
    /// page was not mapped.
    pub fn set_mode(&mut self, page: PageId, mode: PageMode) -> bool {
        match self.entries.get_mut(&page) {
            Some(m) => {
                m.mode = mode;
                true
            }
            None => false,
        }
    }

    /// Change only the protection of an existing mapping; returns `false` if
    /// the page was not mapped.
    pub fn set_protection(&mut self, page: PageId, protection: PageProtection) -> bool {
        match self.entries.get_mut(&page) {
            Some(m) => {
                m.protection = protection;
                true
            }
            None => false,
        }
    }

    /// Update the recorded home node of `page` (after a migration elsewhere
    /// in the cluster); returns `false` if the page was not mapped here.
    pub fn set_home(&mut self, page: PageId, home: NodeId) -> bool {
        match self.entries.get_mut(&page) {
            Some(m) => {
                m.home = home;
                true
            }
            None => false,
        }
    }

    /// Number of pages currently mapped in `mode`.
    pub fn count_in_mode(&self, mode: PageMode) -> usize {
        self.entries.values().filter(|m| m.mode == mode).count()
    }

    /// Iterate over all mapped pages.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PageMapping)> + '_ {
        self.entries.iter().map(|(p, m)| (*p, *m))
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(map operations, unmap operations, TLB shootdowns)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.map_operations,
            self.unmap_operations,
            self.tlb_shootdowns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        let p = PageId(5);
        assert!(!pt.is_mapped(p));
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(3)));
        let m = pt.lookup(p).unwrap();
        assert_eq!(m.mode, PageMode::RemoteCcNuma);
        assert_eq!(m.home, NodeId(3));
        assert_eq!(m.protection, PageProtection::ReadWrite);
        let old = pt.unmap(p).unwrap();
        assert_eq!(old.mode, PageMode::RemoteCcNuma);
        assert!(!pt.is_mapped(p));
        assert_eq!(pt.counters(), (1, 1, 1));
    }

    #[test]
    fn unmap_of_unmapped_page_is_noop() {
        let mut pt = PageTable::new();
        assert!(pt.unmap(PageId(1)).is_none());
        assert_eq!(pt.counters(), (0, 0, 0));
    }

    #[test]
    fn replica_mapping_is_read_only() {
        let m = PageMapping::replica(NodeId(0));
        assert_eq!(m.mode, PageMode::Replica);
        assert_eq!(m.protection, PageProtection::ReadOnly);
    }

    #[test]
    fn mode_and_protection_transitions() {
        let mut pt = PageTable::new();
        let p = PageId(9);
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(1)));
        assert!(pt.set_mode(p, PageMode::SComa));
        assert_eq!(pt.lookup(p).unwrap().mode, PageMode::SComa);
        assert!(pt.set_protection(p, PageProtection::ReadOnly));
        assert_eq!(pt.lookup(p).unwrap().protection, PageProtection::ReadOnly);
        assert!(pt.set_home(p, NodeId(7)));
        assert_eq!(pt.lookup(p).unwrap().home, NodeId(7));
        assert!(!pt.set_mode(PageId(1000), PageMode::SComa));
        assert!(!pt.set_protection(PageId(1000), PageProtection::ReadOnly));
        assert!(!pt.set_home(PageId(1000), NodeId(0)));
    }

    #[test]
    fn count_in_mode_and_iteration() {
        let mut pt = PageTable::new();
        pt.map(PageId(0), PageMapping::new(PageMode::LocalHome, NodeId(0)));
        pt.map(PageId(1), PageMapping::new(PageMode::SComa, NodeId(2)));
        pt.map(PageId(2), PageMapping::new(PageMode::SComa, NodeId(3)));
        pt.map(PageId(3), PageMapping::replica(NodeId(1)));
        assert_eq!(pt.count_in_mode(PageMode::SComa), 2);
        assert_eq!(pt.count_in_mode(PageMode::LocalHome), 1);
        assert_eq!(pt.count_in_mode(PageMode::Replica), 1);
        assert_eq!(pt.count_in_mode(PageMode::RemoteCcNuma), 0);
        assert_eq!(pt.iter().count(), 4);
        assert_eq!(pt.len(), 4);
        assert!(!pt.is_empty());
    }

    #[test]
    fn remapping_replaces_previous_entry() {
        let mut pt = PageTable::new();
        let p = PageId(4);
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(1)));
        pt.map(p, PageMapping::new(PageMode::SComa, NodeId(1)));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.lookup(p).unwrap().mode, PageMode::SComa);
        assert_eq!(pt.counters().0, 2);
    }
}
