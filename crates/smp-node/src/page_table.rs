//! Per-node page table and page-mapping modes.
//!
//! Every node maps global shared pages into its local physical address
//! space.  How a page is mapped determines where a processor-cache miss on
//! that page is serviced:
//!
//! * [`PageMode::LocalHome`] — the page's home is this node; misses go to
//!   local memory.
//! * [`PageMode::RemoteCcNuma`] — the page lives on another node; misses go
//!   through the cluster device (block cache, then the DSM protocol).
//! * [`PageMode::SComa`] — R-NUMA relocated the page into this node's
//!   S-COMA page cache; misses are serviced from local memory if the block
//!   is present in the page cache, otherwise fetched from the home node and
//!   installed.
//! * [`PageMode::Replica`] — page replication installed a read-only copy in
//!   local memory; reads are local, writes fault and force the page back to
//!   a single read-write home.
//!
//! All page-mode transitions (first-touch, migration, replication, R-NUMA
//! relocation, replica invalidation) go through this table, so it is also
//! the natural place to count mapping operations and TLB shootdowns.
//!
//! Entries are keyed by the dense [`PageIdx`] the trace layer interns: the
//! mapping lookup on every memory reference is a single array access.

use mem_trace::{NodeId, PageIdx, Slab};

/// How a page is currently mapped on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageMode {
    /// The page's home memory is on this node.
    LocalHome,
    /// The page is remote and cached block-by-block through CC-NUMA.
    RemoteCcNuma,
    /// The page has been relocated into this node's S-COMA page cache.
    SComa,
    /// This node holds a read-only replica of the page.
    Replica,
}

/// Page access protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageProtection {
    /// Reads and writes allowed.
    ReadWrite,
    /// Writes fault (used for replicated pages).
    ReadOnly,
}

/// A node's view of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapping {
    /// Mapping mode.
    pub mode: PageMode,
    /// Access protection.
    pub protection: PageProtection,
    /// The page's current home node (kept up to date across migrations).
    pub home: NodeId,
}

impl PageMapping {
    /// A read-write mapping in the given mode with the given home.
    pub fn new(mode: PageMode, home: NodeId) -> Self {
        PageMapping {
            mode,
            protection: PageProtection::ReadWrite,
            home,
        }
    }

    /// A read-only replica mapping.
    pub fn replica(home: NodeId) -> Self {
        PageMapping {
            mode: PageMode::Replica,
            protection: PageProtection::ReadOnly,
            home,
        }
    }
}

/// Per-node page table: a dense slab of mapping slots over interned page
/// indices.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: Slab<Option<PageMapping>>,
    mapped: usize,
    map_operations: u64,
    unmap_operations: u64,
    tlb_shootdowns: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mapping of `page`, if mapped.
    #[inline]
    pub fn lookup(&self, page: PageIdx) -> Option<PageMapping> {
        self.entries.get(page.index()).copied().flatten()
    }

    /// `true` if `page` is mapped.
    pub fn is_mapped(&self, page: PageIdx) -> bool {
        self.lookup(page).is_some()
    }

    /// Install (or replace) the mapping of `page`.
    pub fn map(&mut self, page: PageIdx, mapping: PageMapping) {
        self.map_operations += 1;
        let slot = self.entries.entry(page.index());
        if slot.is_none() {
            self.mapped += 1;
        }
        *slot = Some(mapping);
    }

    /// Remove the mapping of `page`; returns the old mapping.  Counts a TLB
    /// shootdown on this node.
    pub fn unmap(&mut self, page: PageIdx) -> Option<PageMapping> {
        let old = self.entries.get_mut(page.index()).and_then(Option::take);
        if old.is_some() {
            self.mapped -= 1;
            self.unmap_operations += 1;
            self.tlb_shootdowns += 1;
        }
        old
    }

    /// Change only the mode of an existing mapping; returns `false` if the
    /// page was not mapped.
    pub fn set_mode(&mut self, page: PageIdx, mode: PageMode) -> bool {
        match self.entries.get_mut(page.index()).and_then(Option::as_mut) {
            Some(m) => {
                m.mode = mode;
                true
            }
            None => false,
        }
    }

    /// Change only the protection of an existing mapping; returns `false` if
    /// the page was not mapped.
    pub fn set_protection(&mut self, page: PageIdx, protection: PageProtection) -> bool {
        match self.entries.get_mut(page.index()).and_then(Option::as_mut) {
            Some(m) => {
                m.protection = protection;
                true
            }
            None => false,
        }
    }

    /// Update the recorded home node of `page` (after a migration elsewhere
    /// in the cluster); returns `false` if the page was not mapped here.
    pub fn set_home(&mut self, page: PageIdx, home: NodeId) -> bool {
        match self.entries.get_mut(page.index()).and_then(Option::as_mut) {
            Some(m) => {
                m.home = home;
                true
            }
            None => false,
        }
    }

    /// Number of pages currently mapped in `mode`.
    pub fn count_in_mode(&self, mode: PageMode) -> usize {
        self.entries
            .iter()
            .filter(|m| m.map(|m| m.mode == mode).unwrap_or(false))
            .count()
    }

    /// Iterate over all mapped pages.
    pub fn iter(&self) -> impl Iterator<Item = (PageIdx, PageMapping)> + '_ {
        self.entries
            .iter_enumerated()
            .filter_map(|(i, m)| m.map(|m| (PageIdx(i as u32), m)))
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.mapped
    }

    /// `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// `(map operations, unmap operations, TLB shootdowns)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.map_operations,
            self.unmap_operations,
            self.tlb_shootdowns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        let p = PageIdx(5);
        assert!(!pt.is_mapped(p));
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(3)));
        let m = pt.lookup(p).unwrap();
        assert_eq!(m.mode, PageMode::RemoteCcNuma);
        assert_eq!(m.home, NodeId(3));
        assert_eq!(m.protection, PageProtection::ReadWrite);
        let old = pt.unmap(p).unwrap();
        assert_eq!(old.mode, PageMode::RemoteCcNuma);
        assert!(!pt.is_mapped(p));
        assert_eq!(pt.counters(), (1, 1, 1));
    }

    #[test]
    fn unmap_of_unmapped_page_is_noop() {
        let mut pt = PageTable::new();
        assert!(pt.unmap(PageIdx(1)).is_none());
        assert_eq!(pt.counters(), (0, 0, 0));
    }

    #[test]
    fn replica_mapping_is_read_only() {
        let m = PageMapping::replica(NodeId(0));
        assert_eq!(m.mode, PageMode::Replica);
        assert_eq!(m.protection, PageProtection::ReadOnly);
    }

    #[test]
    fn mode_and_protection_transitions() {
        let mut pt = PageTable::new();
        let p = PageIdx(9);
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(1)));
        assert!(pt.set_mode(p, PageMode::SComa));
        assert_eq!(pt.lookup(p).unwrap().mode, PageMode::SComa);
        assert!(pt.set_protection(p, PageProtection::ReadOnly));
        assert_eq!(pt.lookup(p).unwrap().protection, PageProtection::ReadOnly);
        assert!(pt.set_home(p, NodeId(7)));
        assert_eq!(pt.lookup(p).unwrap().home, NodeId(7));
        assert!(!pt.set_mode(PageIdx(1000), PageMode::SComa));
        assert!(!pt.set_protection(PageIdx(1000), PageProtection::ReadOnly));
        assert!(!pt.set_home(PageIdx(1000), NodeId(0)));
    }

    #[test]
    fn count_in_mode_and_iteration() {
        let mut pt = PageTable::new();
        pt.map(PageIdx(0), PageMapping::new(PageMode::LocalHome, NodeId(0)));
        pt.map(PageIdx(1), PageMapping::new(PageMode::SComa, NodeId(2)));
        pt.map(PageIdx(2), PageMapping::new(PageMode::SComa, NodeId(3)));
        pt.map(PageIdx(3), PageMapping::replica(NodeId(1)));
        assert_eq!(pt.count_in_mode(PageMode::SComa), 2);
        assert_eq!(pt.count_in_mode(PageMode::LocalHome), 1);
        assert_eq!(pt.count_in_mode(PageMode::Replica), 1);
        assert_eq!(pt.count_in_mode(PageMode::RemoteCcNuma), 0);
        assert_eq!(pt.iter().count(), 4);
        assert_eq!(pt.len(), 4);
        assert!(!pt.is_empty());
    }

    #[test]
    fn remapping_replaces_previous_entry() {
        let mut pt = PageTable::new();
        let p = PageIdx(4);
        pt.map(p, PageMapping::new(PageMode::RemoteCcNuma, NodeId(1)));
        pt.map(p, PageMapping::new(PageMode::SComa, NodeId(1)));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.lookup(p).unwrap().mode, PageMode::SComa);
        assert_eq!(pt.counters().0, 2);
    }

    #[test]
    fn sparse_indices_leave_holes_unmapped() {
        let mut pt = PageTable::new();
        pt.map(
            PageIdx(10),
            PageMapping::new(PageMode::LocalHome, NodeId(0)),
        );
        assert_eq!(pt.len(), 1);
        assert!(!pt.is_mapped(PageIdx(4)));
        assert_eq!(pt.iter().count(), 1);
        assert_eq!(pt.iter().next().unwrap().0, PageIdx(10));
    }
}
