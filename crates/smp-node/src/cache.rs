//! Direct-mapped per-processor data cache with MOESI-style line states.
//!
//! The paper assumes 16-KByte direct-mapped processor caches (sized to hold
//! the primary working set of the scaled-down SPLASH-2 inputs) with 64-byte
//! blocks.  The cache is modeled at block granularity: we track, for every
//! cache index, which block currently resides there and in which coherence
//! state.  The snoopy MOESI protocol inside the node is expressed through
//! the state transitions the enclosing simulator requests
//! ([`DataCache::invalidate`], [`DataCache::downgrade`]).
//!
//! Blocks are addressed by [`BlockRef`]: the *sparse id* selects the
//! direct-mapped set (conflict behaviour must be a function of real
//! addresses), while the tag stores the full ref so that victims and
//! resident-block enumerations hand their dense index straight to the
//! classifier and directory without a lookup.

use mem_trace::{AccessKind, BlockRef};

/// MOESI coherence states of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Line holds no valid block.
    Invalid,
    /// Clean, possibly shared with other caches.
    Shared,
    /// Clean and exclusive to this cache.
    Exclusive,
    /// Dirty and exclusive to this cache.
    Modified,
    /// Dirty but shared (this cache is responsible for the data).
    Owned,
}

impl LineState {
    /// `true` if the line holds data the memory below does not have.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// `true` if the line may be read without a bus transaction.
    pub fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// `true` if the line may be written without a bus transaction.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// Configuration of a direct-mapped cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// The paper's 16-KByte direct-mapped processor cache with 64-byte
    /// blocks.
    pub const PAPER_L1: CacheConfig = CacheConfig {
        size_bytes: 16 * 1024,
        block_bytes: mem_trace::BLOCK_SIZE,
    };

    /// Number of lines (sets) in the cache.
    pub fn lines(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize
    }
}

/// A block evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted block.
    pub block: BlockRef,
    /// Its state at eviction time (dirty victims must be written back).
    pub state: LineState,
}

/// Result of presenting an access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The access hit and completed without a bus transaction.
    Hit,
    /// A write hit a line held in `Shared`/`Owned`; an upgrade (invalidation
    /// of other copies) is required but no data transfer.
    UpgradeMiss,
    /// The block is not present; a fill is required.  `victim` is the block
    /// that will be displaced by the fill, if any.
    Miss {
        /// Block displaced by the incoming fill, if the target line was
        /// occupied by a different block.
        victim: Option<Victim>,
    },
}

/// A direct-mapped data cache.
#[derive(Debug, Clone)]
pub struct DataCache {
    config: CacheConfig,
    tags: Vec<Option<BlockRef>>,
    states: Vec<LineState>,
    /// Monotonic counters for reporting.
    hits: u64,
    misses: u64,
    upgrades: u64,
    evictions: u64,
    invalidations_received: u64,
}

impl DataCache {
    /// Create an empty cache.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero lines or a block size
    /// that does not divide the capacity).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block_bytes > 0, "block size must be non-zero");
        assert!(
            config.size_bytes.is_multiple_of(config.block_bytes),
            "capacity must be a multiple of the block size"
        );
        let lines = config.lines();
        assert!(lines > 0, "cache must have at least one line");
        DataCache {
            config,
            tags: vec![None; lines],
            states: vec![LineState::Invalid; lines],
            hits: 0,
            misses: 0,
            upgrades: 0,
            evictions: 0,
            invalidations_received: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn index_of(&self, block: BlockRef) -> usize {
        (block.id.0 % self.tags.len() as u64) as usize
    }

    /// Current state of `block` (Invalid if not resident).
    #[inline]
    pub fn state_of(&self, block: BlockRef) -> LineState {
        let idx = self.index_of(block);
        if self.tags[idx] == Some(block) {
            self.states[idx]
        } else {
            LineState::Invalid
        }
    }

    /// `true` if `block` is resident in any valid state.
    pub fn contains(&self, block: BlockRef) -> bool {
        self.state_of(block).is_valid()
    }

    /// Probe the cache with an access *without* changing its contents.
    /// Returns what [`DataCache::access`] would report.
    #[inline]
    pub fn probe(&self, block: BlockRef, kind: AccessKind) -> CacheOutcome {
        let idx = self.index_of(block);
        let resident = self.tags[idx] == Some(block);
        if resident {
            let state = self.states[idx];
            match kind {
                AccessKind::Read => CacheOutcome::Hit,
                AccessKind::Write if state.is_writable() => CacheOutcome::Hit,
                AccessKind::Write => CacheOutcome::UpgradeMiss,
            }
        } else {
            let victim = match self.tags[idx] {
                Some(old) if self.states[idx].is_valid() => Some(Victim {
                    block: old,
                    state: self.states[idx],
                }),
                _ => None,
            };
            CacheOutcome::Miss { victim }
        }
    }

    /// Present an access to the cache and update hit/miss statistics.
    ///
    /// On a hit the state is updated in place (a write hit on an
    /// `Exclusive` line silently becomes `Modified`).  On a miss or upgrade
    /// the cache contents are *not* changed; the caller performs the bus /
    /// DSM transaction and then calls [`DataCache::fill`] (or
    /// [`DataCache::upgrade`]) with the resulting state.
    pub fn access(&mut self, block: BlockRef, kind: AccessKind) -> CacheOutcome {
        let outcome = self.probe(block, kind);
        match outcome {
            CacheOutcome::Hit => {
                self.hits += 1;
                if kind.is_write() {
                    let idx = self.index_of(block);
                    self.states[idx] = LineState::Modified;
                }
            }
            CacheOutcome::UpgradeMiss => {
                self.upgrades += 1;
            }
            CacheOutcome::Miss { .. } => {
                self.misses += 1;
            }
        }
        outcome
    }

    /// Install `block` in state `state`, evicting whatever occupied its line.
    /// Returns the victim, if one was displaced.
    pub fn fill(&mut self, block: BlockRef, state: LineState) -> Option<Victim> {
        assert!(state.is_valid(), "cannot fill a line into Invalid state");
        let idx = self.index_of(block);
        let victim = match self.tags[idx] {
            Some(old) if old != block && self.states[idx].is_valid() => {
                self.evictions += 1;
                Some(Victim {
                    block: old,
                    state: self.states[idx],
                })
            }
            _ => None,
        };
        self.tags[idx] = Some(block);
        self.states[idx] = state;
        victim
    }

    /// Complete a write-upgrade of a resident `Shared`/`Owned` line.
    pub fn upgrade(&mut self, block: BlockRef) {
        let idx = self.index_of(block);
        debug_assert_eq!(
            self.tags[idx],
            Some(block),
            "upgrade of a non-resident block"
        );
        self.states[idx] = LineState::Modified;
    }

    /// Invalidate `block` if resident (remote write or page flush).  Returns
    /// the state it held.
    pub fn invalidate(&mut self, block: BlockRef) -> LineState {
        let idx = self.index_of(block);
        if self.tags[idx] == Some(block) && self.states[idx].is_valid() {
            let old = self.states[idx];
            self.states[idx] = LineState::Invalid;
            self.tags[idx] = None;
            self.invalidations_received += 1;
            old
        } else {
            LineState::Invalid
        }
    }

    /// Downgrade `block` to `Shared`/`Owned` in response to a remote read.
    /// Returns the previous state.
    pub fn downgrade(&mut self, block: BlockRef) -> LineState {
        let idx = self.index_of(block);
        if self.tags[idx] == Some(block) && self.states[idx].is_valid() {
            let old = self.states[idx];
            self.states[idx] = match old {
                LineState::Modified | LineState::Owned => LineState::Owned,
                _ => LineState::Shared,
            };
            old
        } else {
            LineState::Invalid
        }
    }

    /// Iterate over resident blocks (used for page flushes).
    pub fn resident_blocks(&self) -> impl Iterator<Item = (BlockRef, LineState)> + '_ {
        self.tags
            .iter()
            .zip(self.states.iter())
            .filter_map(|(tag, state)| match (tag, state) {
                (Some(b), s) if s.is_valid() => Some((*b, *s)),
                _ => None,
            })
    }

    /// (hits, misses, upgrades, evictions, invalidations received).
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits,
            self.misses,
            self.upgrades,
            self.evictions,
            self.invalidations_received,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::{BlockId, BlockIdx};

    /// Identity interning: block id n ↔ index n.
    fn b(n: u64) -> BlockRef {
        BlockRef::new(BlockId(n), BlockIdx(n as u32))
    }

    fn small_cache() -> DataCache {
        // 4 lines of 64 bytes.
        DataCache::new(CacheConfig {
            size_bytes: 256,
            block_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(
            c.access(b(10), AccessKind::Read),
            CacheOutcome::Miss { victim: None }
        );
        c.fill(b(10), LineState::Shared);
        assert_eq!(c.access(b(10), AccessKind::Read), CacheOutcome::Hit);
        assert_eq!(c.state_of(b(10)), LineState::Shared);
    }

    #[test]
    fn write_hit_on_exclusive_silently_becomes_modified() {
        let mut c = small_cache();
        c.fill(b(3), LineState::Exclusive);
        assert_eq!(c.access(b(3), AccessKind::Write), CacheOutcome::Hit);
        assert_eq!(c.state_of(b(3)), LineState::Modified);
    }

    #[test]
    fn write_to_shared_requires_upgrade() {
        let mut c = small_cache();
        c.fill(b(3), LineState::Shared);
        assert_eq!(c.access(b(3), AccessKind::Write), CacheOutcome::UpgradeMiss);
        c.upgrade(b(3));
        assert_eq!(c.state_of(b(3)), LineState::Modified);
        assert_eq!(c.access(b(3), AccessKind::Write), CacheOutcome::Hit);
    }

    #[test]
    fn conflicting_blocks_evict_each_other() {
        let mut c = small_cache(); // 4 lines => blocks 0 and 4 conflict
        let a = b(0);
        let bb = b(4);
        c.fill(a, LineState::Modified);
        match c.access(bb, AccessKind::Read) {
            CacheOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.block, a);
                assert_eq!(v.state, LineState::Modified);
                assert!(v.state.is_dirty());
            }
            other => panic!("expected conflict miss with victim, got {other:?}"),
        }
        let victim = c
            .fill(bb, LineState::Shared)
            .expect("fill displaces victim");
        assert_eq!(victim.block, a);
        assert!(!c.contains(a));
        assert!(c.contains(bb));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = small_cache();
        c.fill(b(7), LineState::Modified);
        assert_eq!(c.downgrade(b(7)), LineState::Modified);
        assert_eq!(c.state_of(b(7)), LineState::Owned);
        assert_eq!(c.invalidate(b(7)), LineState::Owned);
        assert_eq!(c.state_of(b(7)), LineState::Invalid);
        // Invalidating again is a no-op.
        assert_eq!(c.invalidate(b(7)), LineState::Invalid);
    }

    #[test]
    fn downgrade_of_exclusive_gives_shared() {
        let mut c = small_cache();
        c.fill(b(9), LineState::Exclusive);
        assert_eq!(c.downgrade(b(9)), LineState::Exclusive);
        assert_eq!(c.state_of(b(9)), LineState::Shared);
    }

    #[test]
    fn resident_blocks_lists_valid_lines_only() {
        let mut c = small_cache();
        c.fill(b(0), LineState::Shared);
        c.fill(b(1), LineState::Modified);
        c.invalidate(b(0));
        let resident: Vec<_> = c.resident_blocks().collect();
        assert_eq!(resident, vec![(b(1), LineState::Modified)]);
    }

    #[test]
    fn counters_track_activity() {
        let mut c = small_cache();
        c.access(b(2), AccessKind::Read); // miss
        c.fill(b(2), LineState::Shared);
        c.access(b(2), AccessKind::Read); // hit
        c.access(b(2), AccessKind::Write); // upgrade
        c.upgrade(b(2));
        c.invalidate(b(2));
        let (hits, misses, upgrades, _evictions, invals) = c.counters();
        assert_eq!((hits, misses, upgrades, invals), (1, 1, 1, 1));
    }

    #[test]
    fn probe_does_not_modify() {
        let mut c = small_cache();
        assert_eq!(
            c.probe(b(5), AccessKind::Read),
            CacheOutcome::Miss { victim: None }
        );
        assert_eq!(c.counters().1, 0, "probe must not count as a miss");
        c.fill(b(5), LineState::Shared);
        assert_eq!(c.probe(b(5), AccessKind::Write), CacheOutcome::UpgradeMiss);
        assert_eq!(c.state_of(b(5)), LineState::Shared);
    }

    #[test]
    fn paper_l1_has_256_lines() {
        assert_eq!(CacheConfig::PAPER_L1.lines(), 256);
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn misaligned_capacity_rejected() {
        DataCache::new(CacheConfig {
            size_bytes: 100,
            block_bytes: 64,
        });
    }
}
