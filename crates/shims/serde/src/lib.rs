//! Offline stand-in for `serde`'s derive macros.
//!
//! The build environment has no registry access, so this proc-macro crate
//! satisfies `use serde::{Deserialize, Serialize}` and the corresponding
//! `#[derive(...)]` attributes by expanding to nothing.  No serialization
//! code exists in the workspace yet; the derives on config/stats types only
//! declare intent for future wire formats.  See `crates/shims/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
