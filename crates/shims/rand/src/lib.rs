//! Offline stand-in for the subset of the `rand` API the workload
//! generators use: `rngs::SmallRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range(start..end)`.
//!
//! Backed by xoshiro256** seeded through SplitMix64 — deterministic in the
//! seed, which is the only property the trace generators rely on (every
//! reported number is a ratio between runs of the same trace).  The numeric
//! streams differ from the real `SmallRng`; see `crates/shims/README.md`
//! for how to swap the real crate back in.

use core::ops::Range;

/// Seeding interface (the `seed_from_u64` subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (the `gen_range` subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample from `range` using `rng`'s raw output.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Lemire multiply-shift; bias is negligible for simulation
                // bounds far below 2^64.
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic small generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(0..10);
            assert!((0..10).contains(&w));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }
}
