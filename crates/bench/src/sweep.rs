//! The sweep-first experiment API: typed parameter-space grids.
//!
//! The paper's core result is a comparison *across a parameter space* —
//! traffic of CC-NUMA vs MigRep vs R-NUMA variants, normalized to perfect
//! CC-NUMA, under varying cost models and cache sizes.  [`Sweep`] makes
//! that space first-class: machine axes (cluster nodes, processors per
//! node, page size, block size), system axes (templates, cost models,
//! thresholds, relocation delays), the problem-scale axis
//! ([`Sweep::scales`] — reduced, paper, and custom multiples of the Table 2
//! data sets) and workload axes compose into a cartesian [`ParamSpace`] of
//! jobs.  Each job materializes its own [`MachineConfig`] and streams its
//! own deterministic trace — fused into the simulator's pull loop when the
//! workers saturate the cores, through a generator thread when spare cores
//! can overlap generation ([`SourceMode`]) — so a sweep point is exactly
//! the simulation a standalone [`ClusterSimulator`] run of that
//! configuration would be; the single-machine
//! [`Experiment`](crate::Experiment) builder is now a thin one-point sweep
//! over this engine.
//!
//! ```no_run
//! use dsm_bench::{Axis, ExperimentScale, Metric, Sweep};
//! use dsm_core::{MigRep, System};
//!
//! let result = Sweep::new("page/block grid")
//!     .cluster_nodes([8, 16, 96])
//!     .page_bytes([1024, 4096, 16384])
//!     .block_bytes([32, 64, 128])
//!     .system(System::cc_numa().with(MigRep::both()).build())
//!     .system(System::r_numa().build())
//!     .workloads(["radix"])
//!     .scale(ExperimentScale::Reduced)
//!     .run();
//! println!(
//!     "{}",
//!     dsm_bench::report::format_sweep_table(
//!         &result,
//!         Axis::PageBytes,
//!         Axis::BlockBytes,
//!         Metric::NormalizedTime
//!     )
//! );
//! ```
//!
//! Every execution time is normalized against a designated baseline system
//! (perfect CC-NUMA by default) simulated at the *same* machine point, cost
//! model and workload — the paper's normalization discipline, held pointwise
//! across the grid.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::cache_key::{point_key, CacheKey};
use crate::presets::{ExperimentScale, SystemSet};
use crate::runner::default_threads;
use dsm_core::{
    ClusterSimulator, CostModel, MachineConfig, ShardedSimulator, SimResult, SystemConfig,
    Thresholds,
};
use dsm_protocol::MsgKind;
use mem_trace::{Geometry, ProgramTrace, ReplaySource, Topology, TraceSource};
use sim_engine::Cycles;
use splash_workloads::{by_name, WorkloadConfig};

/// The axes a sweep point is addressed by (see [`AxisValues::value`] and
/// [`SweepResult::group_by`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Cluster nodes.
    Nodes,
    /// Processors per node.
    ProcsPerNode,
    /// Page size in bytes.
    PageBytes,
    /// Cache-block size in bytes.
    BlockBytes,
    /// Cost-model label.
    Cost,
    /// Thresholds label.
    Thresholds,
    /// R-NUMA relocation delay.
    RelocationDelay,
    /// Problem scale (reduced / paper / custom multiples of Table 2).
    Scale,
    /// System display name.
    System,
    /// Workload name.
    Workload,
}

impl Axis {
    /// Every axis, in report-column order.
    pub const ALL: [Axis; 10] = [
        Axis::Nodes,
        Axis::ProcsPerNode,
        Axis::PageBytes,
        Axis::BlockBytes,
        Axis::Cost,
        Axis::Thresholds,
        Axis::RelocationDelay,
        Axis::Scale,
        Axis::System,
        Axis::Workload,
    ];

    /// Short lowercase name used in CSV/JSON columns.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Nodes => "nodes",
            Axis::ProcsPerNode => "procs_per_node",
            Axis::PageBytes => "page_bytes",
            Axis::BlockBytes => "block_bytes",
            Axis::Cost => "cost",
            Axis::Thresholds => "thresholds",
            Axis::RelocationDelay => "relocation_delay",
            Axis::Scale => "scale",
            Axis::System => "system",
            Axis::Workload => "workload",
        }
    }
}

/// Where one sweep point sits on every axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisValues {
    /// Cluster nodes.
    pub nodes: u16,
    /// Processors per node.
    pub procs_per_node: u16,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Cache-block size in bytes.
    pub block_bytes: u64,
    /// Cost-model axis label (`"default"` when the axis is not swept).
    pub cost: String,
    /// Thresholds axis label (`"default"` when the axis is not swept).
    pub thresholds: String,
    /// Relocation-delay axis value (`None` when the axis is not swept).
    pub relocation_delay: Option<u64>,
    /// Problem-scale label (`"reduced"`, `"paper"`, `"x2"`, ...).
    pub scale: String,
    /// System display name.
    pub system: String,
    /// Workload name.
    pub workload: String,
}

impl AxisValues {
    /// This point's value on `axis`, rendered for grouping and reports.
    pub fn value(&self, axis: Axis) -> String {
        match axis {
            Axis::Nodes => self.nodes.to_string(),
            Axis::ProcsPerNode => self.procs_per_node.to_string(),
            Axis::PageBytes => self.page_bytes.to_string(),
            Axis::BlockBytes => self.block_bytes.to_string(),
            Axis::Cost => self.cost.clone(),
            Axis::Thresholds => self.thresholds.clone(),
            Axis::RelocationDelay => self
                .relocation_delay
                .map_or_else(|| "default".to_string(), |d| d.to_string()),
            Axis::Scale => self.scale.clone(),
            Axis::System => self.system.clone(),
            Axis::Workload => self.workload.clone(),
        }
    }
}

/// Where a sweep's traces come from.
#[derive(Debug, Clone)]
enum WorkloadSpec {
    /// A named Table 2 workload, stream-generated per job at the job
    /// machine's topology.
    Named(String),
    /// A pre-built trace supplied by the caller (fixed topology: the sweep
    /// must not sweep machine axes across it).
    Trace(ProgramTrace),
    /// A recorded trace file, re-opened and streamed per job.
    Replay(PathBuf),
}

impl WorkloadSpec {
    fn display_name(&self) -> String {
        match self {
            WorkloadSpec::Named(n) => n.clone(),
            WorkloadSpec::Trace(t) => t.name.clone(),
            WorkloadSpec::Replay(p) => ReplaySource::open(p)
                .unwrap_or_else(|e| panic!("cannot open replay file {p:?}: {e}"))
                .name()
                .to_string(),
        }
    }
}

/// One materialized job of a sweep: the machine, the system and the
/// workload it will simulate, plus its axis address.
#[derive(Debug, Clone)]
pub struct ParamPoint {
    /// The materialized machine (topology + geometry + L1).
    pub machine: MachineConfig,
    /// The materialized system configuration.
    pub system: SystemConfig,
    /// The problem scale named workloads generate at.
    pub scale: ExperimentScale,
    /// Axis address of this point.
    pub axes: AxisValues,
    /// Index into the sweep's workload list.
    workload_index: usize,
}

impl ParamPoint {
    /// The content address of this point: a stable digest of
    /// (workload + scale, machine, system) — see [`crate::cache_key`].
    /// Equal keys mean bit-identical simulation results, so a cache keyed
    /// by this value can substitute a stored [`SimResult`] for a run.
    pub fn cache_key(&self) -> CacheKey {
        point_key(&self.machine, &self.system, self.scale, &self.axes.workload)
    }
}

/// The cartesian product a sweep will run: baseline jobs (one per
/// machine-point x cost x workload) plus every compared point.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// Baseline jobs, in enumeration order.
    pub baselines: Vec<ParamPoint>,
    /// Compared-system jobs, in enumeration order (machine axes outermost,
    /// then cost, workload, thresholds, relocation delay, system).
    pub points: Vec<ParamPoint>,
}

impl ParamSpace {
    /// Total simulations the sweep will run.
    pub fn len(&self) -> usize {
        self.baselines.len() + self.points.len()
    }

    /// `true` if the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a sweep job's named workloads are streamed into the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// Decide per run: fused when the worker threads already saturate the
    /// machine's cores (every core runs a simulation, so a generator
    /// thread would only contend), threaded when spare cores can overlap
    /// generation with simulation.  Either choice is bit-identical in
    /// results.
    #[default]
    Auto,
    /// Always run the generator inside the simulator's pull loop.
    Fused,
    /// Always run the generator on its own thread behind a channel.
    Threaded,
}

impl SourceMode {
    /// Resolve `Auto` against the worker-thread count actually running.
    fn use_fused(self, worker_threads: usize) -> bool {
        match self {
            SourceMode::Fused => true,
            SourceMode::Threaded => false,
            SourceMode::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                worker_threads >= cores
            }
        }
    }
}

/// Builder for a parameter-space sweep.  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Sweep {
    name: String,
    base: MachineConfig,
    nodes: Vec<u16>,
    procs_per_node: Vec<u16>,
    page_bytes: Vec<u64>,
    block_bytes: Vec<u64>,
    costs: Vec<(String, CostModel)>,
    thresholds: Vec<(String, Thresholds)>,
    relocation_delays: Vec<u64>,
    systems: Vec<SystemConfig>,
    baseline: SystemConfig,
    workloads: Vec<WorkloadSpec>,
    scales: Vec<ExperimentScale>,
    source_mode: SourceMode,
    threads: usize,
    workers: usize,
}

impl Sweep {
    /// Start a sweep named `name` on the paper's base machine, normalized
    /// against perfect CC-NUMA, over all seven Table 2 workloads at reduced
    /// scale.
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            base: MachineConfig::PAPER,
            nodes: Vec::new(),
            procs_per_node: Vec::new(),
            page_bytes: Vec::new(),
            block_bytes: Vec::new(),
            costs: Vec::new(),
            thresholds: Vec::new(),
            relocation_delays: Vec::new(),
            systems: Vec::new(),
            baseline: dsm_core::System::perfect_cc_numa().build(),
            workloads: splash_workloads::names()
                .into_iter()
                .map(|n| WorkloadSpec::Named(n.to_string()))
                .collect(),
            scales: vec![ExperimentScale::Reduced],
            source_mode: SourceMode::Auto,
            threads: default_threads(),
            workers: 1,
        }
    }

    /// The base machine axes default to (its L1 sizing also rides along).
    pub fn machine(mut self, base: MachineConfig) -> Self {
        self.base = base;
        self
    }

    /// Sweep the cluster-node count.
    pub fn cluster_nodes(mut self, nodes: impl IntoIterator<Item = u16>) -> Self {
        self.nodes = nodes.into_iter().collect();
        self
    }

    /// Sweep the processors-per-node count.
    pub fn procs_per_node(mut self, procs: impl IntoIterator<Item = u16>) -> Self {
        self.procs_per_node = procs.into_iter().collect();
        self
    }

    /// Sweep the page size (bytes, powers of two).
    pub fn page_bytes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.page_bytes = sizes.into_iter().collect();
        self
    }

    /// Sweep the cache-block size (bytes, powers of two).
    pub fn block_bytes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.block_bytes = sizes.into_iter().collect();
        self
    }

    /// Add a labeled cost-model axis value.  The cost axis applies to the
    /// baseline too, so each point normalizes against a baseline with the
    /// same costs (the paper's Figure 7 discipline).
    pub fn cost(mut self, label: impl Into<String>, costs: CostModel) -> Self {
        self.costs.push((label.into(), costs));
        self
    }

    /// Add a labeled thresholds axis value (applies to compared systems
    /// only; the baseline has no policies).
    pub fn thresholds(mut self, label: impl Into<String>, thresholds: Thresholds) -> Self {
        self.thresholds.push((label.into(), thresholds));
        self
    }

    /// Sweep the R-NUMA relocation delay (applies to compared systems only).
    pub fn relocation_delays(mut self, delays: impl IntoIterator<Item = u64>) -> Self {
        self.relocation_delays = delays.into_iter().collect();
        self
    }

    /// Add a compared system template.  Axis values (cost, thresholds,
    /// delay) are folded onto a clone of the template per point.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.systems.push(system);
        self
    }

    /// Add every system of a preset [`SystemSet`] (and adopt its baseline).
    pub fn system_set(mut self, set: SystemSet) -> Self {
        self.baseline = set.baseline;
        self.systems.extend(set.systems);
        self
    }

    /// Replace the normalization baseline system (default: perfect
    /// CC-NUMA).
    pub fn baseline(mut self, baseline: SystemConfig) -> Self {
        self.baseline = baseline;
        self
    }

    /// Restrict to the given Table 2 workloads.
    ///
    /// # Panics
    /// Panics on a name not in the catalog.
    pub fn workloads<I, S>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = workloads
            .into_iter()
            .map(|w| {
                let name = w.into();
                assert!(by_name(&name).is_some(), "unknown workload {name}");
                WorkloadSpec::Named(name)
            })
            .collect();
        self
    }

    /// Run on pre-built traces instead of named workloads.  Traces carry a
    /// fixed topology, so the sweep must not also sweep machine axes.
    pub fn traces(mut self, traces: Vec<ProgramTrace>) -> Self {
        self.workloads = traces.into_iter().map(WorkloadSpec::Trace).collect();
        self
    }

    /// Add a recorded trace file as a workload (re-opened and streamed per
    /// job; see [`mem_trace::replay`]).  Call repeatedly for several files.
    /// The first call replaces any named-workload selection.
    pub fn replay(mut self, path: impl Into<PathBuf>) -> Self {
        if !matches!(self.workloads.first(), Some(WorkloadSpec::Replay(_))) {
            self.workloads.clear();
        }
        self.workloads.push(WorkloadSpec::Replay(path.into()));
        self
    }

    /// Problem/parameter scale for named workloads (a single value; use
    /// [`Sweep::scales`] to sweep the axis).
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scales = vec![scale];
        self
    }

    /// Sweep the problem scale itself: each value generates its own traces
    /// (and normalizes against a baseline at the same scale), so reduced,
    /// paper and bigger-than-paper problems sit on one grid.
    pub fn scales(mut self, scales: impl IntoIterator<Item = ExperimentScale>) -> Self {
        self.scales = scales.into_iter().collect();
        assert!(
            !self.scales.is_empty(),
            "Sweep::scales needs at least one scale"
        );
        self
    }

    /// How named workloads are streamed (default [`SourceMode::Auto`]).
    pub fn source_mode(mut self, mode: SourceMode) -> Self {
        self.source_mode = mode;
        self
    }

    /// Number of simulation worker threads (at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shard each simulation across `workers` worker threads (`0` = auto,
    /// one per available core; the default `1` is the exact serial path).
    /// Results are bit-identical at any worker count — sharding changes
    /// wall-clock, never the answer — so cached results remain valid.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Materialize the cartesian parameter space without running it.
    ///
    /// # Panics
    /// Panics if no compared system was added, or if machine axes are swept
    /// over fixed-topology (pre-built trace) workloads.
    pub fn space(&self) -> ParamSpace {
        assert!(
            !self.systems.is_empty(),
            "Sweep::system(..) must add at least one compared system"
        );
        let nodes = non_empty(&self.nodes, self.base.topology.nodes);
        let procs = non_empty(&self.procs_per_node, self.base.topology.procs_per_node);
        let pages = non_empty(&self.page_bytes, self.base.geometry.page_bytes);
        let blocks = non_empty(&self.block_bytes, self.base.geometry.block_bytes);
        let machine_points = nodes.len() * procs.len() * pages.len() * blocks.len();
        if machine_points > 1 {
            assert!(
                self.workloads
                    .iter()
                    .all(|w| !matches!(w, WorkloadSpec::Trace(_))),
                "machine axes cannot be swept over pre-built traces \
                 (their topology is fixed); use named workloads"
            );
        }
        // Option-shaped axes: `None` = inherit from the system template.
        let costs: Vec<Option<&(String, CostModel)>> = option_axis(&self.costs);
        let thresholds: Vec<Option<&(String, Thresholds)>> = option_axis(&self.thresholds);
        let delays: Vec<Option<u64>> = if self.relocation_delays.is_empty() {
            vec![None]
        } else {
            self.relocation_delays.iter().copied().map(Some).collect()
        };

        let workload_names: Vec<String> = self
            .workloads
            .iter()
            .map(WorkloadSpec::display_name)
            .collect();

        let mut space = ParamSpace {
            baselines: Vec::new(),
            points: Vec::new(),
        };
        for &n in &nodes {
            for &ppn in &procs {
                for &page in &pages {
                    for &block in &blocks {
                        let machine = self
                            .base
                            .with_topology(Topology::new(n, ppn))
                            .with_geometry(Geometry::new(page, block));
                        for cost in &costs {
                            for &scale in &self.scales {
                                for (w, workload) in workload_names.iter().enumerate() {
                                    let axes =
                                        |system: &SystemConfig, thr: &str, delay: Option<u64>| {
                                            AxisValues {
                                                nodes: n,
                                                procs_per_node: ppn,
                                                page_bytes: page,
                                                block_bytes: block,
                                                cost: cost.map_or_else(
                                                    || "default".to_string(),
                                                    |c| c.0.clone(),
                                                ),
                                                thresholds: thr.to_string(),
                                                relocation_delay: delay,
                                                scale: scale.label(),
                                                system: system.name.clone(),
                                                workload: workload.clone(),
                                            }
                                        };
                                    let mut baseline = self.baseline.clone();
                                    if let Some((_, c)) = cost {
                                        baseline = baseline.with_costs(*c);
                                    }
                                    space.baselines.push(ParamPoint {
                                        machine,
                                        axes: axes(&baseline, "default", None),
                                        system: baseline,
                                        scale,
                                        workload_index: w,
                                    });
                                    for thr in &thresholds {
                                        for &delay in &delays {
                                            for template in &self.systems {
                                                let mut system = template.clone();
                                                if let Some((_, c)) = cost {
                                                    system = system.with_costs(*c);
                                                }
                                                if let Some((_, t)) = thr {
                                                    system = system.with_thresholds(*t);
                                                }
                                                if let Some(d) = delay {
                                                    system.thresholds =
                                                        system.thresholds.with_relocation_delay(d);
                                                }
                                                space.points.push(ParamPoint {
                                                    machine,
                                                    axes: axes(
                                                        &system,
                                                        thr.map_or("default", |t| t.0.as_str()),
                                                        delay,
                                                    ),
                                                    system,
                                                    scale,
                                                    workload_index: w,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        space
    }

    /// Run every job of [`Sweep::space`] (in parallel across worker
    /// threads; each job streams its own deterministic trace) and collect a
    /// [`SweepResult`] with every point normalized against its baseline.
    ///
    /// # Panics
    /// Panics on an invalid space (see [`Sweep::space`]), a worker-thread
    /// panic, an unreadable replay file, or a trace/machine topology
    /// mismatch.
    pub fn run(self) -> SweepResult {
        self.run_streaming(|_, _| None, |_| {})
    }

    /// [`Sweep::run`] with a result cache and incremental delivery — the
    /// engine behind the `sweep-service` crate.
    ///
    /// Before simulating a job, `lookup` is consulted with the job's
    /// [`ParamPoint`] and [`CacheKey`]; returning `Some(result)` substitutes
    /// the stored result for the simulation (the caller guarantees the
    /// result belongs to the key — the key construction guarantees it is
    /// then bit-identical to a fresh run).  As each job completes, `on_event`
    /// receives a [`SweepEvent`] carrying the result, its key, whether it
    /// was served from cache, and — for compared points — its normalization.
    /// Jobs run in two phases (all baselines, then all points, each phase
    /// parallel across worker threads) so every point event can carry its
    /// normalized time the moment the point completes; events within a phase
    /// fire in completion order, serialized through a lock around the sink.
    ///
    /// Cache lookups apply only to *named* workloads: pre-built traces and
    /// replay files contribute trace content the key does not capture, so
    /// their jobs always simulate.
    ///
    /// # Panics
    /// As [`Sweep::run`].
    pub fn run_streaming<L, F>(self, lookup: L, on_event: F) -> SweepResult
    where
        L: Fn(&ParamPoint, CacheKey) -> Option<SimResult> + Sync,
        F: FnMut(SweepEvent<'_>) + Send,
    {
        let space = self.space();
        let workloads = &self.workloads;

        // Fused (generator inside the pull loop) when the workers already
        // saturate the cores; threaded (generator on its own thread) when
        // spare cores can overlap generation with simulation.  The results
        // are bit-identical either way — only wall-clock differs.
        let threads = self.threads.max(1);
        let fused = self.source_mode.use_fused(threads.min(space.len().max(1)));

        let run_job = |point: &ParamPoint| -> Outcome {
            let cache_key = point.cache_key();
            let cacheable = matches!(&workloads[point.workload_index], WorkloadSpec::Named(_));
            // dsm-lint: allow(wall-clock, per-job elapsed_seconds is harness reporting; simulated time comes from the cost model)
            let start = std::time::Instant::now(); // dsm-lint: allow(det-taint, elapsed_seconds is harness telemetry on the outcome envelope; SimResult and its fingerprint are computed only from simulation state)
            if cacheable {
                if let Some(result) = lookup(point, cache_key) {
                    return Outcome {
                        result,
                        elapsed_seconds: start.elapsed().as_secs_f64(),
                        cache_key,
                        cached: true,
                    };
                }
            }
            // `workers != 1` shards the simulation (scheduler + supply);
            // the result is bit-identical to the serial path, so the two
            // branches share cache entries and golden fingerprints.
            let sharded = (self.workers != 1)
                .then(|| dsm_core::resolve_workers(self.workers, &point.machine))
                .filter(|&w| w > 1);
            let result = match &workloads[point.workload_index] {
                WorkloadSpec::Named(name) => {
                    let workload =
                        // dsm-lint: allow(panic-path, unreachable from the service: build_sweep validates workload names against the catalog before run_streaming)
                        by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
                    let cfg = WorkloadConfig::at_scale(point.scale.workload_scale())
                        .with_topology(point.machine.topology);
                    if let Some(w) = sharded {
                        let sim = ShardedSimulator::new(point.machine, point.system.clone(), w);
                        let mut source = splash_workloads::sharded(workload.as_ref(), &cfg, w);
                        sim.run_source(&mut source)
                    } else if fused {
                        let sim = ClusterSimulator::new(point.machine, point.system.clone());
                        let mut source = splash_workloads::fused(workload.as_ref(), &cfg);
                        sim.run_source(&mut source)
                    } else {
                        let sim = ClusterSimulator::new(point.machine, point.system.clone());
                        let mut source = splash_workloads::stream_threaded(workload, cfg);
                        sim.run_source(&mut source)
                    }
                }
                WorkloadSpec::Trace(trace) => match sharded {
                    Some(w) => ShardedSimulator::new(point.machine, point.system.clone(), w)
                        .run_source(&mut trace.source()),
                    None => ClusterSimulator::new(point.machine, point.system.clone()).run(trace),
                },
                WorkloadSpec::Replay(path) => {
                    let mut replay = ReplaySource::open(path)
                        // dsm-lint: allow(panic-path, service requests cannot name Replay specs — build_sweep only accepts catalog workloads; replay paths are CLI operator input where fail-fast is wanted)
                        .unwrap_or_else(|e| panic!("cannot open replay file {path:?}: {e}"));
                    match sharded {
                        Some(w) => ShardedSimulator::new(point.machine, point.system.clone(), w)
                            .run_source(&mut replay),
                        None => ClusterSimulator::new(point.machine, point.system.clone())
                            .run_source(&mut replay),
                    }
                }
            };
            Outcome {
                result,
                elapsed_seconds: start.elapsed().as_secs_f64(),
                cache_key,
                cached: false,
            }
        };

        // One scheduling pass per phase: each worker claims the next
        // unclaimed job, placement is by index, so result order is
        // deterministic regardless of thread interleaving.  Events fire as
        // jobs complete, serialized through the sink lock.
        let sink = Mutex::new(on_event);
        let run_phase = |jobs: &[ParamPoint], emit: &NormalizeFn<'_>| -> Vec<Outcome> {
            let table: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; jobs.len()]);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(jobs.len()).max(1) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let outcome = run_job(&jobs[i]);
                        let normalization = emit(i, &jobs[i], &outcome);
                        // A poisoned lock means a sibling worker panicked
                        // mid-event or mid-store.  Stop claiming jobs and
                        // return: thread::scope re-raises the sibling's
                        // panic at the join, which is the one we want to
                        // see — not a second "poisoned" panic on top of it.
                        {
                            let Ok(mut on_event) = sink.lock() else {
                                return;
                            };
                            (*on_event)(SweepEvent::new(i, &jobs[i], &outcome, normalization));
                        }
                        match table.lock() {
                            Ok(mut table) => table[i] = Some(outcome),
                            Err(_) => return,
                        }
                    });
                }
            });
            // Reaching here means every worker returned normally (a panic
            // would have propagated out of thread::scope above), so the
            // poison recovery is vacuous and every slot is filled.
            table
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .into_iter()
                // dsm-lint: allow(panic-path, every index in 0..jobs.len() is claimed and stored exactly once; a worker panic would have re-raised out of thread::scope before this line)
                .map(|o| o.expect("job result missing"))
                .collect()
        };

        // Phase 1: every baseline.
        let baseline_outcomes = run_phase(&space.baselines, &|_, _, _| None);
        let baselines: Vec<BaselinePoint> = space
            .baselines
            .iter()
            .zip(&baseline_outcomes)
            .map(|(p, o)| BaselinePoint {
                axes: p.axes.clone(),
                result: o.result.clone(),
                elapsed_seconds: o.elapsed_seconds,
                cache_key: o.cache_key,
                cached: o.cached,
            })
            .collect();

        // Pair each point against the space's baseline ParamPoints, which
        // carry the workload *index* — display names may collide (two
        // replay files recorded from the same generator), and axes alone
        // would then pick the wrong baseline.
        let baseline_at: Vec<usize> = space
            .points
            .iter()
            .map(|p| {
                space
                    .baselines
                    .iter()
                    .position(|b| shares_baseline_point(b, p))
                    // dsm-lint: allow(panic-path, SweepSpace construction creates a baseline for every point's machine/cost/workload; a miss is a construction bug not request-dependent)
                    .expect("every point has a baseline at its machine/cost/workload")
            })
            .collect();

        // Phase 2: every compared point, normalized against its (now
        // complete) baseline at event time.
        let normalize = |i: usize, _p: &ParamPoint, o: &Outcome| -> Option<(Cycles, f64)> {
            let baseline = &baseline_outcomes[baseline_at[i]].result;
            Some((
                baseline.execution_time,
                o.result.normalized_against(baseline),
            ))
        };
        let point_outcomes = run_phase(&space.points, &normalize);
        let points = space
            .points
            .iter()
            .zip(&point_outcomes)
            .enumerate()
            .map(|(i, (p, o))| {
                let baseline = &baseline_outcomes[baseline_at[i]].result;
                PointResult {
                    axes: p.axes.clone(),
                    normalized_time: o.result.normalized_against(baseline),
                    baseline_time: baseline.execution_time,
                    result: o.result.clone(),
                    elapsed_seconds: o.elapsed_seconds,
                    cache_key: o.cache_key,
                    cached: o.cached,
                }
            })
            .collect();

        SweepResult {
            name: self.name,
            baseline_system: self.baseline.name,
            workers: self.workers,
            baselines,
            points,
        }
    }
}

/// Per-job normalization hook for `run_streaming`'s phases: yields the
/// baseline (execution time, elapsed seconds) for compared points, `None`
/// for baseline jobs.
type NormalizeFn<'a> = dyn Fn(usize, &ParamPoint, &Outcome) -> Option<(Cycles, f64)> + Sync + 'a;

/// What one job produced, however it was satisfied.
#[derive(Debug, Clone)]
struct Outcome {
    result: SimResult,
    elapsed_seconds: f64,
    cache_key: CacheKey,
    cached: bool,
}

/// One completed job, delivered incrementally by [`Sweep::run_streaming`].
#[derive(Debug, Clone, Copy)]
pub enum SweepEvent<'a> {
    /// A baseline job completed.
    Baseline {
        /// Index into [`ParamSpace::baselines`] / [`SweepResult::baselines`].
        index: usize,
        /// The job that completed.
        point: &'a ParamPoint,
        /// The job's content address.
        cache_key: CacheKey,
        /// The simulation result.
        result: &'a SimResult,
        /// Wall-clock seconds the job took (near zero when cached).
        elapsed_seconds: f64,
        /// `true` if the result came from the cache lookup, not a run.
        cached: bool,
    },
    /// A compared point completed (baselines all precede points, so its
    /// normalization is final).
    Point {
        /// Index into [`ParamSpace::points`] / [`SweepResult::points`].
        index: usize,
        /// The job that completed.
        point: &'a ParamPoint,
        /// The job's content address.
        cache_key: CacheKey,
        /// The simulation result.
        result: &'a SimResult,
        /// Execution time of the matching baseline job.
        baseline_time: Cycles,
        /// `result.execution_time / baseline_time`.
        normalized_time: f64,
        /// Wall-clock seconds the job took (near zero when cached).
        elapsed_seconds: f64,
        /// `true` if the result came from the cache lookup, not a run.
        cached: bool,
    },
}

impl<'a> SweepEvent<'a> {
    fn new(
        index: usize,
        point: &'a ParamPoint,
        outcome: &'a Outcome,
        normalization: Option<(Cycles, f64)>,
    ) -> Self {
        match normalization {
            None => SweepEvent::Baseline {
                index,
                point,
                cache_key: outcome.cache_key,
                result: &outcome.result,
                elapsed_seconds: outcome.elapsed_seconds,
                cached: outcome.cached,
            },
            Some((baseline_time, normalized_time)) => SweepEvent::Point {
                index,
                point,
                cache_key: outcome.cache_key,
                result: &outcome.result,
                baseline_time,
                normalized_time,
                elapsed_seconds: outcome.elapsed_seconds,
                cached: outcome.cached,
            },
        }
    }

    /// The completed job's content address.
    pub fn cache_key(&self) -> CacheKey {
        match self {
            SweepEvent::Baseline { cache_key, .. } | SweepEvent::Point { cache_key, .. } => {
                *cache_key
            }
        }
    }

    /// The completed job's result.
    pub fn result(&self) -> &'a SimResult {
        match self {
            SweepEvent::Baseline { result, .. } | SweepEvent::Point { result, .. } => result,
        }
    }

    /// `true` if the job was served from cache.
    pub fn cached(&self) -> bool {
        match self {
            SweepEvent::Baseline { cached, .. } | SweepEvent::Point { cached, .. } => *cached,
        }
    }
}

/// `true` if `point` normalizes against `baseline`: same machine point,
/// cost label, problem scale, and the same workload *by index* (display
/// names may collide).
fn shares_baseline_point(baseline: &ParamPoint, point: &ParamPoint) -> bool {
    baseline.workload_index == point.workload_index
        && baseline.axes.nodes == point.axes.nodes
        && baseline.axes.procs_per_node == point.axes.procs_per_node
        && baseline.axes.page_bytes == point.axes.page_bytes
        && baseline.axes.block_bytes == point.axes.block_bytes
        && baseline.axes.cost == point.axes.cost
        && baseline.axes.scale == point.axes.scale
}

fn non_empty<T: Copy>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        axis.to_vec()
    }
}

fn option_axis<T>(axis: &[T]) -> Vec<Option<&T>> {
    if axis.is_empty() {
        vec![None]
    } else {
        axis.iter().map(Some).collect()
    }
}

/// One simulated sweep point with its normalization.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Axis address.
    pub axes: AxisValues,
    /// The full simulation result (per-node counters, traffic matrix).
    pub result: SimResult,
    /// Execution time of the matching baseline job.
    pub baseline_time: Cycles,
    /// `result.execution_time / baseline_time` — the paper's normalized
    /// execution time at this point.
    pub normalized_time: f64,
    /// Wall-clock seconds the job took (perf trajectory; never feeds
    /// simulation results).
    pub elapsed_seconds: f64,
    /// The point's content address (see [`ParamPoint::cache_key`]) —
    /// joinable with the sweep service's cache and `cache-stats` output.
    pub cache_key: CacheKey,
    /// `true` if the result was served from a [`Sweep::run_streaming`]
    /// cache lookup instead of a simulation.
    pub cached: bool,
}

impl PointResult {
    /// The point's metric bundle (see [`MetricSet`]).
    pub fn metrics(&self) -> MetricSet {
        MetricSet::of(&self.result, self.normalized_time)
    }
}

/// One simulated baseline job.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// Axis address (system = the baseline system; thresholds/delay axes
    /// are `"default"`/`None`, as the baseline has no policies).
    pub axes: AxisValues,
    /// The full simulation result.
    pub result: SimResult,
    /// Wall-clock seconds the job took.
    pub elapsed_seconds: f64,
    /// The baseline job's content address.
    pub cache_key: CacheKey,
    /// `true` if the result was served from a cache lookup.
    pub cached: bool,
}

/// The complete outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Sweep name.
    pub name: String,
    /// Display name of the normalization baseline system.
    pub baseline_system: String,
    /// Requested per-simulation worker count (`0` = auto, `1` = serial) —
    /// recorded so emitted reports say what produced them.
    pub workers: usize,
    /// Baseline jobs, one per (machine point x cost x workload).
    pub baselines: Vec<BaselinePoint>,
    /// Every compared point, in [`ParamSpace`] enumeration order.
    pub points: Vec<PointResult>,
}

impl SweepResult {
    /// Group the points by their value on `axis`, preserving first-seen
    /// order of the values and point order within each group.
    pub fn group_by(&self, axis: Axis) -> Vec<(String, Vec<&PointResult>)> {
        let mut groups: Vec<(String, Vec<&PointResult>)> = Vec::new();
        for p in &self.points {
            let v = p.axes.value(axis);
            match groups.iter_mut().find(|(g, _)| *g == v) {
                Some((_, members)) => members.push(p),
                None => groups.push((v, vec![p])),
            }
        }
        groups
    }

    /// The distinct values of `axis` across the points, first-seen order.
    pub fn axis_values(&self, axis: Axis) -> Vec<String> {
        self.group_by(axis).into_iter().map(|(v, _)| v).collect()
    }

    /// Mean of `metric` over all points (0 for an empty sweep).
    pub fn mean_metric(&self, metric: Metric) -> f64 {
        mean(self.points.iter().map(|p| p.metrics().get(metric)))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Scalar metrics a report can pull out of a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Execution time normalized against the point's baseline.
    NormalizedTime,
    /// Execution time in cycles.
    ExecutionTime,
    /// Remote misses per node.
    RemoteMissesPerNode,
    /// Capacity/conflict remote misses per node.
    RemoteCapacityMissesPerNode,
    /// Page migrations per node.
    MigrationsPerNode,
    /// Page replications per node.
    ReplicationsPerNode,
    /// R-NUMA relocations per node.
    RelocationsPerNode,
    /// Total interconnect messages.
    NetworkMessages,
    /// Total interconnect bytes.
    NetworkBytes,
    /// Interconnect bytes per simulated access (the paper's traffic
    /// currency, comparable across problem scales).
    BytesPerAccess,
}

impl Metric {
    /// Short lowercase name used in CSV/JSON columns.
    pub fn name(self) -> &'static str {
        match self {
            Metric::NormalizedTime => "normalized_time",
            Metric::ExecutionTime => "execution_time",
            Metric::RemoteMissesPerNode => "remote_misses_per_node",
            Metric::RemoteCapacityMissesPerNode => "remote_capacity_misses_per_node",
            Metric::MigrationsPerNode => "migrations_per_node",
            Metric::ReplicationsPerNode => "replications_per_node",
            Metric::RelocationsPerNode => "relocations_per_node",
            Metric::NetworkMessages => "network_messages",
            Metric::NetworkBytes => "network_bytes",
            Metric::BytesPerAccess => "bytes_per_access",
        }
    }
}

/// A point's metric bundle: the scalar metrics plus the per-kind traffic
/// breakdown (the paper's comparison is fundamentally about traffic).
#[derive(Debug, Clone)]
pub struct MetricSet {
    /// Normalized execution time.
    pub normalized_time: f64,
    /// Execution time in cycles.
    pub execution_time: u64,
    /// Simulated shared-memory accesses.
    pub accesses: u64,
    /// Remote misses per node.
    pub remote_misses_per_node: f64,
    /// Capacity/conflict remote misses per node.
    pub remote_capacity_misses_per_node: f64,
    /// Page migrations per node.
    pub migrations_per_node: f64,
    /// Page replications per node.
    pub replications_per_node: f64,
    /// R-NUMA relocations per node.
    pub relocations_per_node: f64,
    /// Total interconnect messages.
    pub network_messages: u64,
    /// Total interconnect bytes.
    pub network_bytes: u64,
    /// Per-kind traffic breakdown: `(kind, messages, bytes)`.
    pub traffic: Vec<(&'static str, u64, u64)>,
}

impl MetricSet {
    /// Extract the bundle from a result.
    pub fn of(result: &SimResult, normalized_time: f64) -> Self {
        const KIND_NAMES: [&str; 10] = [
            "read_request",
            "read_reply",
            "write_request",
            "write_reply",
            "invalidation",
            "invalidation_ack",
            "write_back",
            "owner_forward",
            "page_control",
            "page_data_block",
        ];
        MetricSet {
            normalized_time,
            execution_time: result.execution_time.raw(),
            accesses: result.accesses,
            remote_misses_per_node: result.per_node_remote_misses(),
            remote_capacity_misses_per_node: result.per_node_remote_capacity_misses(),
            migrations_per_node: result.per_node_migrations(),
            replications_per_node: result.per_node_replications(),
            relocations_per_node: result.per_node_relocations(),
            network_messages: result.traffic.total_messages(),
            network_bytes: result.traffic.total_bytes(),
            traffic: MsgKind::ALL
                .iter()
                .zip(KIND_NAMES)
                .map(|(k, name)| {
                    (
                        name,
                        result.traffic.messages_of(*k),
                        result.traffic.bytes_of(*k),
                    )
                })
                .collect(),
        }
    }

    /// The value of a scalar [`Metric`].
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::NormalizedTime => self.normalized_time,
            Metric::ExecutionTime => self.execution_time as f64,
            Metric::RemoteMissesPerNode => self.remote_misses_per_node,
            Metric::RemoteCapacityMissesPerNode => self.remote_capacity_misses_per_node,
            Metric::MigrationsPerNode => self.migrations_per_node,
            Metric::ReplicationsPerNode => self.replications_per_node,
            Metric::RelocationsPerNode => self.relocations_per_node,
            Metric::NetworkMessages => self.network_messages as f64,
            Metric::NetworkBytes => self.network_bytes as f64,
            Metric::BytesPerAccess => {
                if self.accesses == 0 {
                    0.0
                } else {
                    self.network_bytes as f64 / self.accesses as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::{MigRep, System};

    fn small_thresholds() -> Thresholds {
        Thresholds {
            migrep_threshold: 250,
            migrep_reset_interval: 8_000,
            rnuma_threshold: 8,
            rnuma_relocation_delay: 0,
        }
    }

    #[test]
    fn space_enumerates_the_cartesian_product() {
        let sweep = Sweep::new("space")
            .cluster_nodes([2, 4])
            .page_bytes([2048, 4096])
            .block_bytes([64, 128])
            .cost("base", CostModel::base())
            .cost("slow", CostModel::slow())
            .system(System::cc_numa().build())
            .system(System::r_numa().build())
            .workloads(["lu"]);
        let space = sweep.space();
        // machine points: 2 nodes x 2 pages x 2 blocks = 8; costs 2;
        // workloads 1 -> 16 baselines; x 2 systems -> 32 points.
        assert_eq!(space.baselines.len(), 16);
        assert_eq!(space.points.len(), 32);
        assert_eq!(space.len(), 48);
        assert!(!space.is_empty());
        // Geometry actually materializes per point.
        let geometries: std::collections::BTreeSet<(u64, u64)> = space
            .points
            .iter()
            .map(|p| {
                (
                    p.machine.geometry.page_bytes,
                    p.machine.geometry.block_bytes,
                )
            })
            .collect();
        assert_eq!(geometries.len(), 4);
        // The L1 line size follows the block-size axis.
        for p in &space.points {
            assert_eq!(p.machine.l1.block_bytes, p.axes.block_bytes);
        }
    }

    #[test]
    fn single_point_sweep_matches_a_direct_simulation() {
        let t = small_thresholds();
        let system = System::cc_numa().with(MigRep::both()).with(t).build();
        let result = Sweep::new("single")
            .system(system.clone())
            .workloads(["ocean"])
            .threads(2)
            .run();
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.baselines.len(), 1);
        let trace = by_name("ocean")
            .unwrap()
            .generate(&WorkloadConfig::reduced());
        let direct = ClusterSimulator::new(MachineConfig::PAPER, system).run(&trace);
        assert_eq!(result.points[0].result, direct);
        assert!(result.points[0].normalized_time >= 0.99);
        assert_eq!(result.baseline_system, "Perfect-CC-NUMA");
    }

    #[test]
    fn group_by_covers_every_axis() {
        let result = Sweep::new("grid")
            .cluster_nodes([2, 4])
            .block_bytes([64, 128])
            .system(System::cc_numa().build())
            .workloads(["ocean"])
            .threads(8)
            .run();
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.axis_values(Axis::Nodes), vec!["2", "4"]);
        assert_eq!(result.axis_values(Axis::BlockBytes), vec!["64", "128"]);
        assert_eq!(result.axis_values(Axis::Workload), vec!["ocean"]);
        for (value, members) in result.group_by(Axis::Nodes) {
            assert_eq!(members.len(), 2, "nodes={value}");
            for p in members {
                assert_eq!(p.axes.value(Axis::Nodes), value);
                assert_eq!(p.result.per_node.len(), p.axes.nodes as usize);
            }
        }
        assert!(result.mean_metric(Metric::NormalizedTime) > 0.0);
        // Block size scales per-message data bytes: the 128-byte points
        // move at least as many bytes per message as the 64-byte points.
        let by_block = result.group_by(Axis::BlockBytes);
        let bytes_of = |points: &Vec<&PointResult>| {
            mean(
                points
                    .iter()
                    .map(|p| p.metrics().get(Metric::BytesPerAccess)),
            )
        };
        assert!(bytes_of(&by_block[1].1) > 0.0);
        assert!(bytes_of(&by_block[0].1) > 0.0);
    }

    #[test]
    fn scale_axis_generates_distinct_problem_sizes() {
        use splash_workloads::CustomScale;
        let result = Sweep::new("scales")
            .system(System::cc_numa().build())
            .workloads(["radix"])
            .scales([
                ExperimentScale::Custom(CustomScale::new(1, 32)),
                ExperimentScale::Custom(CustomScale::new(1, 16)),
            ])
            .threads(4)
            .run();
        assert_eq!(result.baselines.len(), 2, "one baseline per scale point");
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.axis_values(Axis::Scale), vec!["x1/32", "x1/16"]);
        // Bigger scale, bigger trace — the axis is live.
        assert!(result.points[1].result.accesses > result.points[0].result.accesses);
        // Each point normalizes against the baseline at its own scale.
        for p in &result.points {
            assert!(p.normalized_time >= 0.99, "{:?}", p.axes);
        }
        assert_ne!(
            result.points[0].baseline_time,
            result.points[1].baseline_time
        );
    }

    #[test]
    fn explicit_source_modes_are_bit_identical() {
        let run = |mode: SourceMode| {
            Sweep::new("mode parity")
                .system(System::cc_numa().build())
                .workloads(["ocean"])
                .source_mode(mode)
                .threads(2)
                .run()
        };
        let fused = run(SourceMode::Fused);
        let threaded = run(SourceMode::Threaded);
        assert_eq!(fused.points[0].result, threaded.points[0].result);
        assert_eq!(
            fused.baselines[0].result.fingerprint(),
            threaded.baselines[0].result.fingerprint()
        );
    }

    #[test]
    fn cost_axis_renormalizes_the_baseline() {
        let result = Sweep::new("costs")
            .cost("base", CostModel::base())
            .cost("far", CostModel::base().with_remote_latency_factor(4))
            .system(System::cc_numa().build())
            .workloads(["ocean"])
            .threads(4)
            .run();
        assert_eq!(result.baselines.len(), 2, "one baseline per cost point");
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert!(p.normalized_time >= 0.99, "{:?}", p.axes);
        }
        // The two points normalize against *different* baselines.
        assert_ne!(
            result.points[0].baseline_time,
            result.points[1].baseline_time
        );
    }

    #[test]
    fn metric_set_carries_the_traffic_breakdown() {
        let result = Sweep::new("metrics")
            .system(System::cc_numa().build())
            .workloads(["ocean"])
            .threads(2)
            .run();
        let m = result.points[0].metrics();
        assert_eq!(m.traffic.len(), 10);
        let total: u64 = m.traffic.iter().map(|(_, msgs, _)| msgs).sum();
        assert_eq!(total, m.network_messages);
        let bytes: u64 = m.traffic.iter().map(|(_, _, b)| b).sum();
        assert_eq!(bytes, m.network_bytes);
        assert!(m.get(Metric::BytesPerAccess) > 0.0);
        assert!(m.get(Metric::NetworkMessages) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one compared system")]
    fn sweep_without_systems_panics() {
        let _ = Sweep::new("empty").workloads(["ocean"]).space();
    }

    #[test]
    #[should_panic(expected = "machine axes cannot be swept over pre-built traces")]
    fn machine_axes_over_fixed_traces_are_rejected() {
        use mem_trace::{GlobalAddr, ProcId, TraceBuilder};
        let mut b = TraceBuilder::new("fixed", Topology::PAPER);
        b.read(ProcId(0), GlobalAddr(0));
        let _ = Sweep::new("bad")
            .cluster_nodes([8, 16])
            .system(System::cc_numa().build())
            .traces(vec![b.build()])
            .space();
    }
}
