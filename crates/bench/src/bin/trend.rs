//! `trend` — tabulate the measured perf trajectory: mean events/sec from
//! every committed `BENCH_*.json`, ordered by PR number, with per-PR
//! speedups (the ROADMAP's trend renderer).
//!
//! ```text
//! trend [DIR]
//! ```
//!
//! `DIR` defaults to the current directory (the repo root holds the
//! `BENCH_*.json` trajectory).

use dsm_bench::perf;
use std::path::PathBuf;

const USAGE: &str = "\
usage: trend [DIR]

Tabulates mean events/sec across all BENCH_*.json files in DIR (default:
the current directory), ordered by PR number.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("error: unknown flag `{flag}`\n{USAGE}");
        std::process::exit(2);
    }
    if args.len() > 1 {
        eprintln!("error: at most one DIR argument\n{USAGE}");
        std::process::exit(2);
    }
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let entries = match perf::collect_trend(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    if entries.is_empty() {
        eprintln!("no BENCH_*.json files found in {}", dir.display());
        std::process::exit(1);
    }
    print!("{}", perf::format_trend(&entries));
}
