//! Regenerates Table 4: per-node page operations (migrations, replications,
//! R-NUMA relocations) and remote-miss breakdowns for CC-NUMA,
//! CC-NUMA+MigRep and R-NUMA.
use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = opts.run_preset(presets::table4(opts.scale));
    print!("{}", report::format_table4(&result));
    opts.emit_artifacts(&result);
}
