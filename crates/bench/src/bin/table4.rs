//! Regenerates Table 4: per-node page operations (migrations, replications,
//! R-NUMA relocations) and remote-miss breakdowns for CC-NUMA,
//! CC-NUMA+MigRep and R-NUMA.
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::table4(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_table4(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
    if let Some(path) = &opts.out {
        report::write_json(path, &result).expect("write --out JSON");
    }
}
