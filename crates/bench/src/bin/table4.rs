//! Regenerates Table 4: per-node page operations (migrations, replications,
//! R-NUMA relocations) and remote-miss breakdowns for CC-NUMA,
//! CC-NUMA+MigRep and R-NUMA.

use dsm_bench::{presets, report, runner, Options};

fn main() {
    let opts = Options::from_env();
    let set = presets::table4(opts.scale);
    let result = runner::run_experiment(&set, &opts.workload_names(), opts.scale, opts.threads);
    print!("{}", report::format_table4(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
