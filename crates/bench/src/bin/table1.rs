//! Prints Table 1: the qualitative opportunity/overhead comparison of page
//! replication, page migration and R-NUMA, backed by measured per-node page
//! operation counts from a reduced-scale run of two representative
//! workloads (lu: replication-friendly; ocean: neither).

use dsm_bench::{presets, runner, Options};

fn main() {
    let opts = Options::from_env();
    println!("# Table 1: capacity/conflict miss reduction opportunity and overhead");
    println!(
        "{:<18} {:<14} {:<26} {:<14} {:<10} {}",
        "mechanism", "read-only", "read/write (low degree)", "(high degree)", "overhead", "frequency"
    );
    println!("{:<18} {:<14} {:<26} {:<14} {:<10} {}", "page replication", "yes", "no", "no", "high", "low");
    println!("{:<18} {:<14} {:<26} {:<14} {:<10} {}", "page migration", "no", "yes", "no", "high", "low");
    println!("{:<18} {:<14} {:<26} {:<14} {:<10} {}", "R-NUMA", "yes", "yes", "yes", "low", "much higher");
    println!();
    println!("# measured per-node page-operation counts supporting the frequency column");
    let workloads = ["lu", "ocean"];
    let set = presets::table4(opts.scale);
    let result = runner::run_experiment(&set, &workloads, opts.scale, opts.threads);
    let migrep = result.system_index("MigRep").expect("preset has MigRep");
    let rnuma = result.system_index("R-NUMA").expect("preset has R-NUMA");
    println!(
        "{:<10} {:>22} {:>22} {:>26}",
        "workload", "migrations/node", "replications/node", "R-NUMA relocations/node"
    );
    for w in &result.per_workload {
        println!(
            "{:<10} {:>22.1} {:>22.1} {:>26.1}",
            w.workload,
            w.results[migrep].per_node_migrations(),
            w.results[migrep].per_node_replications(),
            w.results[rnuma].per_node_relocations()
        );
    }
}
