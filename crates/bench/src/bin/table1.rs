//! Prints Table 1: the qualitative opportunity/overhead comparison of page
//! replication, page migration and R-NUMA, backed by measured per-node page
//! operation counts from a reduced-scale run of two representative
//! workloads (lu: replication-friendly; ocean: neither).

use dsm_bench::{presets, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    println!("# Table 1: capacity/conflict miss reduction opportunity and overhead");
    println!(
        "{:<18} {:<14} {:<26} {:<14} {:<10} frequency",
        "mechanism", "read-only", "read/write (low degree)", "(high degree)", "overhead"
    );
    println!(
        "{:<18} {:<14} {:<26} {:<14} {:<10} low",
        "page replication", "yes", "no", "no", "high"
    );
    println!(
        "{:<18} {:<14} {:<26} {:<14} {:<10} low",
        "page migration", "no", "yes", "no", "high"
    );
    println!(
        "{:<18} {:<14} {:<26} {:<14} {:<10} much higher",
        "R-NUMA", "yes", "yes", "yes", "low"
    );
    println!();
    println!("# measured per-node page-operation counts supporting the frequency column");
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::table4(opts.scale))
        .workloads(["lu", "ocean"])
        .scale(opts.scale)
        .threads(opts.threads)
        .run();
    let migrep = result.system_index("MigRep").expect("preset has MigRep");
    let rnuma = result.system_index("R-NUMA").expect("preset has R-NUMA");
    println!(
        "{:<10} {:>22} {:>22} {:>26}",
        "workload", "migrations/node", "replications/node", "R-NUMA relocations/node"
    );
    for w in &result.per_workload {
        println!(
            "{:<10} {:>22.1} {:>22.1} {:>26.1}",
            w.workload,
            w.results[migrep].per_node_migrations(),
            w.results[migrep].per_node_replications(),
            w.results[rnuma].per_node_relocations()
        );
    }
    opts.emit_artifacts(&result);
}
