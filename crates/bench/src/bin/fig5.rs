//! Regenerates Figure 5: base performance comparison of CC-NUMA, Rep, Mig,
//! MigRep, R-NUMA and R-NUMA-Inf, normalized against perfect CC-NUMA.

use dsm_bench::{presets, report, runner, Options};

fn main() {
    let opts = Options::from_env();
    let set = presets::figure5(opts.scale);
    let result = runner::run_experiment(&set, &opts.workload_names(), opts.scale, opts.threads);
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
