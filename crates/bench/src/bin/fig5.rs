//! Regenerates Figure 5: base performance comparison of CC-NUMA, Rep, Mig,
//! MigRep, R-NUMA and R-NUMA-Inf, normalized against perfect CC-NUMA.
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::figure5(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
