//! Regenerates Figure 5: base performance comparison of CC-NUMA, Rep, Mig,
//! MigRep, R-NUMA and R-NUMA-Inf, normalized against perfect CC-NUMA.
use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = opts.run_preset(presets::figure5(opts.scale));
    print!("{}", report::format_normalized_table(&result));
    opts.emit_artifacts(&result);
}
