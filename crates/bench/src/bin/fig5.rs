//! Regenerates Figure 5: base performance comparison of CC-NUMA, Rep, Mig,
//! MigRep, R-NUMA and R-NUMA-Inf, normalized against perfect CC-NUMA.
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::figure5(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
    if let Some(path) = &opts.out {
        report::write_json(path, &result).expect("write --out JSON");
    }
}
