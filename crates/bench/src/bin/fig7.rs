//! Regenerates Figure 7: sensitivity to network latency (remote path
//! stretched 4x).
use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = opts.run_preset(presets::figure7(opts.scale));
    print!("{}", report::format_normalized_table(&result));
    opts.emit_artifacts(&result);
}
