//! Regenerates Figure 7: sensitivity to network latency (remote path
//! stretched 4x).
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::figure7(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
