//! Regenerates Fig7 (see dsm_bench::presets::fig7 for the system set).

use dsm_bench::{presets, report, runner, Options};

fn main() {
    let opts = Options::from_env();
    let set = presets::figure7(opts.scale);
    let result = runner::run_experiment(&set, &opts.workload_names(), opts.scale, opts.threads);
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
