//! Perf benchmark: wall-clock throughput of the simulator per (workload,
//! system) job, written as machine-readable JSON for the perf trajectory
//! (`BENCH_*.json`).
//!
//! ```text
//! perf [--paper|--reduced] [--workloads a,b,c] [--repeats N] [--workers N]
//!      [--out FILE] [--baseline FILE] [--tolerance PCT]
//! ```
//!
//! Default: all seven Table 2 workloads at paper scale, three repeats per
//! job, printed to stdout.  With `--baseline FILE` the run additionally
//! compares its events/sec against the committed baseline JSON and exits
//! with status 1 if any job regressed more than `--tolerance` percent
//! (default 30) — the check behind the CI perf-smoke job.

use std::path::PathBuf;

use dsm_bench::cli::parse_workers;
use dsm_bench::perf;
use dsm_bench::presets::ExperimentScale;
use dsm_core::MachineConfig;

const USAGE: &str = "\
usage: perf [OPTIONS]

options:
  --paper              run the paper's Table 2 problem sizes (default)
  --reduced            run the reduced problem sizes (CI smoke scale)
  --workloads a,b,c    restrict to a comma-separated subset of the seven
                       workloads
  --repeats N          wall-clock repetitions per job; the best is reported
                       (default 3)
  --workers N|auto     shard each simulation across N worker threads
                       (`auto` = available cores, default 1 = serial);
                       simulation results are bit-identical either way
  --out FILE           write the JSON report to FILE as well as stdout
  --baseline FILE      compare events/sec against a committed baseline JSON
                       and fail on regression
  --tolerance PCT      allowed regression vs the baseline in percent
                       (default 30)
  -h, --help           print this help and exit";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut scale = ExperimentScale::Paper;
    let mut workloads: Vec<String> = splash_workloads::names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut repeats: u32 = 3;
    let mut workers: usize = 1;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance_pct: f64 = 30.0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .filter(|v| !v.starts_with('-'))
                .unwrap_or_else(|| fail(&format!("flag `{flag}` needs a value")))
        };
        match arg.as_str() {
            "--paper" => scale = ExperimentScale::Paper,
            "--reduced" => scale = ExperimentScale::Reduced,
            "--workloads" => {
                workloads = value("--workloads")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                for w in &workloads {
                    if splash_workloads::by_name(w).is_none() {
                        fail(&format!("unknown workload `{w}`"));
                    }
                }
            }
            "--repeats" => {
                repeats = value("--repeats")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("bad value for `--repeats`"));
            }
            "--workers" => {
                workers = parse_workers(&value("--workers"))
                    .unwrap_or_else(|_| fail("bad value for `--workers`"));
            }
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--tolerance" => {
                tolerance_pct = value("--tolerance")
                    .parse()
                    .ok()
                    .filter(|t: &f64| (0.0..100.0).contains(t))
                    .unwrap_or_else(|| fail("bad value for `--tolerance`"));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let systems = perf::default_systems(scale);
    let names: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let report = perf::measure_workers(
        MachineConfig::PAPER,
        &systems,
        &names,
        scale,
        repeats,
        workers,
    );

    for job in &report.jobs {
        eprintln!(
            "{:<10} {:<10} {:>9.3}s {:>12} accesses {:>12.0} events/sec",
            job.workload, job.system, job.elapsed_seconds, job.accesses, job.events_per_sec
        );
    }
    let json = perf::to_json(&report);
    println!("{json}");
    if let Some(path) = &out {
        if let Err(e) = perf::write_json(path, &report) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    if let Some(path) = &baseline {
        let baseline_json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("reading baseline {}: {e}", path.display())));
        let failures = perf::regression_failures(&report, &baseline_json, tolerance_pct / 100.0);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf regression: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "perf baseline check passed ({} jobs within {tolerance_pct}% of {})",
            report.jobs.len(),
            path.display()
        );
    }
}
