//! Prints Table 3: the cost model (block and page operation latencies) for
//! the base system, plus the slow-page-operation variant of Section 6.2.

use dsm_core::CostModel;

fn main() {
    print!("{}", dsm_bench::report::format_table3());
    println!();
    println!(
        "remote:local latency ratio  base={:.1}  (Figure 7 uses {:.1})",
        CostModel::base().remote_to_local_ratio(),
        CostModel::base()
            .with_remote_latency_factor(4)
            .remote_to_local_ratio()
    );
}
