//! Prints Table 2: the applications and their input parameters, both the
//! paper's originals and the reduced inputs this reproduction runs by
//! default.

fn main() {
    print!("{}", dsm_bench::report::format_table2());
}
