//! Runs every experiment (Figures 5-8, Tables 1-4) at the selected scale and
//! prints each report in sequence.  This is the binary EXPERIMENTS.md's
//! measured numbers are generated from.

use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }

    println!("== Table 2 ==");
    print!("{}", report::format_table2());
    println!("\n== Table 3 ==");
    print!("{}", report::format_table3());

    let mut all_results = Vec::new();
    for (label, set) in [
        ("Figure 5", presets::figure5(opts.scale)),
        ("Figure 6", presets::figure6(opts.scale)),
        ("Figure 7", presets::figure7(opts.scale)),
        ("Figure 8", presets::figure8(opts.scale)),
    ] {
        println!("\n== {label} ==");
        let result = opts.run_preset(set);
        print!("{}", report::format_normalized_table(&result));
        all_results.push(result);
    }

    println!("\n== Table 4 ==");
    let result = opts.run_preset(presets::table4(opts.scale));
    print!("{}", report::format_table4(&result));
    all_results.push(result);

    opts.emit_artifacts_all(&all_results);
}
