//! Regenerates Figure 6: sensitivity to page-operation overhead (fast vs
//! slow page-operation support for MigRep and R-NUMA).
use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = opts.run_preset(presets::figure6(opts.scale));
    print!("{}", report::format_normalized_table(&result));
    opts.emit_artifacts(&result);
}
