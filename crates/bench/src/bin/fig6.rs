//! Regenerates Figure 6: sensitivity to page-operation overhead (fast vs
//! slow page-operation support for MigRep and R-NUMA).
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::figure6(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
}
