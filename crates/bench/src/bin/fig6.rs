//! Regenerates Figure 6: sensitivity to page-operation overhead (fast vs
//! slow page-operation support for MigRep and R-NUMA).
use dsm_bench::{presets, report, Experiment, Options};
use dsm_core::MachineConfig;

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(presets::figure6(opts.scale))
        .options(&opts)
        .run();
    print!("{}", report::format_normalized_table(&result));
    if opts.csv {
        print!("{}", report::to_csv(&result));
    }
    if let Some(path) = &opts.out {
        report::write_json(path, &result).expect("write --out JSON");
    }
}
