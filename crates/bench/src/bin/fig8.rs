//! Regenerates Figure 8: the R-NUMA+MigRep hybrid of Section 6.4.
use dsm_bench::{presets, report, Options};

fn main() {
    let opts = Options::from_env();
    if opts.handle_record() {
        return;
    }
    let result = opts.run_preset(presets::figure8(opts.scale));
    print!("{}", report::format_normalized_table(&result));
    opts.emit_artifacts(&result);
}
