//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--paper`            — run the paper's Table 2 problem sizes (slow);
//! * `--custom N[/D]`     — run N/D times the Table 2 problem sizes;
//! * `--workloads a,b,c`  — restrict to a subset of the seven workloads;
//! * `--threads N`        — number of simulation worker threads;
//! * `--csv`              — also print results as CSV for plotting;
//! * `--out FILE`         — also write results as machine-readable JSON;
//! * `--record FILE`      — stream one workload's trace to FILE and exit;
//! * `--replay FILE`      — run the experiment on a recorded trace file;
//! * `--help` / `-h`      — print usage and exit.

use std::path::PathBuf;

use crate::presets::{ExperimentScale, SystemSet};
use crate::runner::{default_threads, ExperimentResult};
use crate::{report, Experiment};
use dsm_core::MachineConfig;

/// Usage text printed by `--help` and appended to flag errors.
pub const USAGE: &str = "\
usage: <binary> [OPTIONS]

options:
  --paper              run the paper's Table 2 problem sizes (much slower);
                       the default is the reduced scale
  --custom N[/D]       run N/D times the Table 2 problem sizes (e.g.
                       `--custom 1/16` is a quick smoke, `--custom 4` the
                       committed golden-covered x4 preset); page cache and
                       thresholds scale along
  --workloads a,b,c    restrict to a comma-separated subset of the seven
                       workloads (barnes, cholesky, fmm, lu, ocean, radix,
                       raytrace)
  --threads N          number of simulation worker threads
  --workers N|auto     shard each simulation across N worker threads
                       (auto = available cores; the default 1 is the
                       exact serial path — results are bit-identical
                       either way)
  --csv                also print results as CSV for plotting
  --out FILE           also write results as JSON to FILE
  --record FILE        stream the selected workload's trace to FILE and
                       exit without simulating (needs exactly one
                       --workloads entry)
  --replay FILE        run the experiment on a recorded trace file instead
                       of generating a workload
  -h, --help           print this help and exit";

/// Why parsing stopped without producing [`Options`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; print [`USAGE`] and exit successfully.
    Help,
    /// A flag was not recognized; the offending flag is named.
    UnknownFlag(String),
    /// A flag's value was missing or malformed.
    BadValue(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => f.write_str(USAGE),
            CliError::UnknownFlag(flag) => {
                write!(
                    f,
                    "unknown flag `{flag}` (run with --help for the flag list)"
                )
            }
            CliError::BadValue(msg) => {
                write!(f, "{msg} (run with --help for the flag list)")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Problem/parameter scale.
    pub scale: ExperimentScale,
    /// Workloads to run.
    pub workloads: Vec<String>,
    /// Worker threads (jobs run concurrently).
    pub threads: usize,
    /// Workers sharding each simulation (`0` = auto, `1` = serial).
    pub workers: usize,
    /// Emit CSV in addition to the formatted table.
    pub csv: bool,
    /// Also write results as JSON to this file.
    pub out: Option<PathBuf>,
    /// Record the selected workload's trace to this file and exit.
    pub record: Option<PathBuf>,
    /// Replay a recorded trace file instead of generating workloads.
    pub replay: Option<PathBuf>,
}

/// Parse a `--custom` value: `"N"` or `"N/D"` with nonzero terms.
fn parse_custom_scale(v: &str) -> Result<splash_workloads::CustomScale, CliError> {
    let bad = || CliError::BadValue(format!("bad value `{v}` for `--custom` (want N or N/D)"));
    let (numer, denom) = match v.split_once('/') {
        Some((n, d)) => (n.parse::<u32>().ok(), d.parse::<u32>().ok()),
        None => (v.parse::<u32>().ok(), Some(1)),
    };
    match (numer, denom) {
        (Some(n), Some(d)) if n > 0 && d > 0 => Ok(splash_workloads::CustomScale::new(n, d)),
        _ => Err(bad()),
    }
}

/// Parse a `--workers` value: a positive count or `auto` (encoded as `0`,
/// resolved to the available cores where the simulation is built).
pub fn parse_workers(v: &str) -> Result<usize, CliError> {
    if v.eq_ignore_ascii_case("auto") {
        return Ok(0);
    }
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::BadValue(format!(
            "bad value `{v}` for `--workers` (want a positive count or `auto`)"
        ))),
    }
}

impl Options {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, CliError> {
        let mut opts = Options {
            scale: ExperimentScale::Reduced,
            workloads: splash_workloads::names()
                .into_iter()
                .map(str::to_string)
                .collect(),
            threads: default_threads(),
            workers: 1,
            csv: false,
            out: None,
            record: None,
            replay: None,
        };
        let mut iter = args.into_iter();
        // A flag's value must not itself look like a flag — catches
        // `--threads --csv` naming the flag instead of misparsing.
        let value_of = |iter: &mut I::IntoIter, flag: &str| -> Result<String, CliError> {
            match iter.next() {
                Some(v) if !v.starts_with('-') => Ok(v),
                _ => Err(CliError::BadValue(format!("flag `{flag}` needs a value"))),
            }
        };
        let mut workloads_selected = false;
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => opts.scale = ExperimentScale::Paper,
                "--custom" => {
                    let v = value_of(&mut iter, "--custom")?;
                    opts.scale = ExperimentScale::Custom(parse_custom_scale(&v)?);
                }
                "--csv" => opts.csv = true,
                "--threads" => {
                    let v = value_of(&mut iter, "--threads")?;
                    opts.threads = v.parse().map_err(|_| {
                        CliError::BadValue(format!("bad value `{v}` for `--threads`"))
                    })?;
                }
                "--workers" => {
                    let v = value_of(&mut iter, "--workers")?;
                    opts.workers = parse_workers(&v)?;
                }
                "--workloads" => {
                    workloads_selected = true;
                    let v = value_of(&mut iter, "--workloads")?;
                    opts.workloads = v.split(',').map(|s| s.trim().to_string()).collect();
                    for w in &opts.workloads {
                        if splash_workloads::by_name(w).is_none() {
                            return Err(CliError::BadValue(format!(
                                "unknown workload `{w}` for `--workloads`"
                            )));
                        }
                    }
                }
                "--out" => {
                    opts.out = Some(PathBuf::from(value_of(&mut iter, "--out")?));
                }
                "--record" => {
                    opts.record = Some(PathBuf::from(value_of(&mut iter, "--record")?));
                }
                "--replay" => {
                    opts.replay = Some(PathBuf::from(value_of(&mut iter, "--replay")?));
                }
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
        }
        // A replay file *is* the workload; silently ignoring a --workloads
        // selection (or recording while replaying) would mislead.
        if opts.replay.is_some() && workloads_selected {
            return Err(CliError::BadValue(
                "`--replay` runs the recorded trace and cannot be combined with `--workloads`"
                    .to_string(),
            ));
        }
        if opts.replay.is_some() && opts.record.is_some() {
            return Err(CliError::BadValue(
                "`--record` and `--replay` cannot be combined".to_string(),
            ));
        }
        Ok(opts)
    }

    /// Parse from the process arguments.  `--help` prints usage and exits
    /// with status 0; any error is printed and exits with status 2.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(CliError::Help) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(2);
            }
        }
    }

    /// Workload names as `&str` slices.
    pub fn workload_names(&self) -> Vec<&str> {
        self.workloads.iter().map(String::as_str).collect()
    }

    /// Run one preset experiment on the paper machine under these options
    /// (scale, workloads/replay, threads) and return the result — the body
    /// every figure/table binary shares.
    pub fn run_preset(&self, set: SystemSet) -> ExperimentResult {
        Experiment::new(MachineConfig::PAPER)
            .systems(set)
            .options(self)
            .run()
    }

    /// Emit the optional artifacts of a finished experiment: CSV to stdout
    /// under `--csv`, JSON to the `--out` file.
    ///
    /// Exits with status 2 if the `--out` file cannot be written.
    pub fn emit_artifacts(&self, result: &ExperimentResult) {
        if self.csv {
            print!("{}", report::to_csv(result));
        }
        if let Some(path) = &self.out {
            if let Err(e) = report::write_json(path, result) {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// Like [`emit_artifacts`](Options::emit_artifacts) for binaries that
    /// produce several experiment results (`allexps`): CSV per result under
    /// `--csv`, one JSON array to the `--out` file.
    pub fn emit_artifacts_all(&self, results: &[ExperimentResult]) {
        if self.csv {
            for result in results {
                print!("{}", report::to_csv(result));
            }
        }
        if let Some(path) = &self.out {
            if let Err(e) = report::write_json_all(path, results) {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// Handle `--record FILE` if present: stream the selected workload's
    /// trace to the file (never materializing it) and report what was
    /// written.  Returns `true` when recording happened — the binary should
    /// exit without running an experiment.
    ///
    /// Exits with status 2 when the selection is not exactly one workload or
    /// the file cannot be written.
    pub fn handle_record(&self) -> bool {
        let Some(path) = &self.record else {
            return false;
        };
        if self.workloads.len() != 1 {
            eprintln!(
                "error: --record needs exactly one workload; \
                 pick it with --workloads NAME"
            );
            std::process::exit(2);
        }
        let name = &self.workloads[0];
        let workload = splash_workloads::by_name(name).expect("workloads are validated by parse");
        let cfg = splash_workloads::WorkloadConfig::at_scale(self.scale.workload_scale());
        let mut stream = splash_workloads::stream(workload, cfg);
        if let Err(e) = mem_trace::record_to_file(&mut stream, path) {
            eprintln!("error: recording {name} to {}: {e}", path.display());
            std::process::exit(2);
        }
        use mem_trace::TraceSource;
        let stats = stream.stats_so_far();
        println!(
            "recorded {name} ({} accesses, {} barriers, {} pages) to {}",
            stats.accesses,
            stats.barriers,
            stats.footprint_pages,
            path.display()
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, CliError> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_all_workloads_at_reduced_scale() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, ExperimentScale::Reduced);
        assert_eq!(o.workloads.len(), 7);
        assert!(!o.csv);
        assert!(o.threads >= 1);
    }

    #[test]
    fn flags_are_recognized() {
        let o = parse(&[
            "--paper",
            "--csv",
            "--threads",
            "3",
            "--workloads",
            "lu,radix",
        ])
        .unwrap();
        assert_eq!(o.scale, ExperimentScale::Paper);
        assert!(o.csv);
        assert_eq!(o.threads, 3);
        assert_eq!(o.workloads, vec!["lu", "radix"]);
        assert_eq!(o.out, None);
        assert_eq!(o.record, None);
        assert_eq!(o.replay, None);
    }

    #[test]
    fn file_flags_take_paths() {
        let o = parse(&["--out", "results.json"]).unwrap();
        assert_eq!(o.out, Some(std::path::PathBuf::from("results.json")));
        let o = parse(&["--record", "lu.trc", "--workloads", "lu"]).unwrap();
        assert_eq!(o.record, Some(std::path::PathBuf::from("lu.trc")));
        let o = parse(&["--replay", "lu.trc"]).unwrap();
        assert_eq!(o.replay, Some(std::path::PathBuf::from("lu.trc")));
        // Each needs a value.
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--record", "--csv"]).is_err());
        assert!(parse(&["--replay"]).is_err());
        // No record requested: handle_record is a no-op.
        assert!(!parse(&[]).unwrap().handle_record());
    }

    #[test]
    fn replay_rejects_conflicting_selections() {
        let err = parse(&["--replay", "x.trc", "--workloads", "lu"]).unwrap_err();
        assert!(err.to_string().contains("--workloads"), "{err}");
        let err = parse(&["--workloads", "lu", "--replay", "x.trc"]).unwrap_err();
        assert!(err.to_string().contains("--replay"), "{err}");
        let err = parse(&["--replay", "x.trc", "--record", "y.trc"]).unwrap_err();
        assert!(err.to_string().contains("--record"), "{err}");
    }

    #[test]
    fn help_is_not_an_error_exit() {
        assert!(matches!(parse(&["--help"]), Err(CliError::Help)));
        assert!(matches!(parse(&["-h"]), Err(CliError::Help)));
        assert!(CliError::Help.to_string().contains("--workloads"));
    }

    #[test]
    fn unknown_flags_are_named() {
        match parse(&["--bogus"]) {
            Err(CliError::UnknownFlag(flag)) => {
                assert_eq!(flag, "--bogus");
                let msg = CliError::UnknownFlag(flag).to_string();
                assert!(msg.contains("--bogus"), "{msg}");
                assert!(msg.contains("--help"), "{msg}");
            }
            other => panic!("expected UnknownFlag, got {other:?}"),
        }
    }

    #[test]
    fn workers_flag_parses_counts_and_auto() {
        assert_eq!(parse(&[]).unwrap().workers, 1, "default is exact serial");
        assert_eq!(parse(&["--workers", "4"]).unwrap().workers, 4);
        assert_eq!(parse(&["--workers", "auto"]).unwrap().workers, 0);
        assert_eq!(parse(&["--workers", "AUTO"]).unwrap().workers, 0);
        for bad in ["0", "-2", "x", ""] {
            assert!(
                parse(&["--workers", bad]).is_err(),
                "`--workers {bad}` should be rejected"
            );
        }
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "--csv"]).is_err());
    }

    #[test]
    fn custom_scale_flag_parses_rationals() {
        use splash_workloads::{CustomScale, Scale};
        let o = parse(&["--custom", "2"]).unwrap();
        assert_eq!(
            o.scale,
            ExperimentScale::Custom(CustomScale::new(2, 1)),
            "whole multiplier"
        );
        let o = parse(&["--custom", "1/16"]).unwrap();
        assert_eq!(
            o.scale.workload_scale(),
            Scale::Custom(CustomScale::new(1, 16))
        );
        for bad in ["0", "1/0", "x", "2/", "/3", "-1"] {
            assert!(
                parse(&["--custom", bad]).is_err(),
                "`--custom {bad}` should be rejected"
            );
        }
        assert!(parse(&["--custom"]).is_err());
    }

    #[test]
    fn bad_values_name_the_flag() {
        let err = parse(&["--workloads", "linpack"]).unwrap_err();
        assert!(err.to_string().contains("linpack"));
        assert!(err.to_string().contains("--workloads"));

        let err = parse(&["--threads", "x"]).unwrap_err();
        assert!(err.to_string().contains("--threads"));
    }

    #[test]
    fn missing_values_do_not_swallow_the_next_flag() {
        let err = parse(&["--threads", "--csv"]).unwrap_err();
        assert_eq!(
            err,
            CliError::BadValue("flag `--threads` needs a value".to_string())
        );
        let err = parse(&["--workloads"]).unwrap_err();
        assert!(err.to_string().contains("--workloads"));
    }
}
