//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--paper`            — run the paper's Table 2 problem sizes (slow);
//! * `--workloads a,b,c`  — restrict to a subset of the seven workloads;
//! * `--threads N`        — number of simulation worker threads;
//! * `--csv`              — also print results as CSV for plotting.

use crate::presets::ExperimentScale;
use crate::runner::default_threads;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Problem/parameter scale.
    pub scale: ExperimentScale,
    /// Workloads to run.
    pub workloads: Vec<String>,
    /// Worker threads.
    pub threads: usize,
    /// Emit CSV in addition to the formatted table.
    pub csv: bool,
}

impl Options {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options {
            scale: ExperimentScale::Reduced,
            workloads: splash_workloads::names()
                .into_iter()
                .map(str::to_string)
                .collect(),
            threads: default_threads(),
            csv: false,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => opts.scale = ExperimentScale::Paper,
                "--csv" => opts.csv = true,
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                }
                "--workloads" => {
                    let v = iter.next().ok_or("--workloads needs a value")?;
                    opts.workloads = v.split(',').map(|s| s.trim().to_string()).collect();
                    for w in &opts.workloads {
                        if splash_workloads::by_name(w).is_none() {
                            return Err(format!("unknown workload {w}"));
                        }
                    }
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: <binary> [--paper] [--workloads a,b,c] [--threads N] [--csv]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Workload names as `&str` slices.
    pub fn workload_names(&self) -> Vec<&str> {
        self.workloads.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_all_workloads_at_reduced_scale() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, ExperimentScale::Reduced);
        assert_eq!(o.workloads.len(), 7);
        assert!(!o.csv);
        assert!(o.threads >= 1);
    }

    #[test]
    fn flags_are_recognized() {
        let o = parse(&["--paper", "--csv", "--threads", "3", "--workloads", "lu,radix"]).unwrap();
        assert_eq!(o.scale, ExperimentScale::Paper);
        assert!(o.csv);
        assert_eq!(o.threads, 3);
        assert_eq!(o.workloads, vec!["lu", "radix"]);
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(parse(&["--workloads", "linpack"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
