//! `dsm-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Section 6).
//!
//! Each figure/table has a dedicated binary (`fig5`, `fig6`, `fig7`, `fig8`,
//! `table1` … `table4`) plus `allexps`, which runs everything.  All binaries
//! accept `--paper` to run the original Table 2 problem sizes (much slower);
//! the default is the reduced scale, with the page cache and policy
//! thresholds scaled by the same factor as the working sets so that the
//! capacity relationships of the paper are preserved.
//!
//! Programmatic use goes through the [`Experiment`] builder for one-machine
//! figure reproductions:
//!
//! ```no_run
//! use dsm_bench::{presets, Experiment, ExperimentScale};
//! use dsm_core::MachineConfig;
//!
//! let result = Experiment::new(MachineConfig::PAPER)
//!     .systems(presets::figure5(ExperimentScale::Reduced))
//!     .workloads(["lu"])
//!     .run();
//! print!("{}", dsm_bench::report::format_normalized_table(&result));
//! ```
//!
//! …and through the [`Sweep`] builder for parameter-space grids over
//! machine axes (cluster nodes, processors per node, page size, block
//! size), system axes (templates, cost models, thresholds, relocation
//! delays) and workloads — see the [`sweep`] module docs.

pub mod cache_key;
pub mod cli;
pub mod experiment;
pub mod perf;
pub mod presets;
pub mod report;
pub mod runner;
pub mod sweep;

pub use cache_key::{point_key, CacheKey, KeyHasher, KEY_FORMAT_VERSION};
pub use cli::{CliError, Options};
pub use experiment::Experiment;
pub use perf::{PerfJob, PerfReport};
pub use presets::{ExperimentScale, SystemSet};
pub use report::{
    format_normalized_table, format_sweep_points, format_table4, normalized_rows, to_json,
    write_json,
};
pub use runner::{ExperimentResult, WorkloadResult};
pub use sweep::{
    Axis, AxisValues, BaselinePoint, Metric, MetricSet, ParamPoint, ParamSpace, PointResult,
    SourceMode, Sweep, SweepEvent, SweepResult,
};
