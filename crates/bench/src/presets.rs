//! System-configuration presets for each experiment.
//!
//! The paper's absolute parameters (2.4-MB page cache, 800-miss
//! migration/replication threshold, 32-refetch relocation threshold, 32000-
//! miss reset interval) are tuned for the Table 2 data sets.  The reduced
//! problem sizes used by default in this reproduction have working sets and
//! miss counts roughly 8x smaller, so the reduced presets scale the page
//! cache and every threshold by the same factor — preserving the ratios the
//! paper's conclusions depend on (e.g. radix's working set still exceeds the
//! page cache; lu's read phase still crosses the replication threshold).

use dsm_core::{CostModel, MigRep, PageCaching, System, SystemConfig, Thresholds};
use dsm_protocol::PageCacheConfig;
use splash_workloads::{CustomScale, Scale};

/// Scale factor between the paper's data sets and the reduced ones.
///
/// The reduced workloads generate roughly 4x fewer misses *per hot page*
/// than the Table 2 inputs, so the per-page thresholds and the page cache
/// are scaled by the same factor.
const REDUCED_FACTOR: u64 = 4;

/// Smallest page cache a custom scale may shrink to (frames get useless
/// below this; the paper's is 600 frames).
const MIN_PAGE_CACHE_BYTES: u64 = 8 * 4096;

/// Which parameter scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Reduced problem sizes, proportionally scaled page cache/thresholds.
    Reduced,
    /// The paper's exact parameters.
    Paper,
    /// A custom multiple of the paper's data sets, with the page cache and
    /// thresholds interpolated by the same factor — the ratios the paper's
    /// conclusions rest on (working set vs page cache, misses per hot page
    /// vs threshold) carry to bigger-than-paper problems.
    Custom(CustomScale),
}

impl ExperimentScale {
    /// Parse from a `--paper` style flag.
    pub fn from_paper_flag(paper: bool) -> Self {
        if paper {
            ExperimentScale::Paper
        } else {
            ExperimentScale::Reduced
        }
    }

    /// The matching workload scale.
    pub fn workload_scale(self) -> Scale {
        match self {
            ExperimentScale::Reduced => Scale::Reduced,
            ExperimentScale::Paper => Scale::Paper,
            ExperimentScale::Custom(c) => Scale::Custom(c),
        }
    }

    /// Short label used on sweep axes and in reports.
    pub fn label(self) -> String {
        self.workload_scale().label()
    }

    /// Policy thresholds for the fast systems at this scale.
    ///
    /// The migration/replication threshold is scaled slightly more
    /// aggressively than the R-NUMA threshold because the reduced inputs cut
    /// the number of misses *per page* (which drives MigRep) harder than the
    /// number of refetches per hot page (which drives R-NUMA).
    pub fn thresholds_fast(self) -> Thresholds {
        match self {
            ExperimentScale::Reduced => Thresholds {
                migrep_threshold: 250,
                migrep_reset_interval: 32_000 / REDUCED_FACTOR,
                rnuma_threshold: 8,
                rnuma_relocation_delay: 0,
            },
            ExperimentScale::Paper => Thresholds::paper_fast(),
            ExperimentScale::Custom(c) => scale_thresholds(Thresholds::paper_fast(), c),
        }
    }

    /// Policy thresholds for the slow systems (Figure 6) at this scale.
    pub fn thresholds_slow(self) -> Thresholds {
        match self {
            ExperimentScale::Reduced => Thresholds {
                migrep_threshold: 400,
                migrep_reset_interval: 32_000 / REDUCED_FACTOR,
                rnuma_threshold: 16,
                rnuma_relocation_delay: 0,
            },
            ExperimentScale::Paper => Thresholds::paper_slow(),
            ExperimentScale::Custom(c) => scale_thresholds(Thresholds::paper_slow(), c),
        }
    }

    /// The base R-NUMA page cache at this scale.
    pub fn page_cache(self) -> PageCacheConfig {
        match self {
            ExperimentScale::Reduced => PageCacheConfig::Finite {
                size_bytes: 2_457_600 / 2,
            },
            ExperimentScale::Paper => PageCacheConfig::PAPER,
            ExperimentScale::Custom(c) => PageCacheConfig::Finite {
                size_bytes: c.of(2_457_600).max(MIN_PAGE_CACHE_BYTES),
            },
        }
    }

    /// Half the base page cache (Section 6.4).
    pub fn page_cache_half(self) -> PageCacheConfig {
        match self {
            ExperimentScale::Reduced => PageCacheConfig::Finite {
                size_bytes: 1_228_800 / 2,
            },
            ExperimentScale::Paper => PageCacheConfig::PAPER_HALF,
            ExperimentScale::Custom(c) => PageCacheConfig::Finite {
                size_bytes: c.of(1_228_800).max(MIN_PAGE_CACHE_BYTES / 2),
            },
        }
    }

    /// The relocation-delay window for the R-NUMA+MigRep hybrid.
    pub fn relocation_delay(self) -> u64 {
        match self {
            ExperimentScale::Reduced => 32_000 / REDUCED_FACTOR,
            ExperimentScale::Paper => 32_000,
            ExperimentScale::Custom(c) => c.of(32_000),
        }
    }
}

impl ExperimentScale {
    /// The committed larger-than-Table-2 preset: four times the paper's
    /// data sets, with the page cache and every threshold interpolated by
    /// the same factor.  Reachable as `--custom 4` on every experiment
    /// binary and as `"x4"` through the sweep-service catalog; its
    /// behaviour is pinned by the golden fingerprints in
    /// `tests/golden/custom_scale.txt`.
    pub const X4: ExperimentScale = ExperimentScale::Custom(CustomScale::new(4, 1));
}

/// Interpolate the paper's per-page thresholds by a custom scale factor:
/// data sets `c` times larger see roughly `c` times the misses per hot
/// page, so thresholds scale with `c` (floored so they never vanish).
fn scale_thresholds(paper: Thresholds, c: CustomScale) -> Thresholds {
    Thresholds {
        migrep_threshold: c.of(paper.migrep_threshold),
        migrep_reset_interval: c.of(paper.migrep_reset_interval),
        rnuma_threshold: c.of(paper.rnuma_threshold).max(2),
        rnuma_relocation_delay: paper.rnuma_relocation_delay,
    }
}

/// A named list of system configurations compared within one figure.
#[derive(Debug, Clone)]
pub struct SystemSet {
    /// Name of the experiment ("Figure 5", ...).
    pub experiment: &'static str,
    /// The baseline every execution time is normalized against.
    pub baseline: SystemConfig,
    /// The systems compared (in plot order).
    pub systems: Vec<SystemConfig>,
}

fn r_numa_at(scale: ExperimentScale) -> SystemConfig {
    System::r_numa()
        .with(PageCaching::config(scale.page_cache()))
        .with(scale.thresholds_fast())
        .named("R-NUMA")
        .build()
}

/// Figure 5: CC-NUMA, Rep, Mig, MigRep, R-NUMA, R-NUMA-Inf vs perfect
/// CC-NUMA.
pub fn figure5(scale: ExperimentScale) -> SystemSet {
    let t = scale.thresholds_fast();
    SystemSet {
        experiment: "Figure 5: base performance comparison",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa()
                .with(MigRep::replication_only())
                .with(t)
                .build(),
            System::cc_numa()
                .with(MigRep::migration_only())
                .with(t)
                .build(),
            System::cc_numa().with(MigRep::both()).with(t).build(),
            r_numa_at(scale),
            System::r_numa()
                .with(PageCaching::infinite())
                .with(t)
                .build(),
        ],
    }
}

/// Table 4 uses the same runs as Figure 5 (CC-NUMA, MigRep, R-NUMA).
pub fn table4(scale: ExperimentScale) -> SystemSet {
    let t = scale.thresholds_fast();
    SystemSet {
        experiment: "Table 4: page operations and miss breakdown",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa().with(MigRep::both()).with(t).build(),
            r_numa_at(scale),
        ],
    }
}

/// Figure 6: fast vs slow page-operation support for MigRep and R-NUMA.
pub fn figure6(scale: ExperimentScale) -> SystemSet {
    let fast = scale.thresholds_fast();
    let slow = scale.thresholds_slow();
    SystemSet {
        experiment: "Figure 6: sensitivity to page operation overhead",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa()
                .with(MigRep::both())
                .with(fast)
                .named("MigRep-Fast")
                .build(),
            System::cc_numa()
                .with(MigRep::both())
                .with(CostModel::slow())
                .with(slow)
                .named("MigRep-Slow")
                .build(),
            r_numa_at(scale).named("R-NUMA-Fast"),
            System::r_numa()
                .with(PageCaching::config(scale.page_cache()))
                .with(CostModel::slow())
                .with(slow)
                .named("R-NUMA-Slow")
                .build(),
        ],
    }
}

/// Figure 7: remote latency four times larger (remote:local ratio 16).
pub fn figure7(scale: ExperimentScale) -> SystemSet {
    let t = scale.thresholds_fast();
    let far = CostModel::base().with_remote_latency_factor(4);
    SystemSet {
        experiment: "Figure 7: sensitivity to network latency (4x)",
        baseline: System::perfect_cc_numa().with(far).build(),
        systems: vec![
            System::cc_numa().with(far).build(),
            System::cc_numa()
                .with(MigRep::both())
                .with(far)
                .with(t)
                .build(),
            r_numa_at(scale).with_costs(far),
        ],
    }
}

/// Figure 8: MigRep, R-NUMA-1/2, R-NUMA-1/2+MigRep, R-NUMA.
pub fn figure8(scale: ExperimentScale) -> SystemSet {
    let t = scale.thresholds_fast();
    SystemSet {
        experiment: "Figure 8: R-NUMA+MigRep hybrid",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().with(MigRep::both()).with(t).build(),
            System::r_numa()
                .with(PageCaching::config(scale.page_cache_half()))
                .with(t)
                .named("R-NUMA-1/2")
                .build(),
            System::r_numa()
                .with(PageCaching::config(scale.page_cache_half()))
                .with(MigRep::both())
                .with(t)
                .relocation_delay(scale.relocation_delay())
                .named("R-NUMA-1/2+MigRep")
                .build(),
            r_numa_at(scale),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_flags_and_workload_scale() {
        assert_eq!(
            ExperimentScale::from_paper_flag(true),
            ExperimentScale::Paper
        );
        assert_eq!(
            ExperimentScale::from_paper_flag(false),
            ExperimentScale::Reduced
        );
        assert_eq!(ExperimentScale::Paper.workload_scale(), Scale::Paper);
        assert_eq!(ExperimentScale::Reduced.workload_scale(), Scale::Reduced);
        let c = CustomScale::new(2, 1);
        assert_eq!(
            ExperimentScale::Custom(c).workload_scale(),
            Scale::Custom(c)
        );
        assert_eq!(ExperimentScale::Custom(c).label(), "x2");
    }

    #[test]
    fn custom_scale_interpolates_the_paper_parameters() {
        let double = ExperimentScale::Custom(CustomScale::new(2, 1));
        let pf = Thresholds::paper_fast();
        let t = double.thresholds_fast();
        assert_eq!(t.migrep_threshold, 2 * pf.migrep_threshold);
        assert_eq!(t.rnuma_threshold, 2 * pf.rnuma_threshold);
        assert_eq!(
            double.page_cache().frames().unwrap(),
            2 * PageCacheConfig::PAPER.frames().unwrap()
        );
        assert_eq!(double.relocation_delay(), 64_000);

        // Slivers floor instead of vanishing.
        let sliver = ExperimentScale::Custom(CustomScale::new(1, 1024));
        assert!(sliver.thresholds_fast().rnuma_threshold >= 2);
        assert!(sliver.page_cache().frames().unwrap() >= 4);
        assert!(
            sliver.page_cache_half().frames().unwrap() <= sliver.page_cache().frames().unwrap()
        );
    }

    #[test]
    fn the_x4_preset_is_four_times_the_paper() {
        let x4 = ExperimentScale::X4;
        assert_eq!(x4, ExperimentScale::Custom(CustomScale::new(4, 1)));
        assert_eq!(x4.label(), "x4");
        let pf = Thresholds::paper_fast();
        assert_eq!(
            x4.thresholds_fast().migrep_threshold,
            4 * pf.migrep_threshold
        );
        assert_eq!(
            x4.page_cache().frames().unwrap(),
            4 * PageCacheConfig::PAPER.frames().unwrap()
        );
    }

    #[test]
    fn paper_scale_uses_paper_parameters() {
        let s = ExperimentScale::Paper;
        assert_eq!(s.thresholds_fast(), Thresholds::paper_fast());
        assert_eq!(s.page_cache(), PageCacheConfig::PAPER);
        assert_eq!(s.page_cache_half(), PageCacheConfig::PAPER_HALF);
        assert_eq!(s.relocation_delay(), 32_000);
    }

    #[test]
    fn reduced_scale_shrinks_page_cache_and_thresholds() {
        let s = ExperimentScale::Reduced;
        let frames = s.page_cache().frames().unwrap();
        assert!(
            frames < 600,
            "reduced page cache must be smaller than the paper's"
        );
        assert!(frames >= 600 / REDUCED_FACTOR as usize);
        assert!(s.page_cache_half().frames().unwrap() * 2 == frames);
        assert!(s.thresholds_fast().migrep_threshold < Thresholds::paper_fast().migrep_threshold);
        assert!(s.thresholds_fast().rnuma_threshold < Thresholds::paper_fast().rnuma_threshold);
    }

    #[test]
    fn figure5_compares_six_systems_against_perfect_cc_numa() {
        let set = figure5(ExperimentScale::Reduced);
        assert_eq!(set.systems.len(), 6);
        assert_eq!(set.baseline.name, "Perfect-CC-NUMA");
        let names: Vec<&str> = set.systems.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["CC-NUMA", "Rep", "Mig", "MigRep", "R-NUMA", "R-NUMA-Inf"]
        );
    }

    #[test]
    fn figure6_has_fast_and_slow_variants() {
        let set = figure6(ExperimentScale::Reduced);
        assert_eq!(set.systems.len(), 4);
        assert!(set.systems[1].costs.soft_trap > set.systems[0].costs.soft_trap);
        assert!(set.systems[3].costs.soft_trap > set.systems[2].costs.soft_trap);
    }

    #[test]
    fn figure7_scales_the_remote_path_only() {
        let set = figure7(ExperimentScale::Paper);
        for sys in &set.systems {
            assert_eq!(sys.costs.remote_miss.raw(), 418 * 4);
            assert_eq!(sys.costs.local_miss.raw(), 104);
        }
        assert_eq!(set.baseline.costs.remote_miss.raw(), 418 * 4);
    }

    #[test]
    fn figure8_hybrid_has_delay_and_half_cache() {
        let set = figure8(ExperimentScale::Paper);
        let hybrid = &set.systems[2];
        assert!(hybrid.has_migrep());
        assert!(hybrid.is_rnuma());
        assert_eq!(hybrid.thresholds.rnuma_relocation_delay, 32_000);
        assert_eq!(set.systems[1].page_cache, Some(PageCacheConfig::PAPER_HALF));
    }
}
