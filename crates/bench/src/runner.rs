//! Experiment result types.
//!
//! The scheduling logic lives in the sweep engine
//! ([`crate::sweep::Sweep`]); [`crate::experiment::Experiment`] is its
//! single-machine-point shape and produces the [`ExperimentResult`]s the
//! report formatters consume.  (The legacy `run_experiment` free function
//! is gone; its behaviour is pinned by the golden-snapshot parity tests.)

use dsm_core::SimResult;

/// All results for one workload within an experiment.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (Table 2 row).
    pub workload: String,
    /// Result of the baseline (perfect CC-NUMA) run.
    pub baseline: SimResult,
    /// Results of the compared systems, in `SystemSet::systems` order.
    pub results: Vec<SimResult>,
    /// Wall-clock seconds the baseline job took (the perf trajectory's raw
    /// material; simulation results never depend on it).
    pub baseline_elapsed_seconds: f64,
    /// Wall-clock seconds per compared system, in `results` order.
    pub elapsed_seconds: Vec<f64>,
}

impl WorkloadResult {
    /// Normalized execution time of system `i` (vs the baseline).
    pub fn normalized(&self, i: usize) -> f64 {
        self.results[i].normalized_against(&self.baseline)
    }
}

/// The complete outcome of one experiment (figure/table).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name.
    pub experiment: String,
    /// System names, in column order.
    pub system_names: Vec<String>,
    /// Requested per-simulation worker count (`0` = auto, `1` = serial) —
    /// recorded so emitted reports say what produced them.  Simulation
    /// results are bit-identical at any worker count.
    pub workers: usize,
    /// One entry per workload, in the order requested.
    pub per_workload: Vec<WorkloadResult>,
}

impl ExperimentResult {
    /// Average normalized execution time of system `i` across workloads.
    pub fn mean_normalized(&self, i: usize) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload
            .iter()
            .map(|w| w.normalized(i))
            .sum::<f64>()
            / self.per_workload.len() as f64
    }

    /// Index of a system by name.
    pub fn system_index(&self, name: &str) -> Option<usize> {
        self.system_names.iter().position(|n| n == name)
    }
}

/// Number of worker threads to use by default: one per CPU.
///
/// No hard cap: [`Experiment::run`](crate::experiment::Experiment::run)
/// clamps the worker count to the experiment's actual job count, so large
/// machines use every core a figure can keep busy instead of idling past an
/// arbitrary ceiling.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::presets;
    use crate::presets::ExperimentScale;
    use dsm_core::MachineConfig;

    #[test]
    fn runs_a_small_experiment_end_to_end() {
        let set = presets::table4(ExperimentScale::Reduced);
        let result = Experiment::new(MachineConfig::PAPER)
            .systems(set)
            .workloads(["ocean"])
            .scale(ExperimentScale::Reduced)
            .threads(4)
            .run();
        assert_eq!(result.system_names.len(), 3);
        assert_eq!(result.per_workload.len(), 1);
        let wl = &result.per_workload[0];
        assert_eq!(wl.workload, "ocean");
        // Perfect CC-NUMA is the fastest (or tied): every normalized time is
        // at least ~1.
        for i in 0..result.system_names.len() {
            assert!(
                wl.normalized(i) >= 0.99,
                "{} finished faster than perfect CC-NUMA: {}",
                result.system_names[i],
                wl.normalized(i)
            );
        }
        assert!(result.mean_normalized(0) >= 0.99);
        assert_eq!(result.system_index("CC-NUMA"), Some(0));
        assert_eq!(result.system_index("nope"), None);
    }

    #[test]
    fn empty_experiment_result_means_zero_not_nan() {
        let empty = ExperimentResult {
            experiment: "empty".to_string(),
            system_names: vec!["CC-NUMA".to_string()],
            workers: 1,
            per_workload: vec![],
        };
        assert_eq!(empty.mean_normalized(0), 0.0);
        assert_eq!(empty.system_index("CC-NUMA"), Some(0));
    }
}
