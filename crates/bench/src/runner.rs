//! Runs a set of systems over a set of workloads, in parallel across
//! independent (workload, system) pairs.

use crate::presets::{ExperimentScale, SystemSet};
use dsm_core::{ClusterSimulator, MachineConfig, SimResult, SystemConfig};
use splash_workloads::{by_name, WorkloadConfig};

/// All results for one workload within an experiment.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (Table 2 row).
    pub workload: String,
    /// Result of the baseline (perfect CC-NUMA) run.
    pub baseline: SimResult,
    /// Results of the compared systems, in `SystemSet::systems` order.
    pub results: Vec<SimResult>,
}

impl WorkloadResult {
    /// Normalized execution time of system `i` (vs the baseline).
    pub fn normalized(&self, i: usize) -> f64 {
        self.results[i].normalized_against(&self.baseline)
    }
}

/// The complete outcome of one experiment (figure/table).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name.
    pub experiment: String,
    /// System names, in column order.
    pub system_names: Vec<String>,
    /// One entry per workload, in the order requested.
    pub per_workload: Vec<WorkloadResult>,
}

impl ExperimentResult {
    /// Average normalized execution time of system `i` across workloads.
    pub fn mean_normalized(&self, i: usize) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload
            .iter()
            .map(|w| w.normalized(i))
            .sum::<f64>()
            / self.per_workload.len() as f64
    }

    /// Index of a system by name.
    pub fn system_index(&self, name: &str) -> Option<usize> {
        self.system_names.iter().position(|n| n == name)
    }
}

/// Run one experiment: every system of `set` (plus its baseline) on every
/// workload in `workloads`.
///
/// Independent simulations are distributed over `threads` worker threads
/// with crossbeam's scoped threads (simulations share nothing mutable).
pub fn run_experiment(
    set: &SystemSet,
    workloads: &[&str],
    scale: ExperimentScale,
    threads: usize,
) -> ExperimentResult {
    let machine = MachineConfig::PAPER;
    let wl_cfg = WorkloadConfig::at_scale(scale.workload_scale());

    // Generate every trace once, up front.
    let traces: Vec<_> = workloads
        .iter()
        .map(|name| {
            by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name}"))
                .generate(&wl_cfg)
        })
        .collect();

    // Build the full list of (workload index, system) jobs; system index 0
    // is the baseline.
    let mut all_systems: Vec<SystemConfig> = Vec::with_capacity(set.systems.len() + 1);
    all_systems.push(set.baseline.clone());
    all_systems.extend(set.systems.iter().cloned());

    let jobs: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|w| (0..all_systems.len()).map(move |s| (w, s)))
        .collect();

    let threads = threads.max(1);
    let results: Vec<Vec<Option<SimResult>>> = {
        let table = std::sync::Mutex::new(vec![vec![None; all_systems.len()]; traces.len()]);
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (w, s) = jobs[i];
                    let sim = ClusterSimulator::new(machine, all_systems[s].clone());
                    let result = sim.run(&traces[w]);
                    table.lock().expect("result table poisoned")[w][s] = Some(result);
                });
            }
        })
        .expect("simulation worker panicked");
        table.into_inner().expect("result table poisoned")
    };

    let per_workload = results
        .into_iter()
        .zip(traces.iter())
        .map(|(mut row, trace)| {
            let baseline = row[0].take().expect("baseline result missing");
            let results = row
                .into_iter()
                .skip(1)
                .map(|r| r.expect("system result missing"))
                .collect();
            WorkloadResult {
                workload: trace.name.clone(),
                baseline,
                results,
            }
        })
        .collect();

    ExperimentResult {
        experiment: set.experiment.to_string(),
        system_names: set.systems.iter().map(|s| s.name.clone()).collect(),
        per_workload,
    }
}

/// Number of worker threads to use by default: one per CPU, capped at the
/// number of independent simulations a typical figure runs.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn runs_a_small_experiment_end_to_end() {
        let set = presets::table4(ExperimentScale::Reduced);
        let result = run_experiment(&set, &["ocean"], ExperimentScale::Reduced, 4);
        assert_eq!(result.system_names.len(), 3);
        assert_eq!(result.per_workload.len(), 1);
        let wl = &result.per_workload[0];
        assert_eq!(wl.workload, "ocean");
        // Perfect CC-NUMA is the fastest (or tied): every normalized time is
        // at least ~1.
        for i in 0..result.system_names.len() {
            assert!(
                wl.normalized(i) >= 0.99,
                "{} finished faster than perfect CC-NUMA: {}",
                result.system_names[i],
                wl.normalized(i)
            );
        }
        assert!(result.mean_normalized(0) >= 0.99);
        assert_eq!(result.system_index("CC-NUMA"), Some(0));
        assert_eq!(result.system_index("nope"), None);
    }
}
