//! The perf-benchmark subsystem: wall-clock throughput per (workload,
//! system) job.
//!
//! Simulator throughput is the binding constraint on every scenario the
//! harness adds — the paper's figures come from pushing millions of memory
//! references through per-block directory and cache state — so this module
//! gives the repo a measured perf trajectory instead of anecdotes:
//!
//! * [`measure`] runs each (workload, system) job through the streaming
//!   pipeline, takes the best wall-clock of `repeats` runs (simulation is
//!   deterministic, so the minimum is the least-noisy estimate), and
//!   reports **events/sec** (simulated shared-memory accesses per second of
//!   wall clock);
//! * [`to_json`]/[`write_json`] render the report as the machine-readable
//!   `BENCH_*.json` format the perf trajectory is tracked in;
//! * [`regression_failures`] compares a fresh report against a committed
//!   baseline JSON and flags every job whose throughput regressed beyond a
//!   tolerance — the check behind the CI perf-smoke job.

use std::io;
use std::path::Path;
use std::time::Instant;

use crate::presets::ExperimentScale;
use dsm_core::{ClusterSimulator, MachineConfig, SystemConfig};
use splash_workloads::{by_name, WorkloadConfig};

/// Throughput measurement of one (workload, system) job.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfJob {
    /// Workload name (Table 2 row).
    pub workload: String,
    /// System name ("CC-NUMA", "R-NUMA", ...).
    pub system: String,
    /// Best wall-clock over the report's repeats, in seconds.
    pub elapsed_seconds: f64,
    /// Shared-memory accesses simulated by one run of the job.
    pub accesses: u64,
    /// `accesses / elapsed_seconds` (0 if the job finished too fast for the
    /// clock — the guard keeps degenerate timings from dividing by zero).
    pub events_per_sec: f64,
}

/// A full perf measurement: every (workload, system) job at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Parameter scale the jobs ran at ("paper" or "reduced").
    pub scale: String,
    /// Wall-clock repetitions per job (best is reported).
    pub repeats: u32,
    /// One entry per (workload, system) pair, workloads outermost.
    pub jobs: Vec<PerfJob>,
}

impl PerfReport {
    /// The job for `(workload, system)`, if measured.
    pub fn job(&self, workload: &str, system: &str) -> Option<&PerfJob> {
        self.jobs
            .iter()
            .find(|j| j.workload == workload && j.system == system)
    }

    /// Mean events/sec across all jobs (0 for an empty report).
    pub fn mean_events_per_sec(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.events_per_sec).sum::<f64>() / self.jobs.len() as f64
    }
}

/// The systems a perf run covers by default: the Table 4 trio (CC-NUMA,
/// CC-NUMA+MigRep, R-NUMA), which together exercise the block-cache,
/// migration/replication and page-cache hot paths.
pub fn default_systems(scale: ExperimentScale) -> Vec<SystemConfig> {
    crate::presets::table4(scale).systems
}

/// Measure every (workload, system) job: stream the workload through the
/// simulator `repeats` times and keep the best wall-clock.
///
/// # Panics
/// Panics on an unknown workload name or a zero `repeats`.
pub fn measure(
    machine: MachineConfig,
    systems: &[SystemConfig],
    workloads: &[&str],
    scale: ExperimentScale,
    repeats: u32,
) -> PerfReport {
    assert!(repeats > 0, "perf measurement needs at least one repeat");
    let cfg = WorkloadConfig::at_scale(scale.workload_scale());
    let mut jobs = Vec::with_capacity(workloads.len() * systems.len());
    for workload in workloads {
        let wl = by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
        for system in systems {
            let sim = ClusterSimulator::new(machine, system.clone());
            let mut best = f64::INFINITY;
            let mut accesses = 0;
            for _ in 0..repeats {
                let mut source =
                    splash_workloads::stream(by_name(wl.name()).expect("catalog name"), cfg);
                let start = Instant::now();
                let result = sim.run_source(&mut source);
                best = best.min(start.elapsed().as_secs_f64());
                accesses = result.accesses;
            }
            jobs.push(PerfJob {
                workload: workload.to_string(),
                system: system.name.clone(),
                elapsed_seconds: best,
                accesses,
                events_per_sec: if best > 0.0 {
                    accesses as f64 / best
                } else {
                    0.0
                },
            });
        }
    }
    PerfReport {
        scale: match scale {
            ExperimentScale::Paper => "paper".to_string(),
            ExperimentScale::Reduced => "reduced".to_string(),
        },
        repeats,
        jobs,
    }
}

fn job_json(j: &PerfJob) -> String {
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"system\":\"{}\",\"elapsed_seconds\":{:.6},",
            "\"accesses\":{},\"events_per_sec\":{:.1}}}"
        ),
        j.workload, j.system, j.elapsed_seconds, j.accesses, j.events_per_sec
    )
}

/// Render a perf report as the `BENCH_*.json` object.
pub fn to_json(report: &PerfReport) -> String {
    let jobs = report
        .jobs
        .iter()
        .map(job_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"bench\":\"perf\",\"scale\":\"{}\",\"repeats\":{},",
            "\"mean_events_per_sec\":{:.1},\"jobs\":[{}]}}"
        ),
        report.scale,
        report.repeats,
        report.mean_events_per_sec(),
        jobs
    )
}

/// Write a perf report as JSON to `path`.
pub fn write_json(path: &Path, report: &PerfReport) -> io::Result<()> {
    std::fs::write(path, to_json(report) + "\n")
}

/// Pull `(workload, system, events_per_sec)` triples out of a perf-report
/// JSON (the format written by [`to_json`]).
///
/// The offline environment has no JSON parser (serde is a no-op shim), so
/// this is a purpose-built scanner for the one format this module writes:
/// it walks `"workload"` keys and reads the two sibling fields this check
/// needs.  Unknown fields are skipped; malformed entries are dropped.
pub fn parse_jobs(json: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"workload\":\"") {
        rest = &rest[start + "\"workload\":\"".len()..];
        let Some(wend) = rest.find('"') else { break };
        let workload = rest[..wend].to_string();
        rest = &rest[wend..];
        let Some(sys_at) = rest.find("\"system\":\"") else {
            break;
        };
        rest = &rest[sys_at + "\"system\":\"".len()..];
        let Some(send) = rest.find('"') else { break };
        let system = rest[..send].to_string();
        rest = &rest[send..];
        let Some(eps_at) = rest.find("\"events_per_sec\":") else {
            break;
        };
        rest = &rest[eps_at + "\"events_per_sec\":".len()..];
        let num_end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(eps) = rest[..num_end].parse::<f64>() {
            out.push((workload, system, eps));
        }
        rest = &rest[num_end..];
    }
    out
}

/// Compare a fresh report against a committed baseline JSON: every baseline
/// job also present in `current` must reach at least `(1 - tolerance)` of
/// its baseline events/sec.  Returns one message per regressed job (empty =
/// pass).  Baseline jobs the current report did not run are skipped, so a
/// CI smoke run may cover a subset of the committed matrix.
pub fn regression_failures(
    current: &PerfReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (workload, system, base_eps) in parse_jobs(baseline_json) {
        let Some(job) = current.job(&workload, &system) else {
            continue;
        };
        let floor = base_eps * (1.0 - tolerance);
        if job.events_per_sec < floor {
            failures.push(format!(
                "{workload}/{system}: {:.0} events/sec is below {:.0} \
                 ({:.0}% of the {:.0} baseline)",
                job.events_per_sec,
                floor,
                (1.0 - tolerance) * 100.0,
                base_eps,
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> PerfReport {
        PerfReport {
            scale: "reduced".to_string(),
            repeats: 2,
            jobs: vec![
                PerfJob {
                    workload: "radix".into(),
                    system: "CC-NUMA".into(),
                    elapsed_seconds: 0.5,
                    accesses: 1_000_000,
                    events_per_sec: 2_000_000.0,
                },
                PerfJob {
                    workload: "lu".into(),
                    system: "R-NUMA".into(),
                    elapsed_seconds: 0.25,
                    accesses: 500_000,
                    events_per_sec: 2_000_000.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_scanner() {
        let report = toy_report();
        let json = to_json(&report);
        assert!(json.contains("\"bench\":\"perf\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let jobs = parse_jobs(&json);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].0, "radix");
        assert_eq!(jobs[0].1, "CC-NUMA");
        assert!((jobs[0].2 - 2_000_000.0).abs() < 1.0);
        assert_eq!(jobs[1].0, "lu");
    }

    #[test]
    fn regression_check_flags_only_real_regressions() {
        let baseline = to_json(&toy_report());
        let mut current = toy_report();
        // Same numbers: no failures.
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
        // 20% slower is inside a 30% tolerance.
        current.jobs[0].events_per_sec = 1_600_000.0;
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
        // 50% slower is a regression, and the message names the job.
        current.jobs[0].events_per_sec = 1_000_000.0;
        let failures = regression_failures(&current, &baseline, 0.3);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("radix/CC-NUMA"), "{}", failures[0]);
    }

    #[test]
    fn baseline_jobs_missing_from_current_are_skipped() {
        let baseline = to_json(&toy_report());
        let mut current = toy_report();
        current.jobs.remove(1);
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
    }

    #[test]
    fn malformed_baseline_yields_no_jobs_not_a_panic() {
        assert!(parse_jobs("").is_empty());
        assert!(parse_jobs("{\"workload\":\"x\"").is_empty());
        assert!(parse_jobs("not json at all").is_empty());
    }

    #[test]
    fn measure_reports_positive_throughput() {
        // Smallest real job: one workload, one system, one repeat.
        let report = measure(
            MachineConfig::PAPER,
            &[dsm_core::System::cc_numa().build()],
            &["ocean"],
            ExperimentScale::Reduced,
            1,
        );
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        assert_eq!(job.workload, "ocean");
        assert!(job.accesses > 0);
        assert!(job.events_per_sec > 0.0);
        assert!(report.mean_events_per_sec() > 0.0);
    }

    #[test]
    fn empty_report_means_zero_not_nan() {
        let empty = PerfReport {
            scale: "reduced".into(),
            repeats: 1,
            jobs: vec![],
        };
        assert_eq!(empty.mean_events_per_sec(), 0.0);
        assert!(empty.job("radix", "CC-NUMA").is_none());
    }
}
