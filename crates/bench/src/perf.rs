//! The perf-benchmark subsystem: wall-clock throughput per (workload,
//! system) job.
//!
//! Simulator throughput is the binding constraint on every scenario the
//! harness adds — the paper's figures come from pushing millions of memory
//! references through per-block directory and cache state — so this module
//! gives the repo a measured perf trajectory instead of anecdotes:
//!
//! * [`measure`] runs each (workload, system) job through the streaming
//!   pipeline, takes the best wall-clock of `repeats` runs (simulation is
//!   deterministic, so the minimum is the least-noisy estimate), and
//!   reports **events/sec** (simulated shared-memory accesses per second of
//!   wall clock);
//! * [`to_json`]/[`write_json`] render the report as the machine-readable
//!   `BENCH_*.json` format the perf trajectory is tracked in;
//! * [`regression_failures`] compares a fresh report against a committed
//!   baseline JSON and flags every job whose throughput regressed beyond a
//!   tolerance — the check behind the CI perf-smoke job.

use std::io;
use std::path::Path;
use std::time::Instant;

use crate::presets::ExperimentScale;
use dsm_core::{ClusterSimulator, MachineConfig, ShardedSimulator, SystemConfig};
use splash_workloads::{by_name, WorkloadConfig};

/// Throughput measurement of one (workload, system) job.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfJob {
    /// Workload name (Table 2 row).
    pub workload: String,
    /// System name ("CC-NUMA", "R-NUMA", ...).
    pub system: String,
    /// Best wall-clock over the report's repeats, in seconds.
    pub elapsed_seconds: f64,
    /// Shared-memory accesses simulated by one run of the job.
    pub accesses: u64,
    /// `accesses / elapsed_seconds` (0 if the job finished too fast for the
    /// clock — the guard keeps degenerate timings from dividing by zero).
    pub events_per_sec: f64,
}

/// A full perf measurement: every (workload, system) job at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Parameter scale the jobs ran at ("paper", "reduced", or a custom
    /// label like "x2").
    pub scale: String,
    /// Wall-clock repetitions per job (best is reported).
    pub repeats: u32,
    /// Per-simulation worker count the jobs ran with (`0` = auto, `1` =
    /// serial).  Throughput depends on it; simulation results do not.
    pub workers: usize,
    /// One entry per (workload, system) pair, workloads outermost.
    pub jobs: Vec<PerfJob>,
}

impl PerfReport {
    /// The job for `(workload, system)`, if measured.
    pub fn job(&self, workload: &str, system: &str) -> Option<&PerfJob> {
        self.jobs
            .iter()
            .find(|j| j.workload == workload && j.system == system)
    }

    /// Mean events/sec across all jobs (0 for an empty report).
    pub fn mean_events_per_sec(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.events_per_sec).sum::<f64>() / self.jobs.len() as f64
    }
}

/// The systems a perf run covers by default: the Table 4 trio (CC-NUMA,
/// CC-NUMA+MigRep, R-NUMA), which together exercise the block-cache,
/// migration/replication and page-cache hot paths.
pub fn default_systems(scale: ExperimentScale) -> Vec<SystemConfig> {
    crate::presets::table4(scale).systems
}

/// Measure every (workload, system) job: run the workload through the
/// *fused* streaming pipeline (generation inside the simulator's pull loop
/// — the configuration a saturated experiment run uses, and the one whose
/// wall-clock is generation + simulation with no channel in between)
/// `repeats` times and keep the best wall-clock.
///
/// # Panics
/// Panics on an unknown workload name or a zero `repeats`.
pub fn measure(
    machine: MachineConfig,
    systems: &[SystemConfig],
    workloads: &[&str],
    scale: ExperimentScale,
    repeats: u32,
) -> PerfReport {
    measure_workers(machine, systems, workloads, scale, repeats, 1)
}

/// [`measure`] with each simulation sharded across `workers` worker
/// threads (`0` = auto, `1` = the serial fused pipeline).  Simulation
/// results — and therefore `accesses` — are bit-identical at any worker
/// count; only the wall clock moves, which is exactly what a serial-vs-
/// sharded perf comparison wants to isolate.
///
/// # Panics
/// Panics on an unknown workload name or a zero `repeats`.
pub fn measure_workers(
    machine: MachineConfig,
    systems: &[SystemConfig],
    workloads: &[&str],
    scale: ExperimentScale,
    repeats: u32,
    workers: usize,
) -> PerfReport {
    assert!(repeats > 0, "perf measurement needs at least one repeat");
    let cfg = WorkloadConfig::at_scale(scale.workload_scale());
    let sharded = (workers != 1)
        .then(|| dsm_core::resolve_workers(workers, &machine))
        .filter(|&w| w > 1);
    let mut jobs = Vec::with_capacity(workloads.len() * systems.len());
    for workload in workloads {
        let wl = by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
        for system in systems {
            let mut best = f64::INFINITY;
            let mut accesses = 0;
            for _ in 0..repeats {
                let result = match sharded {
                    Some(w) => {
                        let sim = ShardedSimulator::new(machine, system.clone(), w);
                        let mut source = splash_workloads::sharded(wl.as_ref(), &cfg, w);
                        let start = Instant::now();
                        let result = sim.run_source(&mut source);
                        best = best.min(start.elapsed().as_secs_f64());
                        result
                    }
                    None => {
                        let sim = ClusterSimulator::new(machine, system.clone());
                        let mut source = splash_workloads::fused(wl.as_ref(), &cfg);
                        let start = Instant::now();
                        let result = sim.run_source(&mut source);
                        best = best.min(start.elapsed().as_secs_f64());
                        result
                    }
                };
                accesses = result.accesses;
            }
            jobs.push(PerfJob {
                workload: workload.to_string(),
                system: system.name.clone(),
                elapsed_seconds: best,
                accesses,
                events_per_sec: if best > 0.0 {
                    accesses as f64 / best
                } else {
                    0.0
                },
            });
        }
    }
    PerfReport {
        scale: scale.label(),
        repeats,
        workers,
        jobs,
    }
}

fn job_json(j: &PerfJob) -> String {
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"system\":\"{}\",\"elapsed_seconds\":{:.6},",
            "\"accesses\":{},\"events_per_sec\":{:.1}}}"
        ),
        j.workload, j.system, j.elapsed_seconds, j.accesses, j.events_per_sec
    )
}

/// Render a perf report as the `BENCH_*.json` object.
pub fn to_json(report: &PerfReport) -> String {
    let jobs = report
        .jobs
        .iter()
        .map(job_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"bench\":\"perf\",\"scale\":\"{}\",\"repeats\":{},",
            "\"workers\":{},\"mean_events_per_sec\":{:.1},\"jobs\":[{}]}}"
        ),
        report.scale,
        report.repeats,
        report.workers,
        report.mean_events_per_sec(),
        jobs
    )
}

/// Write a perf report as JSON to `path`.
pub fn write_json(path: &Path, report: &PerfReport) -> io::Result<()> {
    std::fs::write(path, to_json(report) + "\n")
}

/// Pull `(workload, system, events_per_sec)` triples out of a perf-report
/// JSON (the format written by [`to_json`]).
///
/// The offline environment has no JSON parser (serde is a no-op shim), so
/// this is a purpose-built scanner for the one format this module writes:
/// it walks `"workload"` keys and reads the two sibling fields this check
/// needs.  Unknown fields are skipped; malformed entries are dropped.
pub fn parse_jobs(json: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"workload\":\"") {
        rest = &rest[start + "\"workload\":\"".len()..];
        let Some(wend) = rest.find('"') else { break };
        let workload = rest[..wend].to_string();
        rest = &rest[wend..];
        let Some(sys_at) = rest.find("\"system\":\"") else {
            break;
        };
        rest = &rest[sys_at + "\"system\":\"".len()..];
        let Some(send) = rest.find('"') else { break };
        let system = rest[..send].to_string();
        rest = &rest[send..];
        let Some(eps_at) = rest.find("\"events_per_sec\":") else {
            break;
        };
        rest = &rest[eps_at + "\"events_per_sec\":".len()..];
        let num_end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(eps) = rest[..num_end].parse::<f64>() {
            out.push((workload, system, eps));
        }
        rest = &rest[num_end..];
    }
    out
}

/// Compare a fresh report against a committed baseline JSON: every baseline
/// job also present in `current` must reach at least `(1 - tolerance)` of
/// its baseline events/sec.  Returns one message per regressed job (empty =
/// pass).  Baseline jobs the current report did not run are skipped, so a
/// CI smoke run may cover a subset of the committed matrix.
pub fn regression_failures(
    current: &PerfReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (workload, system, base_eps) in parse_jobs(baseline_json) {
        let Some(job) = current.job(&workload, &system) else {
            continue;
        };
        let floor = base_eps * (1.0 - tolerance);
        if job.events_per_sec < floor {
            failures.push(format!(
                "{workload}/{system}: {:.0} events/sec is below {:.0} \
                 ({:.0}% of the {:.0} baseline)",
                job.events_per_sec,
                floor,
                (1.0 - tolerance) * 100.0,
                base_eps,
            ));
        }
    }
    failures
}

// ---------------------------------------------------------------------
// The perf trend across PRs (`trend` binary)
// ---------------------------------------------------------------------

/// One `BENCH_*.json` file's contribution to the perf trend.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendEntry {
    /// File name the entry came from.
    pub file: String,
    /// PR number (the JSON's `"pr"` field, else parsed from the
    /// `BENCH_<n>.json` name).
    pub pr: Option<u64>,
    /// Parameter scale of the measurement.
    pub scale: String,
    /// Mean events/sec.  Trajectory files with pre/post sections report the
    /// *last* (post-change) measurement: the state the PR left the repo in.
    pub mean_events_per_sec: f64,
}

/// Scan one `BENCH_*.json` body for its trend entry.  Handles both the
/// plain [`to_json`] report shape and the pre/post trajectory wrapper of
/// `BENCH_3.json` (where the last `mean_events_per_sec` is the post-change
/// state).
pub fn parse_trend_entry(file: &str, json: &str) -> Option<TrendEntry> {
    let mean = json
        .rmatch_indices("\"mean_events_per_sec\":")
        .next()
        .and_then(|(at, key)| scan_number(&json[at + key.len()..]))?;
    let scale = json
        .rmatch_indices("\"scale\":")
        .next()
        .and_then(|(at, key)| {
            // Tolerate pretty-printed JSON: whitespace before the value.
            let rest = json[at + key.len()..].trim_start();
            let rest = rest.strip_prefix('"')?;
            rest.find('"').map(|end| rest[..end].to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let pr = json
        .find("\"pr\":")
        .and_then(|at| scan_number(&json[at + "\"pr\":".len()..]))
        .map(|n| n as u64)
        .or_else(|| {
            file.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        });
    Some(TrendEntry {
        file: file.to_string(),
        pr,
        scale,
        mean_events_per_sec: mean,
    })
}

fn scan_number(rest: &str) -> Option<f64> {
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Collect every `BENCH_*.json` under `dir` into trend entries, ordered by
/// PR number (unnumbered files last, by name).
pub fn collect_trend(dir: &Path) -> io::Result<Vec<TrendEntry>> {
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let body = std::fs::read_to_string(entry.path())?;
        if let Some(t) = parse_trend_entry(&name, &body) {
            entries.push(t);
        }
    }
    entries.sort_by(|a, b| match (a.pr, b.pr) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.file.cmp(&b.file),
    });
    Ok(entries)
}

/// Tabulate the trend: one row per `BENCH_*.json`, with each row's speedup
/// against the previous PR's mean.  A ratio is only printed when the two
/// rows were measured at the same scale — a reduced-vs-paper quotient would
/// read as a huge regression (or win) that is really just the scale change.
pub fn format_trend(entries: &[TrendEntry]) -> String {
    let mut out = String::from("# perf trend: mean events/sec per PR (from BENCH_*.json)\n");
    out.push_str(&format!(
        "{:<16} {:>4} {:>9} {:>20} {:>10}\n",
        "file", "pr", "scale", "mean_events_per_sec", "vs_prev"
    ));
    let mut prev: Option<&TrendEntry> = None;
    for e in entries {
        let vs_prev = match prev {
            Some(p) if p.mean_events_per_sec > 0.0 && p.scale == e.scale => {
                format!("{:.2}x", e.mean_events_per_sec / p.mean_events_per_sec)
            }
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<16} {:>4} {:>9} {:>20.1} {:>10}\n",
            e.file,
            e.pr.map_or_else(|| "-".to_string(), |p| p.to_string()),
            e.scale,
            e.mean_events_per_sec,
            vs_prev
        ));
        prev = Some(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> PerfReport {
        PerfReport {
            scale: "reduced".to_string(),
            repeats: 2,
            workers: 1,
            jobs: vec![
                PerfJob {
                    workload: "radix".into(),
                    system: "CC-NUMA".into(),
                    elapsed_seconds: 0.5,
                    accesses: 1_000_000,
                    events_per_sec: 2_000_000.0,
                },
                PerfJob {
                    workload: "lu".into(),
                    system: "R-NUMA".into(),
                    elapsed_seconds: 0.25,
                    accesses: 500_000,
                    events_per_sec: 2_000_000.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_scanner() {
        let report = toy_report();
        let json = to_json(&report);
        assert!(json.contains("\"bench\":\"perf\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let jobs = parse_jobs(&json);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].0, "radix");
        assert_eq!(jobs[0].1, "CC-NUMA");
        assert!((jobs[0].2 - 2_000_000.0).abs() < 1.0);
        assert_eq!(jobs[1].0, "lu");
    }

    #[test]
    fn regression_check_flags_only_real_regressions() {
        let baseline = to_json(&toy_report());
        let mut current = toy_report();
        // Same numbers: no failures.
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
        // 20% slower is inside a 30% tolerance.
        current.jobs[0].events_per_sec = 1_600_000.0;
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
        // 50% slower is a regression, and the message names the job.
        current.jobs[0].events_per_sec = 1_000_000.0;
        let failures = regression_failures(&current, &baseline, 0.3);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("radix/CC-NUMA"), "{}", failures[0]);
    }

    #[test]
    fn baseline_jobs_missing_from_current_are_skipped() {
        let baseline = to_json(&toy_report());
        let mut current = toy_report();
        current.jobs.remove(1);
        assert!(regression_failures(&current, &baseline, 0.3).is_empty());
    }

    #[test]
    fn malformed_baseline_yields_no_jobs_not_a_panic() {
        assert!(parse_jobs("").is_empty());
        assert!(parse_jobs("{\"workload\":\"x\"").is_empty());
        assert!(parse_jobs("not json at all").is_empty());
    }

    #[test]
    fn measure_reports_positive_throughput() {
        // Smallest real job: one workload, one system, one repeat.
        let report = measure(
            MachineConfig::PAPER,
            &[dsm_core::System::cc_numa().build()],
            &["ocean"],
            ExperimentScale::Reduced,
            1,
        );
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        assert_eq!(job.workload, "ocean");
        assert!(job.accesses > 0);
        assert!(job.events_per_sec > 0.0);
        assert!(report.mean_events_per_sec() > 0.0);
    }

    #[test]
    fn trend_entry_reads_plain_reports_and_trajectory_wrappers() {
        // Plain report: pr comes from the file name.
        let plain = to_json(&toy_report());
        let t = parse_trend_entry("BENCH_4.json", &plain).unwrap();
        assert_eq!(t.pr, Some(4));
        assert_eq!(t.scale, "reduced");
        assert!((t.mean_events_per_sec - 2_000_000.0).abs() < 1.0);

        // Trajectory wrapper: explicit pr, and the *last* mean wins (the
        // post-change state).
        let wrapper = format!(
            "{{\"bench\":\"perf-trajectory\",\"pr\":3,\"pre_refactor\":{},\"post_refactor\":{}}}",
            to_json(&toy_report()),
            to_json(&PerfReport {
                jobs: vec![PerfJob {
                    events_per_sec: 6_000_000.0,
                    ..toy_report().jobs[0].clone()
                }],
                ..toy_report()
            })
        );
        let t = parse_trend_entry("BENCH_3.json", &wrapper).unwrap();
        assert_eq!(t.pr, Some(3));
        assert!((t.mean_events_per_sec - 6_000_000.0).abs() < 1.0);

        // Pretty-printed JSON (the BENCH_3.json style, spaces after
        // colons) parses too.
        let pretty = "{\n \"pr\": 6,\n \"scale\": \"paper\",\n \
                      \"mean_events_per_sec\": 1234.5\n}";
        let t = parse_trend_entry("BENCH_6.json", pretty).unwrap();
        assert_eq!(t.pr, Some(6));
        assert_eq!(t.scale, "paper");
        assert!((t.mean_events_per_sec - 1234.5).abs() < 0.01);

        // Garbage yields no entry.
        assert!(parse_trend_entry("BENCH_9.json", "not json").is_none());
    }

    #[test]
    fn trend_table_orders_by_pr_and_reports_speedups() {
        let entries = vec![
            TrendEntry {
                file: "BENCH_3.json".into(),
                pr: Some(3),
                scale: "paper".into(),
                mean_events_per_sec: 2_000_000.0,
            },
            TrendEntry {
                file: "BENCH_4.json".into(),
                pr: Some(4),
                scale: "paper".into(),
                mean_events_per_sec: 3_000_000.0,
            },
        ];
        let table = format_trend(&entries);
        assert!(table.contains("BENCH_3.json"));
        assert!(table.contains("BENCH_4.json"));
        assert!(table.contains("1.50x"), "{table}");
        assert_eq!(table.lines().count(), 2 + entries.len());

        // A scale change between adjacent rows suppresses the ratio: a
        // reduced-vs-paper quotient is not a speedup.
        let mixed = vec![
            TrendEntry {
                file: "BENCH_2.json".into(),
                pr: Some(2),
                scale: "reduced".into(),
                mean_events_per_sec: 5_000_000.0,
            },
            entries[0].clone(),
        ];
        let table = format_trend(&mixed);
        assert!(!table.contains('x'), "cross-scale ratio printed: {table}");
    }

    #[test]
    fn collect_trend_scans_a_directory() {
        let dir = std::env::temp_dir().join("dsm-repro-trend-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_7.json"), to_json(&toy_report())).unwrap();
        std::fs::write(dir.join("BENCH_5.json"), to_json(&toy_report())).unwrap();
        std::fs::write(dir.join("unrelated.json"), "{}").unwrap();
        let entries = collect_trend(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].pr, Some(5), "sorted by PR number");
        assert_eq!(entries[1].pr, Some(7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_report_means_zero_not_nan() {
        let empty = PerfReport {
            scale: "reduced".into(),
            repeats: 1,
            workers: 1,
            jobs: vec![],
        };
        assert_eq!(empty.mean_events_per_sec(), 0.0);
        assert!(empty.job("radix", "CC-NUMA").is_none());
    }
}
