//! The `Experiment` builder: one figure/table = one experiment.
//!
//! An experiment is a machine, a [`SystemSet`] (baseline + compared
//! systems), a set of workloads and a parameter scale.  [`Experiment::run`]
//! simulates every (workload, system) pair — in parallel across worker
//! threads, since independent simulations share nothing mutable — and
//! returns the same [`ExperimentResult`] the report formatters consume:
//!
//! ```no_run
//! use dsm_bench::{presets, Experiment, ExperimentScale};
//! use dsm_core::MachineConfig;
//!
//! let result = Experiment::new(MachineConfig::PAPER)
//!     .systems(presets::figure5(ExperimentScale::Reduced))
//!     .workloads(["lu", "ocean"])
//!     .threads(8)
//!     .run();
//! println!("{}", dsm_bench::report::format_normalized_table(&result));
//! ```
//!
//! Custom traces (instead of named Table 2 workloads) are supplied with
//! [`Experiment::traces`], which makes the harness usable for ad-hoc
//! sharing-pattern studies (see `examples/custom_workload.rs`).

use crate::cli::Options;
use crate::presets::{ExperimentScale, SystemSet};
use crate::runner::{default_threads, ExperimentResult, WorkloadResult};
use dsm_core::{ClusterSimulator, MachineConfig, SimResult, SystemConfig};
use mem_trace::ProgramTrace;
use splash_workloads::{by_name, WorkloadConfig};

/// Where an experiment's traces come from.
#[derive(Debug, Clone)]
enum WorkloadSource {
    /// Named Table 2 workloads, generated at the experiment's scale.
    Named(Vec<String>),
    /// Pre-built traces supplied by the caller.
    Traces(Vec<ProgramTrace>),
}

/// Builder for one experiment run.  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Experiment {
    machine: MachineConfig,
    systems: Option<SystemSet>,
    source: WorkloadSource,
    scale: ExperimentScale,
    threads: usize,
}

impl Experiment {
    /// Start an experiment on `machine`.  Defaults: all seven Table 2
    /// workloads, reduced scale, one worker thread per CPU.
    pub fn new(machine: MachineConfig) -> Self {
        Experiment {
            machine,
            systems: None,
            source: WorkloadSource::Named(
                splash_workloads::names()
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            ),
            scale: ExperimentScale::Reduced,
            threads: default_threads(),
        }
    }

    /// The systems to compare (baseline + compared systems, in plot order).
    /// Required before [`Experiment::run`].
    pub fn systems(mut self, set: SystemSet) -> Self {
        self.systems = Some(set);
        self
    }

    /// Restrict to the given Table 2 workloads.
    ///
    /// # Panics
    /// Panics on a name not in the catalog.
    pub fn workloads<I, S>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = workloads.into_iter().map(Into::into).collect();
        for name in &names {
            assert!(by_name(name).is_some(), "unknown workload {name}");
        }
        self.source = WorkloadSource::Named(names);
        self
    }

    /// Run on pre-built traces instead of named workloads (the traces must
    /// match the experiment's machine topology).
    pub fn traces(mut self, traces: Vec<ProgramTrace>) -> Self {
        self.source = WorkloadSource::Traces(traces);
        self
    }

    /// Problem/parameter scale for named workloads.
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = scale;
        self
    }

    /// Number of simulation worker threads (at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Apply parsed command-line options: workloads, scale and threads.
    pub fn options(self, opts: &Options) -> Self {
        self.workloads(opts.workload_names())
            .scale(opts.scale)
            .threads(opts.threads)
    }

    /// Run every (workload, system) pair and collect the results.
    ///
    /// # Panics
    /// Panics if [`Experiment::systems`] was not called, if a worker thread
    /// panics, or if a trace does not match the machine.
    pub fn run(self) -> ExperimentResult {
        let set = self
            .systems
            .expect("Experiment::systems(..) must be called before run()");
        let traces = match self.source {
            WorkloadSource::Named(names) => {
                let cfg = WorkloadConfig::at_scale(self.scale.workload_scale());
                names
                    .iter()
                    .map(|name| {
                        by_name(name)
                            .unwrap_or_else(|| panic!("unknown workload {name}"))
                            .generate(&cfg)
                    })
                    .collect::<Vec<_>>()
            }
            WorkloadSource::Traces(traces) => traces,
        };

        // The full job list; system index 0 is the baseline.
        let mut all_systems: Vec<SystemConfig> = Vec::with_capacity(set.systems.len() + 1);
        all_systems.push(set.baseline.clone());
        all_systems.extend(set.systems.iter().cloned());
        let jobs: Vec<(usize, usize)> = (0..traces.len())
            .flat_map(|w| (0..all_systems.len()).map(move |s| (w, s)))
            .collect();

        let machine = self.machine;
        let results: Vec<Vec<Option<SimResult>>> = {
            let table = std::sync::Mutex::new(vec![vec![None; all_systems.len()]; traces.len()]);
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let (w, s) = jobs[i];
                        let sim = ClusterSimulator::new(machine, all_systems[s].clone());
                        let result = sim.run(&traces[w]);
                        table.lock().expect("result table poisoned")[w][s] = Some(result);
                    });
                }
            });
            table.into_inner().expect("result table poisoned")
        };

        let per_workload = results
            .into_iter()
            .zip(traces.iter())
            .map(|(mut row, trace)| {
                let baseline = row[0].take().expect("baseline result missing");
                let results = row
                    .into_iter()
                    .skip(1)
                    .map(|r| r.expect("system result missing"))
                    .collect();
                WorkloadResult {
                    workload: trace.name.clone(),
                    baseline,
                    results,
                }
            })
            .collect();

        ExperimentResult {
            experiment: set.experiment.to_string(),
            system_names: set.systems.iter().map(|s| s.name.clone()).collect(),
            per_workload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dsm_core::{System, Thresholds};
    use mem_trace::{GlobalAddr, ProcId, TraceBuilder};

    #[test]
    fn runs_a_named_workload_experiment() {
        let result = Experiment::new(MachineConfig::PAPER)
            .systems(presets::table4(ExperimentScale::Reduced))
            .workloads(["ocean"])
            .threads(4)
            .run();
        assert_eq!(result.per_workload.len(), 1);
        assert_eq!(result.per_workload[0].workload, "ocean");
        assert_eq!(result.system_names.len(), 3);
    }

    #[test]
    fn runs_on_custom_traces() {
        let machine = MachineConfig::PAPER;
        let mut b = TraceBuilder::new("custom", machine.topology);
        b.write(ProcId(0), GlobalAddr(0));
        b.barrier_all();
        for _ in 0..100 {
            b.read(ProcId(4), GlobalAddr(0));
        }
        let result = Experiment::new(machine)
            .systems(SystemSet {
                experiment: "custom-trace smoke test",
                baseline: System::perfect_cc_numa().build(),
                systems: vec![System::cc_numa().build()],
            })
            .traces(vec![b.build()])
            .threads(2)
            .run();
        assert_eq!(result.per_workload.len(), 1);
        assert_eq!(result.per_workload[0].workload, "custom");
        assert!(result.per_workload[0].normalized(0) >= 0.99);
    }

    #[test]
    fn experiment_is_deterministic_across_thread_counts() {
        let set = || SystemSet {
            experiment: "determinism",
            baseline: System::perfect_cc_numa().build(),
            systems: vec![
                System::cc_numa().build(),
                System::r_numa()
                    .with(Thresholds {
                        rnuma_threshold: 8,
                        ..Thresholds::paper_fast()
                    })
                    .build(),
            ],
        };
        let a = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(1)
            .run();
        let b = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(8)
            .run();
        for (wa, wb) in a.per_workload.iter().zip(&b.per_workload) {
            assert_eq!(wa.baseline.execution_time, wb.baseline.execution_time);
            for (ra, rb) in wa.results.iter().zip(&wb.results) {
                assert_eq!(ra.execution_time, rb.execution_time);
                assert_eq!(ra.total_remote_misses(), rb.total_remote_misses());
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload linpack")]
    fn unknown_workloads_are_rejected_up_front() {
        let _ = Experiment::new(MachineConfig::PAPER).workloads(["linpack"]);
    }

    #[test]
    #[should_panic(expected = "Experiment::systems")]
    fn running_without_systems_panics() {
        let _ = Experiment::new(MachineConfig::PAPER)
            .workloads(["ocean"])
            .run();
    }
}
