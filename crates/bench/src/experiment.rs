//! The `Experiment` builder: one figure/table = one experiment.
//!
//! An experiment is a machine, a [`SystemSet`] (baseline + compared
//! systems), a set of workloads and a parameter scale.  [`Experiment::run`]
//! simulates every (workload, system) pair — in parallel across worker
//! threads, since independent simulations share nothing mutable — and
//! returns the same [`ExperimentResult`] the report formatters consume:
//!
//! ```no_run
//! use dsm_bench::{presets, Experiment, ExperimentScale};
//! use dsm_core::MachineConfig;
//!
//! let result = Experiment::new(MachineConfig::PAPER)
//!     .systems(presets::figure5(ExperimentScale::Reduced))
//!     .workloads(["lu", "ocean"])
//!     .threads(8)
//!     .run();
//! println!("{}", dsm_bench::report::format_normalized_table(&result));
//! ```
//!
//! Named workloads are **streamed**: every (workload, system) job
//! instantiates a fresh deterministic [`mem_trace::TraceSource`] consumed
//! as the simulation advances — the generator runs *inside* the
//! simulator's pull loop when the worker threads saturate the cores
//! (fused; no thread, no channel), or on its own thread when spare cores
//! can overlap generation with simulation (see
//! [`crate::sweep::SourceMode`]).  Either way peak memory is bounded by
//! the demultiplexing window — not by the trace size, and not by how many
//! workloads the experiment covers.
//!
//! Custom traces (instead of named Table 2 workloads) are supplied with
//! [`Experiment::traces`], which makes the harness usable for ad-hoc
//! sharing-pattern studies (see `examples/custom_workload.rs`); recorded
//! trace files replay through [`Experiment::replay`].

use std::path::PathBuf;

use crate::cli::Options;
use crate::presets::{ExperimentScale, SystemSet};
use crate::runner::{default_threads, ExperimentResult, WorkloadResult};
use crate::sweep::Sweep;
use dsm_core::MachineConfig;
use mem_trace::ProgramTrace;
use splash_workloads::by_name;

/// Where an experiment's traces come from.
#[derive(Debug, Clone)]
enum WorkloadSource {
    /// Named Table 2 workloads, stream-generated at the experiment's scale.
    Named(Vec<String>),
    /// Pre-built traces supplied by the caller.
    Traces(Vec<ProgramTrace>),
    /// Recorded trace files, replayed with bounded memory.
    Replay(Vec<PathBuf>),
}

/// Builder for one experiment run.  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Experiment {
    machine: MachineConfig,
    systems: Option<SystemSet>,
    source: WorkloadSource,
    scale: ExperimentScale,
    threads: usize,
    workers: usize,
}

impl Experiment {
    /// Start an experiment on `machine`.  Defaults: all seven Table 2
    /// workloads, reduced scale, one worker thread per CPU.
    pub fn new(machine: MachineConfig) -> Self {
        Experiment {
            machine,
            systems: None,
            source: WorkloadSource::Named(
                splash_workloads::names()
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            ),
            scale: ExperimentScale::Reduced,
            threads: default_threads(),
            workers: 1,
        }
    }

    /// The systems to compare (baseline + compared systems, in plot order).
    /// Required before [`Experiment::run`].
    pub fn systems(mut self, set: SystemSet) -> Self {
        self.systems = Some(set);
        self
    }

    /// Restrict to the given Table 2 workloads.
    ///
    /// # Panics
    /// Panics on a name not in the catalog.
    pub fn workloads<I, S>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = workloads.into_iter().map(Into::into).collect();
        for name in &names {
            assert!(by_name(name).is_some(), "unknown workload {name}");
        }
        self.source = WorkloadSource::Named(names);
        self
    }

    /// Run on pre-built traces instead of named workloads (the traces must
    /// match the experiment's machine topology).
    pub fn traces(mut self, traces: Vec<ProgramTrace>) -> Self {
        self.source = WorkloadSource::Traces(traces);
        self
    }

    /// Replay a recorded trace file (see [`mem_trace::replay`]) instead of
    /// generating a workload; each job re-opens the file and streams it, so
    /// memory stays bounded.  Call repeatedly to replay several files.
    pub fn replay(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        match &mut self.source {
            WorkloadSource::Replay(paths) => paths.push(path),
            _ => self.source = WorkloadSource::Replay(vec![path]),
        }
        self
    }

    /// Problem/parameter scale for named workloads.
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = scale;
        self
    }

    /// Number of simulation worker threads (at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shard each simulation across `workers` worker threads (`0` = auto,
    /// one per available core; the default `1` is the exact serial path).
    /// Results are bit-identical at any worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Apply parsed command-line options: workloads (or a replay file),
    /// scale, threads and per-simulation workers.
    pub fn options(self, opts: &Options) -> Self {
        let exp = match &opts.replay {
            Some(path) => self.replay(path.clone()),
            None => self.workloads(opts.workload_names()),
        };
        exp.scale(opts.scale)
            .threads(opts.threads)
            .workers(opts.workers)
    }

    /// Run every (workload, system) pair and collect the results.
    ///
    /// The experiment is a thin single-point [`Sweep`]: one machine, no
    /// swept axes, the `SystemSet`'s baseline as the normalization system.
    /// Each job instantiates its own fresh trace source — a streaming
    /// generator for named workloads, a cursor for caller-supplied traces, a
    /// re-opened file for replays — so simulations proceed independently and
    /// peak memory does not scale with the trace size or workload count.
    ///
    /// # Panics
    /// Panics if [`Experiment::systems`] was not called, if a worker thread
    /// panics, if a replay file cannot be opened, or if a trace does not
    /// match the machine.
    pub fn run(self) -> ExperimentResult {
        let set = self
            .systems
            .expect("Experiment::systems(..) must be called before run()");
        let system_count = set.systems.len();
        let experiment = set.experiment.to_string();
        let system_names: Vec<String> = set.systems.iter().map(|s| s.name.clone()).collect();

        let mut sweep = Sweep::new(experiment.clone())
            .machine(self.machine)
            .system_set(set)
            .scale(self.scale)
            .threads(self.threads)
            .workers(self.workers);
        sweep = match self.source {
            WorkloadSource::Named(names) => sweep.workloads(names),
            WorkloadSource::Traces(traces) => sweep.traces(traces),
            WorkloadSource::Replay(paths) => {
                paths.into_iter().fold(sweep, |sweep, p| sweep.replay(p))
            }
        };
        let swept = sweep.run();

        // A one-point sweep enumerates workloads outermost and systems
        // innermost: baselines are per workload, points are [workload x
        // system] in `SystemSet` order.
        debug_assert_eq!(swept.points.len(), swept.baselines.len() * system_count);
        let per_workload = swept
            .baselines
            .into_iter()
            .enumerate()
            .map(|(w, baseline)| {
                let row = &swept.points[w * system_count..(w + 1) * system_count];
                WorkloadResult {
                    workload: baseline.axes.workload.clone(),
                    baseline: baseline.result,
                    baseline_elapsed_seconds: baseline.elapsed_seconds,
                    results: row.iter().map(|p| p.result.clone()).collect(),
                    elapsed_seconds: row.iter().map(|p| p.elapsed_seconds).collect(),
                }
            })
            .collect();

        ExperimentResult {
            experiment,
            system_names,
            workers: self.workers,
            per_workload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dsm_core::{System, Thresholds};
    use mem_trace::{GlobalAddr, ProcId, TraceBuilder};
    use splash_workloads::WorkloadConfig;

    #[test]
    fn runs_a_named_workload_experiment() {
        let result = Experiment::new(MachineConfig::PAPER)
            .systems(presets::table4(ExperimentScale::Reduced))
            .workloads(["ocean"])
            .threads(4)
            .run();
        assert_eq!(result.per_workload.len(), 1);
        assert_eq!(result.per_workload[0].workload, "ocean");
        assert_eq!(result.system_names.len(), 3);
    }

    #[test]
    fn runs_on_custom_traces() {
        let machine = MachineConfig::PAPER;
        let mut b = TraceBuilder::new("custom", machine.topology);
        b.write(ProcId(0), GlobalAddr(0));
        b.barrier_all();
        for _ in 0..100 {
            b.read(ProcId(4), GlobalAddr(0));
        }
        let result = Experiment::new(machine)
            .systems(SystemSet {
                experiment: "custom-trace smoke test",
                baseline: System::perfect_cc_numa().build(),
                systems: vec![System::cc_numa().build()],
            })
            .traces(vec![b.build()])
            .threads(2)
            .run();
        assert_eq!(result.per_workload.len(), 1);
        assert_eq!(result.per_workload[0].workload, "custom");
        assert!(result.per_workload[0].normalized(0) >= 0.99);
    }

    #[test]
    fn experiment_is_deterministic_across_thread_counts() {
        let set = || SystemSet {
            experiment: "determinism",
            baseline: System::perfect_cc_numa().build(),
            systems: vec![
                System::cc_numa().build(),
                System::r_numa()
                    .with(Thresholds {
                        rnuma_threshold: 8,
                        ..Thresholds::paper_fast()
                    })
                    .build(),
            ],
        };
        let a = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(1)
            .run();
        let b = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(8)
            .run();
        for (wa, wb) in a.per_workload.iter().zip(&b.per_workload) {
            assert_eq!(wa.baseline.execution_time, wb.baseline.execution_time);
            for (ra, rb) in wa.results.iter().zip(&wb.results) {
                assert_eq!(ra.execution_time, rb.execution_time);
                assert_eq!(ra.total_remote_misses(), rb.total_remote_misses());
            }
        }
    }

    #[test]
    fn streamed_named_workloads_match_materialized_traces() {
        // The named path streams each job; feeding the same workload as a
        // pre-materialized trace must give bit-identical results.
        let set = || SystemSet {
            experiment: "stream parity",
            baseline: System::perfect_cc_numa().build(),
            systems: vec![System::cc_numa().build()],
        };
        let streamed = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(2)
            .run();
        let trace = splash_workloads::by_name("ocean")
            .unwrap()
            .generate(&WorkloadConfig::reduced());
        let materialized = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .traces(vec![trace])
            .threads(2)
            .run();
        assert_eq!(streamed.per_workload.len(), materialized.per_workload.len());
        assert_eq!(
            streamed.per_workload[0].baseline,
            materialized.per_workload[0].baseline
        );
        assert_eq!(
            streamed.per_workload[0].results,
            materialized.per_workload[0].results
        );
    }

    #[test]
    fn replayed_trace_file_matches_the_generated_workload() {
        use mem_trace::record_to_file;
        let cfg = WorkloadConfig::reduced();
        let path = std::env::temp_dir().join("dsm-repro-experiment-replay.trc");
        let mut stream = splash_workloads::stream(by_name("ocean").unwrap(), cfg);
        record_to_file(&mut stream, &path).unwrap();

        let set = || SystemSet {
            experiment: "replay parity",
            baseline: System::perfect_cc_numa().build(),
            systems: vec![System::cc_numa().build()],
        };
        let replayed = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .replay(&path)
            .threads(2)
            .run();
        let generated = Experiment::new(MachineConfig::PAPER)
            .systems(set())
            .workloads(["ocean"])
            .threads(2)
            .run();
        assert_eq!(replayed.per_workload[0].workload, "ocean");
        assert_eq!(
            replayed.per_workload[0].baseline,
            generated.per_workload[0].baseline
        );
        assert_eq!(
            replayed.per_workload[0].results,
            generated.per_workload[0].results
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn thread_count_is_capped_at_the_job_count() {
        // A 1-workload, 2-system experiment has 3 jobs; asking for 64
        // threads must still work (and not spawn 61 idle workers).
        let result = Experiment::new(MachineConfig::PAPER)
            .systems(SystemSet {
                experiment: "cap",
                baseline: System::perfect_cc_numa().build(),
                systems: vec![System::cc_numa().build()],
            })
            .workloads(["ocean"])
            .threads(64)
            .run();
        assert_eq!(result.per_workload.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown workload linpack")]
    fn unknown_workloads_are_rejected_up_front() {
        let _ = Experiment::new(MachineConfig::PAPER).workloads(["linpack"]);
    }

    #[test]
    #[should_panic(expected = "Experiment::systems")]
    fn running_without_systems_panics() {
        let _ = Experiment::new(MachineConfig::PAPER)
            .workloads(["ocean"])
            .run();
    }
}
