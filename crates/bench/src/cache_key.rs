//! Content-addressed cache keys for sweep points.
//!
//! PR 4's per-point baseline normalization and PR 5's deterministic fused
//! generators made every sweep point a *pure function* of its
//! configuration: the same (workload + scale, system, machine) always
//! produces the same bit-identical [`SimResult`](dsm_core::SimResult).
//! [`CacheKey`] turns that configuration into a stable 128-bit address —
//! two independent FNV-1a streams over a canonical, versioned field
//! encoding — so repeated and overlapping sweeps (across requests, across
//! clients, across server restarts) can reuse prior points instead of
//! re-simulating them.  The `sweep-service` crate's result cache and the
//! offline report renderers ([`crate::report::sweep_to_csv`],
//! [`crate::report::sweep_to_json`],
//! [`crate::report::format_sweep_points`]) share this keyspace, so a CSV
//! row is joinable with a server's `cache-stats` output by key.
//!
//! The encoding is deliberately *not* Rust's `Hash` (which is allowed to
//! vary across releases and processes): every field is fed explicitly, in
//! a fixed order, behind [`KEY_FORMAT_VERSION`].  Changing the encoding —
//! or the meaning of any field feeding it — must bump the version so stale
//! on-disk caches miss cleanly instead of colliding.
//!
//! What the key covers: the workload name and problem scale, the full
//! machine (topology, page/block geometry, L1 sizing), and the full system
//! configuration (display name, block/page cache, migration/replication
//! switches, every cost-model latency, every threshold including the
//! relocation delay, and the names of any extra policies).  Extra policies
//! are keyed *by name only* — two different policies sharing a name would
//! collide, so give bespoke policies distinct names before caching sweeps
//! over them.

use crate::presets::ExperimentScale;
use dsm_core::{CostModel, MachineConfig, SystemConfig, Thresholds};
use dsm_protocol::{BlockCacheConfig, PageCacheConfig};

/// Bumped whenever the canonical field encoding below changes, so caches
/// written by older encodings miss instead of colliding.
pub const KEY_FORMAT_VERSION: u32 = 1;

/// A 128-bit content address of one sweep point's configuration.
///
/// Rendered as 32 lowercase hex digits (high word first) by
/// [`CacheKey::to_hex`]; [`CacheKey::from_hex`] parses it back.  Equality
/// of keys is the cache's notion of "the same simulation".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The 32-hex-digit rendering used in reports and the cache file.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse a [`CacheKey::to_hex`] rendering.  Returns `None` unless the
    /// input is exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(CacheKey {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
// A distinct basis for the low word: the FNV offset perturbed by the
// golden-ratio constant, so the two streams decorrelate.
const OFFSET_LO: u64 = OFFSET_HI ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental hasher behind [`CacheKey`]: two FNV-1a streams fed the same
/// canonical byte sequence.  Multi-byte values are length- or
/// little-endian-encoded explicitly so the digest is identical across
/// platforms and processes.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    hi: u64,
    lo: u64,
}

impl KeyHasher {
    /// A fresh hasher, already fed [`KEY_FORMAT_VERSION`].
    pub fn new() -> Self {
        let mut h = KeyHasher {
            hi: OFFSET_HI,
            lo: OFFSET_LO,
        };
        h.u64(u64::from(KEY_FORMAT_VERSION));
        h
    }

    fn byte(&mut self, b: u8) {
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Feed a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Feed a one-byte structural tag (enum discriminants, presence bits).
    pub fn tag(&mut self, t: u8) {
        self.byte(t);
    }

    /// Feed a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    /// Finish the digest.
    pub fn finish(&self) -> CacheKey {
        CacheKey {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn feed_block_cache(h: &mut KeyHasher, cache: Option<BlockCacheConfig>) {
    match cache {
        None => h.tag(0),
        Some(BlockCacheConfig::Finite { size_bytes }) => {
            h.tag(1);
            h.u64(size_bytes);
        }
        Some(BlockCacheConfig::Infinite) => h.tag(2),
    }
}

fn feed_page_cache(h: &mut KeyHasher, cache: Option<PageCacheConfig>) {
    match cache {
        None => h.tag(0),
        Some(PageCacheConfig::Finite { size_bytes }) => {
            h.tag(1);
            h.u64(size_bytes);
        }
        Some(PageCacheConfig::Infinite) => h.tag(2),
    }
}

fn feed_costs(h: &mut KeyHasher, c: &CostModel) {
    h.u64(c.network_latency.raw());
    h.u64(c.local_miss.raw());
    h.u64(c.remote_miss.raw());
    h.u64(c.cache_hit.raw());
    h.u64(c.soft_trap.raw());
    h.u64(c.tlb_shootdown.raw());
    h.u64(c.page_alloc_min.raw());
    h.u64(c.page_alloc_max.raw());
    h.u64(c.page_gather_min.raw());
    h.u64(c.page_gather_max.raw());
    h.u64(c.page_copy_min.raw());
    h.u64(c.page_copy_max.raw());
}

fn feed_thresholds(h: &mut KeyHasher, t: &Thresholds) {
    h.u64(t.migrep_threshold);
    h.u64(t.migrep_reset_interval);
    h.u64(t.rnuma_threshold);
    h.u64(t.rnuma_relocation_delay);
}

/// The content address of one sweep point: a stable digest of
/// (workload + scale, machine, system).  This is a pure function of the
/// configuration — the simulator is deterministic, so equal keys mean
/// bit-identical [`SimResult`](dsm_core::SimResult)s.
pub fn point_key(
    machine: &MachineConfig,
    system: &SystemConfig,
    scale: ExperimentScale,
    workload: &str,
) -> CacheKey {
    let mut h = KeyHasher::new();
    // Workload identity: the name plus the problem scale it generates at.
    h.str(workload);
    h.str(&scale.label());
    // Machine: topology, geometry, L1 sizing.
    h.u64(u64::from(machine.topology.nodes));
    h.u64(u64::from(machine.topology.procs_per_node));
    h.u64(machine.geometry.page_bytes);
    h.u64(machine.geometry.block_bytes);
    h.u64(machine.l1.size_bytes);
    h.u64(machine.l1.block_bytes);
    // System: the display name is part of the identity (SimResult carries
    // it), then every behavioural knob.
    h.str(&system.name);
    feed_block_cache(&mut h, system.block_cache);
    feed_page_cache(&mut h, system.page_cache);
    match system.migrep {
        None => h.tag(0),
        Some(m) => {
            h.tag(1);
            h.tag(u8::from(m.migration));
            h.tag(u8::from(m.replication));
        }
    }
    feed_costs(&mut h, &system.costs);
    feed_thresholds(&mut h, &system.thresholds);
    h.u64(system.extra_policies.len() as u64);
    for extra in &system.extra_policies {
        h.str(extra.instantiate().name());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::{MigRep, System};
    use mem_trace::{Geometry, Topology};

    fn base_key() -> CacheKey {
        point_key(
            &MachineConfig::PAPER,
            &System::cc_numa().build(),
            ExperimentScale::Reduced,
            "radix",
        )
    }

    /// The committed digest of a fixed configuration.  This constant is
    /// what makes "identical points hash identically across processes and
    /// server restarts" testable: the key must never depend on ASLR, hash
    /// seeds, or field iteration order.  If this test fails, the key
    /// format changed — bump [`KEY_FORMAT_VERSION`] and expect every
    /// on-disk cache to go cold.
    #[test]
    fn key_of_the_paper_cc_numa_radix_point_is_pinned() {
        assert_eq!(base_key().to_hex(), "7e6f767b622128a9dd6712052cb62d4c");
    }

    #[test]
    fn hex_round_trips() {
        let key = base_key();
        assert_eq!(CacheKey::from_hex(&key.to_hex()), Some(key));
        assert_eq!(key.to_hex().len(), 32);
        assert_eq!(format!("{key}"), key.to_hex());
        assert_eq!(CacheKey::from_hex("xyz"), None);
        assert_eq!(CacheKey::from_hex(&"f".repeat(31)), None);
        assert_eq!(CacheKey::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn every_configuration_field_perturbs_the_key() {
        let machine = MachineConfig::PAPER;
        let system = System::cc_numa().with(MigRep::both()).build();
        let scale = ExperimentScale::Reduced;
        let base = point_key(&machine, &system, scale, "radix");

        let variants = [
            point_key(&machine, &system, scale, "lu"),
            point_key(&machine, &system, ExperimentScale::Paper, "radix"),
            point_key(
                &machine.with_topology(Topology::new(16, 4)),
                &system,
                scale,
                "radix",
            ),
            point_key(
                &machine.with_topology(Topology::new(8, 2)),
                &system,
                scale,
                "radix",
            ),
            point_key(
                &machine.with_geometry(Geometry::new(8192, 64)),
                &system,
                scale,
                "radix",
            ),
            point_key(
                &machine.with_geometry(Geometry::new(4096, 128)),
                &system,
                scale,
                "radix",
            ),
            point_key(
                &machine,
                &system.clone().with_costs(CostModel::slow()),
                scale,
                "radix",
            ),
            point_key(
                &machine,
                &system.clone().with_thresholds(Thresholds::paper_slow()),
                scale,
                "radix",
            ),
            point_key(
                &machine,
                &system
                    .clone()
                    .with_thresholds(system.thresholds.with_relocation_delay(2_000)),
                scale,
                "radix",
            ),
            point_key(&machine, &system.clone().named("MigRep-v2"), scale, "radix"),
            point_key(&machine, &System::cc_numa().build(), scale, "radix"),
            point_key(&machine, &System::r_numa().build(), scale, "radix"),
            point_key(&machine, &System::perfect_cc_numa().build(), scale, "radix"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(base);
        for (i, v) in variants.iter().enumerate() {
            assert!(seen.insert(*v), "variant {i} collided with a prior key");
        }
    }

    #[test]
    fn string_fields_are_length_prefixed() {
        let mut a = KeyHasher::new();
        a.str("ab");
        a.str("c");
        let mut b = KeyHasher::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn extra_policies_key_by_name() {
        use dsm_core::policy::{PolicyFactory, RelocationPolicy};
        #[derive(Debug)]
        struct Noop;
        impl RelocationPolicy for Noop {
            fn name(&self) -> &'static str {
                "noop-policy"
            }
        }
        let mut with_policy = System::cc_numa().build();
        with_policy
            .extra_policies
            .push(PolicyFactory::new(|| Box::new(Noop)));
        let plain = point_key(
            &MachineConfig::PAPER,
            &System::cc_numa().build(),
            ExperimentScale::Reduced,
            "radix",
        );
        let keyed = point_key(
            &MachineConfig::PAPER,
            &with_policy,
            ExperimentScale::Reduced,
            "radix",
        );
        assert_ne!(plain, keyed);
    }
}
