//! Text rendering of experiment results in the shape of the paper's
//! figures and tables, machine-readable JSON for the perf trajectory
//! (`--out FILE`, conventionally `BENCH_*.json`), and the sweep renderers
//! (JSON, CSV, and axis-by-axis markdown tables over a
//! [`SweepResult`]).

use crate::runner::ExperimentResult;
use crate::sweep::{Axis, Metric, SweepResult};
use dsm_core::SimResult;
use std::io;
use std::path::Path;

/// Rows of (workload, normalized execution time per system) suitable for a
/// bar chart like Figures 5-8.
pub fn normalized_rows(result: &ExperimentResult) -> Vec<(String, Vec<f64>)> {
    result
        .per_workload
        .iter()
        .map(|w| {
            let values = (0..result.system_names.len())
                .map(|i| w.normalized(i))
                .collect();
            (w.workload.clone(), values)
        })
        .collect()
}

/// Format a normalized-execution-time table (one row per workload, one
/// column per system), plus a mean row — the textual equivalent of the
/// paper's bar charts.
pub fn format_normalized_table(result: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", result.experiment));
    out.push_str("# normalized execution time (perfect CC-NUMA = 1.00)\n");
    out.push_str(&format!("{:<12}", "benchmark"));
    for name in &result.system_names {
        out.push_str(&format!(" {:>18}", name));
    }
    out.push('\n');
    for (workload, values) in normalized_rows(result) {
        out.push_str(&format!("{workload:<12}"));
        for v in values {
            out.push_str(&format!(" {v:>18.2}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "mean"));
    for i in 0..result.system_names.len() {
        out.push_str(&format!(" {:>18.2}", result.mean_normalized(i)));
    }
    out.push('\n');
    out
}

/// Format the Table 4 analogue: per-node page operations and misses for
/// CC-NUMA, CC-NUMA+MigRep and R-NUMA.
///
/// Expects the experiment produced by [`crate::presets::table4`] (systems
/// CC-NUMA, MigRep, R-NUMA in that order).
pub fn format_table4(result: &ExperimentResult) -> String {
    let migrep = result
        .system_index("MigRep")
        .expect("table4 preset includes MigRep");
    let ccnuma = result
        .system_index("CC-NUMA")
        .expect("table4 preset includes CC-NUMA");
    let rnuma = result
        .system_index("R-NUMA")
        .expect("table4 preset includes R-NUMA");

    let mut out = String::new();
    out.push_str("# Table 4: per-node page operations and remote misses\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>12} | {:>22} {:>22} {:>22}\n",
        "benchmark",
        "migrations",
        "replications",
        "relocations",
        "CC-NUMA misses(cap)",
        "MigRep misses(cap)",
        "R-NUMA misses(cap)"
    ));
    for w in &result.per_workload {
        let mig = w.results[migrep].per_node_migrations();
        let rep = w.results[migrep].per_node_replications();
        let reloc = w.results[rnuma].per_node_relocations();
        let fmt_misses = |i: usize| {
            format!(
                "{:.1}k ({:.1}k)",
                w.results[i].per_node_remote_misses() / 1_000.0,
                w.results[i].per_node_remote_capacity_misses() / 1_000.0
            )
        };
        out.push_str(&format!(
            "{:<12} {:>10.0} {:>12.0} {:>12.0} | {:>22} {:>22} {:>22}\n",
            w.workload,
            mig,
            rep,
            reloc,
            fmt_misses(ccnuma),
            fmt_misses(migrep),
            fmt_misses(rnuma),
        ));
    }
    out
}

/// Format Table 2: the workload catalog with paper and reduced inputs.
pub fn format_table2() -> String {
    let mut out = String::new();
    out.push_str("# Table 2: applications and input parameters\n");
    out.push_str(&format!(
        "{:<10} {:<42} {:<28} {}\n",
        "name", "problem", "paper input", "reduced input"
    ));
    for w in splash_workloads::catalog() {
        out.push_str(&format!(
            "{:<10} {:<42} {:<28} {}\n",
            w.name(),
            w.description(),
            w.paper_input(),
            w.reduced_input()
        ));
    }
    out
}

/// Format Table 3: the cost model, base and slow variants.
pub fn format_table3() -> String {
    use dsm_core::CostModel;
    let b = CostModel::base();
    let s = CostModel::slow();
    let mut out = String::new();
    out.push_str("# Table 3: system cost assumptions (processor cycles)\n");
    out.push_str(&format!(
        "{:<44} {:>10} {:>10}\n",
        "operation", "base", "slow"
    ));
    let mut row = |name: &str, base: u64, slow: u64| {
        out.push_str(&format!("{name:<44} {base:>10} {slow:>10}\n"));
    };
    row(
        "network latency",
        b.network_latency.raw(),
        s.network_latency.raw(),
    );
    row("local miss latency", b.local_miss.raw(), s.local_miss.raw());
    row(
        "round-trip remote miss latency",
        b.remote_miss.raw(),
        s.remote_miss.raw(),
    );
    row("soft trap", b.soft_trap.raw(), s.soft_trap.raw());
    row(
        "TLB shootdown",
        b.tlb_shootdown.raw(),
        s.tlb_shootdown.raw(),
    );
    row(
        "page allocation/replacement/relocation (min)",
        b.page_alloc_min.raw(),
        s.page_alloc_min.raw(),
    );
    row(
        "page allocation/replacement/relocation (max)",
        b.page_alloc_max.raw(),
        s.page_alloc_max.raw(),
    );
    row(
        "page invalidation and data gathering (min)",
        b.page_gather_min.raw(),
        s.page_gather_min.raw(),
    );
    row(
        "page invalidation and data gathering (max)",
        b.page_gather_max.raw(),
        s.page_gather_max.raw(),
    );
    row(
        "page copying (min)",
        b.page_copy_min.raw(),
        s.page_copy_min.raw(),
    );
    row(
        "page copying (max)",
        b.page_copy_max.raw(),
        s.page_copy_max.raw(),
    );
    out
}

/// Render results as CSV (one line per workload x system) for plotting.
pub fn to_csv(result: &ExperimentResult) -> String {
    let mut out = String::from("workload,system,normalized_time,remote_misses_per_node,capacity_misses_per_node,migrations,replications,relocations\n");
    for w in &result.per_workload {
        for (i, name) in result.system_names.iter().enumerate() {
            let r = &w.results[i];
            out.push_str(&format!(
                "{},{},{:.4},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
                w.workload,
                name,
                w.normalized(i),
                r.per_node_remote_misses(),
                r.per_node_remote_capacity_misses(),
                r.per_node_migrations(),
                r.per_node_replications(),
                r.per_node_relocations(),
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sim_result_json(r: &SimResult, baseline: Option<&SimResult>, elapsed_seconds: f64) -> String {
    let normalized = baseline
        .map(|b| format!(",\"normalized_time\":{:.6}", r.normalized_against(b)))
        .unwrap_or_default();
    format!(
        concat!(
            "{{\"system\":\"{}\",\"execution_time\":{},\"accesses\":{},\"barriers\":{},",
            "\"remote_misses\":{},\"remote_capacity_misses\":{},",
            "\"migrations_per_node\":{:.1},\"replications_per_node\":{:.1},",
            "\"relocations_per_node\":{:.1},\"page_cache_replacements\":{},",
            "\"network_messages\":{},\"network_bytes\":{},",
            "\"elapsed_seconds\":{:.6}{}}}"
        ),
        json_escape(&r.system),
        r.execution_time.raw(),
        r.accesses,
        r.barriers,
        r.total_remote_misses(),
        r.total_remote_capacity_misses(),
        r.per_node_migrations(),
        r.per_node_replications(),
        r.per_node_relocations(),
        r.total_page_cache_replacements(),
        r.traffic.total_messages(),
        r.traffic.total_bytes(),
        elapsed_seconds,
        normalized,
    )
}

/// Render one experiment result as a JSON object (systems, per-workload
/// baseline and per-system metrics, normalized execution times).
pub fn to_json(result: &ExperimentResult) -> String {
    let systems = result
        .system_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    let workloads = result
        .per_workload
        .iter()
        .map(|w| {
            let rows = w
                .results
                .iter()
                .zip(&w.elapsed_seconds)
                .map(|(r, elapsed)| sim_result_json(r, Some(&w.baseline), *elapsed))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"workload\":\"{}\",\"baseline\":{},\"results\":[{}]}}",
                json_escape(&w.workload),
                sim_result_json(&w.baseline, None, w.baseline_elapsed_seconds),
                rows
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let means = (0..result.system_names.len())
        .map(|i| format!("{:.6}", result.mean_normalized(i)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"experiment\":\"{}\",\"systems\":[{}],\"workers\":{},",
            "\"mean_normalized_time\":[{}],\"workloads\":[{}]}}"
        ),
        json_escape(&result.experiment),
        systems,
        result.workers,
        means,
        workloads
    )
}

/// Write one experiment result as a JSON object to `path`.
pub fn write_json(path: &Path, result: &ExperimentResult) -> io::Result<()> {
    std::fs::write(path, to_json(result) + "\n")
}

/// Write several experiment results as a JSON array to `path` (used by
/// `allexps --out`).
pub fn write_json_all(path: &Path, results: &[ExperimentResult]) -> io::Result<()> {
    let body = results.iter().map(to_json).collect::<Vec<_>>().join(",");
    std::fs::write(path, format!("[{body}]\n"))
}

// ---------------------------------------------------------------------
// Sweep renderers
// ---------------------------------------------------------------------

/// Quote a CSV field if it contains a delimiter, quote or newline
/// (user-supplied axis labels and system names are free-form).
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Render a sweep as CSV: one row per point, every axis as a column, the
/// scalar metrics, the per-kind traffic breakdown, and the point's content
/// address + result fingerprint (joinable with the sweep service's cache
/// file and `cache-stats` output).
pub fn sweep_to_csv(result: &SweepResult) -> String {
    let mut out = String::new();
    for axis in Axis::ALL {
        out.push_str(axis.name());
        out.push(',');
    }
    out.push_str(
        "normalized_time,execution_time,accesses,remote_misses_per_node,\
         migrations_per_node,replications_per_node,relocations_per_node,\
         network_messages,network_bytes,bytes_per_access,cache_key,fingerprint\n",
    );
    for p in &result.points {
        let m = p.metrics();
        for axis in Axis::ALL {
            out.push_str(&csv_field(&p.axes.value(axis)));
            out.push(',');
        }
        out.push_str(&format!(
            "{:.4},{},{},{:.1},{:.1},{:.1},{:.1},{},{},{:.2},{},{:#018x}\n",
            m.normalized_time,
            m.execution_time,
            m.accesses,
            m.remote_misses_per_node,
            m.migrations_per_node,
            m.replications_per_node,
            m.relocations_per_node,
            m.network_messages,
            m.network_bytes,
            m.get(Metric::BytesPerAccess),
            p.cache_key,
            p.result.fingerprint(),
        ));
    }
    out
}

/// Render a sweep as a per-point listing: one row per point with its full
/// axis address, normalized time, content address and result fingerprint —
/// the human-readable companion of [`sweep_to_csv`] for joining offline
/// runs against a sweep server's cache.
pub fn format_sweep_points(result: &SweepResult) -> String {
    let mut out = format!(
        "# {} — per-point cache keys (baseline: {})\n{:<44} {:>10} {:>6} {:>32} {:>18}\n",
        result.name,
        result.baseline_system,
        "point",
        "norm.time",
        "cached",
        "cache_key",
        "fingerprint"
    );
    for p in &result.points {
        let address = format!(
            "{}/{} n{}x{} pg{} bl{} {}",
            p.axes.workload,
            p.axes.system,
            p.axes.nodes,
            p.axes.procs_per_node,
            p.axes.page_bytes,
            p.axes.block_bytes,
            p.axes.scale,
        );
        out.push_str(&format!(
            "{:<44} {:>10.2} {:>6} {:>32} {:#018x}\n",
            address,
            p.normalized_time,
            if p.cached { "yes" } else { "no" },
            p.cache_key,
            p.result.fingerprint(),
        ));
    }
    out
}

/// Render a sweep as a column-aligned markdown table: one row per `rows`
/// axis value, one column per `cols` axis value, each cell the mean of
/// `metric` over the points in that (row, col) group.
pub fn format_sweep_table(result: &SweepResult, rows: Axis, cols: Axis, metric: Metric) -> String {
    let row_values = result.axis_values(rows);
    let col_values = result.axis_values(cols);
    // One pass over the points, accumulating (sum, n) per cell — not a
    // rescan (with a fresh MetricSet) per (row, col) pair.  BTreeMap, not
    // HashMap: this table flows into service responses, and the ordered
    // map keeps the whole path free of iteration-order nondeterminism.
    let mut cells: std::collections::BTreeMap<(String, String), (f64, u64)> =
        std::collections::BTreeMap::new();
    for p in &result.points {
        let slot = cells
            .entry((p.axes.value(rows), p.axes.value(cols)))
            .or_insert((0.0, 0));
        slot.0 += p.metrics().get(metric);
        slot.1 += 1;
    }
    let cell = |rv: &str, cv: &str| -> String {
        match cells.get(&(rv.to_string(), cv.to_string())) {
            Some((sum, n)) if *n > 0 => format!("{:.2}", sum / *n as f64),
            _ => "-".to_string(),
        }
    };

    let header: Vec<String> = std::iter::once(format!("{}\\{}", rows.name(), cols.name()))
        .chain(col_values.iter().cloned())
        .collect();
    let mut table: Vec<Vec<String>> = vec![header];
    for rv in &row_values {
        table.push(
            std::iter::once(rv.clone())
                .chain(col_values.iter().map(|cv| cell(rv, cv)))
                .collect(),
        );
    }
    // Column-aligned markdown.
    let widths: Vec<usize> = (0..table[0].len())
        .map(|c| table.iter().map(|row| row[c].len()).max().unwrap_or(1))
        .collect();
    let mut out = format!(
        "# {} — {} by {} x {} (baseline: {})\n",
        result.name,
        metric.name(),
        rows.name(),
        cols.name(),
        result.baseline_system
    );
    for (i, row) in table.iter().enumerate() {
        out.push('|');
        for (c, cellv) in row.iter().enumerate() {
            out.push_str(&format!(" {:>w$} |", cellv, w = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

/// Render a sweep as one JSON object: the axes, every point with its
/// metric set, traffic breakdown, content address and result fingerprint,
/// and the baseline runs.
pub fn sweep_to_json(result: &SweepResult) -> String {
    let point_json = |axes: &crate::sweep::AxisValues,
                      r: &SimResult,
                      normalized: Option<f64>,
                      elapsed: f64,
                      cache_key: crate::cache_key::CacheKey,
                      cached: bool| {
        let axes_fields = Axis::ALL
            .iter()
            .map(|a| format!("\"{}\":\"{}\"", a.name(), json_escape(&axes.value(*a))))
            .collect::<Vec<_>>()
            .join(",");
        let m = crate::sweep::MetricSet::of(r, normalized.unwrap_or(1.0));
        let traffic = m
            .traffic
            .iter()
            .map(|(kind, msgs, bytes)| {
                format!("{{\"kind\":\"{kind}\",\"messages\":{msgs},\"bytes\":{bytes}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        let normalized = normalized
            .map(|n| format!("\"normalized_time\":{n:.6},"))
            .unwrap_or_default();
        format!(
            concat!(
                "{{{axes},{norm}\"execution_time\":{},\"accesses\":{},",
                "\"remote_misses_per_node\":{:.1},\"migrations_per_node\":{:.1},",
                "\"replications_per_node\":{:.1},\"relocations_per_node\":{:.1},",
                "\"network_messages\":{},\"network_bytes\":{},",
                "\"elapsed_seconds\":{:.6},",
                "\"cache_key\":\"{key}\",\"fingerprint\":\"{fp:#018x}\",",
                "\"cached\":{cached},\"traffic\":[{traffic}]}}"
            ),
            m.execution_time,
            m.accesses,
            m.remote_misses_per_node,
            m.migrations_per_node,
            m.replications_per_node,
            m.relocations_per_node,
            m.network_messages,
            m.network_bytes,
            elapsed,
            axes = axes_fields,
            norm = normalized,
            key = cache_key,
            fp = r.fingerprint(),
            cached = cached,
            traffic = traffic,
        )
    };
    let points = result
        .points
        .iter()
        .map(|p| {
            point_json(
                &p.axes,
                &p.result,
                Some(p.normalized_time),
                p.elapsed_seconds,
                p.cache_key,
                p.cached,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let baselines = result
        .baselines
        .iter()
        .map(|b| {
            point_json(
                &b.axes,
                &b.result,
                None,
                b.elapsed_seconds,
                b.cache_key,
                b.cached,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"sweep\":\"{}\",\"baseline_system\":\"{}\",\"workers\":{},",
            "\"points\":[{}],\"baselines\":[{}]}}"
        ),
        json_escape(&result.name),
        json_escape(&result.baseline_system),
        result.workers,
        points,
        baselines
    )
}

/// Write a sweep result as JSON to `path`.
pub fn write_sweep_json(path: &Path, result: &SweepResult) -> io::Result<()> {
    std::fs::write(path, sweep_to_json(result) + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::presets::{table4, ExperimentScale};
    use crate::sweep::Sweep;
    use dsm_core::{MachineConfig, System};

    fn small_result() -> ExperimentResult {
        Experiment::new(MachineConfig::PAPER)
            .systems(table4(ExperimentScale::Reduced))
            .workloads(["ocean"])
            .threads(4)
            .run()
    }

    #[test]
    fn tables_render_every_workload_and_system() {
        let result = small_result();
        let table = format_normalized_table(&result);
        assert!(table.contains("ocean"));
        assert!(table.contains("CC-NUMA"));
        assert!(table.contains("R-NUMA"));
        assert!(table.contains("mean"));

        let t4 = format_table4(&result);
        assert!(t4.contains("ocean"));
        assert!(t4.contains("migrations"));

        let csv = to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.system_names.len());
        assert!(csv.starts_with("workload,system"));
    }

    #[test]
    fn json_output_covers_workloads_and_systems() {
        let result = small_result();
        let json = to_json(&result);
        assert!(json.contains("\"experiment\""));
        assert!(json.contains("\"workload\":\"ocean\""));
        assert!(json.contains("\"system\":\"R-NUMA\""));
        assert!(json.contains("\"normalized_time\""));
        assert!(json.contains("\"execution_time\""));
        assert!(json.contains("\"elapsed_seconds\""));
        // Balanced braces/brackets (cheap well-formedness check with no JSON
        // parser in the offline environment).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json_escape("a\"b\\c\n").contains("\\\""));

        let path = std::env::temp_dir().join("dsm-repro-report-test.json");
        write_json(&path, &result).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().trim(), json);
        write_json_all(&path, &[result.clone(), result]).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with('['));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalized_rows_match_table_dimensions() {
        let result = small_result();
        let rows = normalized_rows(&result);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.len(), result.system_names.len());
    }

    fn small_sweep() -> SweepResult {
        Sweep::new("report sweep")
            .page_bytes([2048, 4096])
            .block_bytes([64, 128])
            .system(System::cc_numa().build())
            .workloads(["ocean"])
            .threads(8)
            .run()
    }

    #[test]
    fn sweep_csv_has_axis_columns_and_one_row_per_point() {
        let result = small_sweep();
        let csv = sweep_to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.points.len());
        let header = csv.lines().next().unwrap();
        for axis in Axis::ALL {
            assert!(header.contains(axis.name()), "missing column {axis:?}");
        }
        assert!(header.contains("bytes_per_access"));
    }

    #[test]
    fn csv_fields_with_delimiters_are_quoted() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("slow, far"), "\"slow, far\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        // A sweep whose cost label contains a comma keeps its column count.
        let result = Sweep::new("escape")
            .cost("base, v2", dsm_core::CostModel::base())
            .system(System::cc_numa().build())
            .workloads(["ocean"])
            .threads(2)
            .run();
        let csv = sweep_to_csv(&result);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains("\"base, v2\""), "{row}");
        // Naive splitting sees one extra comma — inside quotes — so the
        // quoted field is the only divergence from the header count.
        assert_eq!(row.split(',').count(), header_cols + 1);
    }

    #[test]
    fn sweep_table_pivots_rows_by_cols() {
        let result = small_sweep();
        let table = format_sweep_table(
            &result,
            Axis::PageBytes,
            Axis::BlockBytes,
            Metric::NormalizedTime,
        );
        // Header row + separator + one row per page size.
        assert_eq!(table.lines().count(), 1 + 2 + 2, "{table}");
        assert!(table.contains("2048"));
        assert!(table.contains("4096"));
        assert!(table.contains("64"));
        assert!(table.contains("128"));
        // Every data line has the full column count.
        for line in table.lines().skip(1) {
            assert_eq!(line.matches('|').count(), 4, "{line}");
        }
    }

    #[test]
    fn sweep_reports_carry_cache_keys_and_fingerprints() {
        let result = small_sweep();
        let key = result.points[0].cache_key.to_hex();
        let fp = format!("{:#018x}", result.points[0].result.fingerprint());

        let csv = sweep_to_csv(&result);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with("cache_key,fingerprint"), "{header}");
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains(&key), "{row}");
        assert!(row.contains(&fp), "{row}");

        let json = sweep_to_json(&result);
        assert!(json.contains(&format!("\"cache_key\":\"{key}\"")));
        assert!(json.contains(&format!("\"fingerprint\":\"{fp}\"")));
        assert!(json.contains("\"cached\":false"));
        // Baselines carry their keys too.
        assert_eq!(
            json.matches("\"cache_key\"").count(),
            result.points.len() + result.baselines.len()
        );

        let listing = format_sweep_points(&result);
        assert!(listing.contains(&key));
        assert!(listing.contains(&fp));
        assert_eq!(listing.lines().count(), 2 + result.points.len());
        // Distinct configurations, distinct addresses.
        let keys: std::collections::BTreeSet<_> =
            result.points.iter().map(|p| p.cache_key).collect();
        assert_eq!(keys.len(), result.points.len());
    }

    #[test]
    fn sweep_json_is_balanced_and_covers_every_point() {
        let result = small_sweep();
        let json = sweep_to_json(&result);
        assert!(json.contains("\"sweep\":\"report sweep\""));
        assert!(json.contains("\"baseline_system\""));
        assert!(json.contains("\"page_bytes\":\"2048\""));
        assert!(json.contains("\"traffic\""));
        assert!(json.contains("\"page_data_block\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(
            json.matches("\"normalized_time\"").count(),
            result.points.len()
        );

        let path = std::env::temp_dir().join("dsm-repro-sweep-report-test.json");
        write_sweep_json(&path, &result).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().trim(), json);
        std::fs::remove_file(&path).ok();
    }
}
