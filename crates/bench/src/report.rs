//! Text rendering of experiment results in the shape of the paper's
//! figures and tables, plus machine-readable JSON for the perf trajectory
//! (`--out FILE`, conventionally `BENCH_*.json`).

use crate::runner::ExperimentResult;
use dsm_core::SimResult;
use std::io;
use std::path::Path;

/// Rows of (workload, normalized execution time per system) suitable for a
/// bar chart like Figures 5-8.
pub fn normalized_rows(result: &ExperimentResult) -> Vec<(String, Vec<f64>)> {
    result
        .per_workload
        .iter()
        .map(|w| {
            let values = (0..result.system_names.len())
                .map(|i| w.normalized(i))
                .collect();
            (w.workload.clone(), values)
        })
        .collect()
}

/// Format a normalized-execution-time table (one row per workload, one
/// column per system), plus a mean row — the textual equivalent of the
/// paper's bar charts.
pub fn format_normalized_table(result: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", result.experiment));
    out.push_str("# normalized execution time (perfect CC-NUMA = 1.00)\n");
    out.push_str(&format!("{:<12}", "benchmark"));
    for name in &result.system_names {
        out.push_str(&format!(" {:>18}", name));
    }
    out.push('\n');
    for (workload, values) in normalized_rows(result) {
        out.push_str(&format!("{workload:<12}"));
        for v in values {
            out.push_str(&format!(" {v:>18.2}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "mean"));
    for i in 0..result.system_names.len() {
        out.push_str(&format!(" {:>18.2}", result.mean_normalized(i)));
    }
    out.push('\n');
    out
}

/// Format the Table 4 analogue: per-node page operations and misses for
/// CC-NUMA, CC-NUMA+MigRep and R-NUMA.
///
/// Expects the experiment produced by [`crate::presets::table4`] (systems
/// CC-NUMA, MigRep, R-NUMA in that order).
pub fn format_table4(result: &ExperimentResult) -> String {
    let migrep = result
        .system_index("MigRep")
        .expect("table4 preset includes MigRep");
    let ccnuma = result
        .system_index("CC-NUMA")
        .expect("table4 preset includes CC-NUMA");
    let rnuma = result
        .system_index("R-NUMA")
        .expect("table4 preset includes R-NUMA");

    let mut out = String::new();
    out.push_str("# Table 4: per-node page operations and remote misses\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>12} | {:>22} {:>22} {:>22}\n",
        "benchmark",
        "migrations",
        "replications",
        "relocations",
        "CC-NUMA misses(cap)",
        "MigRep misses(cap)",
        "R-NUMA misses(cap)"
    ));
    for w in &result.per_workload {
        let mig = w.results[migrep].per_node_migrations();
        let rep = w.results[migrep].per_node_replications();
        let reloc = w.results[rnuma].per_node_relocations();
        let fmt_misses = |i: usize| {
            format!(
                "{:.1}k ({:.1}k)",
                w.results[i].per_node_remote_misses() / 1_000.0,
                w.results[i].per_node_remote_capacity_misses() / 1_000.0
            )
        };
        out.push_str(&format!(
            "{:<12} {:>10.0} {:>12.0} {:>12.0} | {:>22} {:>22} {:>22}\n",
            w.workload,
            mig,
            rep,
            reloc,
            fmt_misses(ccnuma),
            fmt_misses(migrep),
            fmt_misses(rnuma),
        ));
    }
    out
}

/// Format Table 2: the workload catalog with paper and reduced inputs.
pub fn format_table2() -> String {
    let mut out = String::new();
    out.push_str("# Table 2: applications and input parameters\n");
    out.push_str(&format!(
        "{:<10} {:<42} {:<28} {}\n",
        "name", "problem", "paper input", "reduced input"
    ));
    for w in splash_workloads::catalog() {
        out.push_str(&format!(
            "{:<10} {:<42} {:<28} {}\n",
            w.name(),
            w.description(),
            w.paper_input(),
            w.reduced_input()
        ));
    }
    out
}

/// Format Table 3: the cost model, base and slow variants.
pub fn format_table3() -> String {
    use dsm_core::CostModel;
    let b = CostModel::base();
    let s = CostModel::slow();
    let mut out = String::new();
    out.push_str("# Table 3: system cost assumptions (processor cycles)\n");
    out.push_str(&format!(
        "{:<44} {:>10} {:>10}\n",
        "operation", "base", "slow"
    ));
    let mut row = |name: &str, base: u64, slow: u64| {
        out.push_str(&format!("{name:<44} {base:>10} {slow:>10}\n"));
    };
    row(
        "network latency",
        b.network_latency.raw(),
        s.network_latency.raw(),
    );
    row("local miss latency", b.local_miss.raw(), s.local_miss.raw());
    row(
        "round-trip remote miss latency",
        b.remote_miss.raw(),
        s.remote_miss.raw(),
    );
    row("soft trap", b.soft_trap.raw(), s.soft_trap.raw());
    row(
        "TLB shootdown",
        b.tlb_shootdown.raw(),
        s.tlb_shootdown.raw(),
    );
    row(
        "page allocation/replacement/relocation (min)",
        b.page_alloc_min.raw(),
        s.page_alloc_min.raw(),
    );
    row(
        "page allocation/replacement/relocation (max)",
        b.page_alloc_max.raw(),
        s.page_alloc_max.raw(),
    );
    row(
        "page invalidation and data gathering (min)",
        b.page_gather_min.raw(),
        s.page_gather_min.raw(),
    );
    row(
        "page invalidation and data gathering (max)",
        b.page_gather_max.raw(),
        s.page_gather_max.raw(),
    );
    row(
        "page copying (min)",
        b.page_copy_min.raw(),
        s.page_copy_min.raw(),
    );
    row(
        "page copying (max)",
        b.page_copy_max.raw(),
        s.page_copy_max.raw(),
    );
    out
}

/// Render results as CSV (one line per workload x system) for plotting.
pub fn to_csv(result: &ExperimentResult) -> String {
    let mut out = String::from("workload,system,normalized_time,remote_misses_per_node,capacity_misses_per_node,migrations,replications,relocations\n");
    for w in &result.per_workload {
        for (i, name) in result.system_names.iter().enumerate() {
            let r = &w.results[i];
            out.push_str(&format!(
                "{},{},{:.4},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
                w.workload,
                name,
                w.normalized(i),
                r.per_node_remote_misses(),
                r.per_node_remote_capacity_misses(),
                r.per_node_migrations(),
                r.per_node_replications(),
                r.per_node_relocations(),
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sim_result_json(r: &SimResult, baseline: Option<&SimResult>, elapsed_seconds: f64) -> String {
    let normalized = baseline
        .map(|b| format!(",\"normalized_time\":{:.6}", r.normalized_against(b)))
        .unwrap_or_default();
    format!(
        concat!(
            "{{\"system\":\"{}\",\"execution_time\":{},\"accesses\":{},\"barriers\":{},",
            "\"remote_misses\":{},\"remote_capacity_misses\":{},",
            "\"migrations_per_node\":{:.1},\"replications_per_node\":{:.1},",
            "\"relocations_per_node\":{:.1},\"page_cache_replacements\":{},",
            "\"network_messages\":{},\"network_bytes\":{},",
            "\"elapsed_seconds\":{:.6}{}}}"
        ),
        json_escape(&r.system),
        r.execution_time.raw(),
        r.accesses,
        r.barriers,
        r.total_remote_misses(),
        r.total_remote_capacity_misses(),
        r.per_node_migrations(),
        r.per_node_replications(),
        r.per_node_relocations(),
        r.total_page_cache_replacements(),
        r.traffic.total_messages(),
        r.traffic.total_bytes(),
        elapsed_seconds,
        normalized,
    )
}

/// Render one experiment result as a JSON object (systems, per-workload
/// baseline and per-system metrics, normalized execution times).
pub fn to_json(result: &ExperimentResult) -> String {
    let systems = result
        .system_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    let workloads = result
        .per_workload
        .iter()
        .map(|w| {
            let rows = w
                .results
                .iter()
                .zip(&w.elapsed_seconds)
                .map(|(r, elapsed)| sim_result_json(r, Some(&w.baseline), *elapsed))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"workload\":\"{}\",\"baseline\":{},\"results\":[{}]}}",
                json_escape(&w.workload),
                sim_result_json(&w.baseline, None, w.baseline_elapsed_seconds),
                rows
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let means = (0..result.system_names.len())
        .map(|i| format!("{:.6}", result.mean_normalized(i)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"experiment\":\"{}\",\"systems\":[{}],",
            "\"mean_normalized_time\":[{}],\"workloads\":[{}]}}"
        ),
        json_escape(&result.experiment),
        systems,
        means,
        workloads
    )
}

/// Write one experiment result as a JSON object to `path`.
pub fn write_json(path: &Path, result: &ExperimentResult) -> io::Result<()> {
    std::fs::write(path, to_json(result) + "\n")
}

/// Write several experiment results as a JSON array to `path` (used by
/// `allexps --out`).
pub fn write_json_all(path: &Path, results: &[ExperimentResult]) -> io::Result<()> {
    let body = results.iter().map(to_json).collect::<Vec<_>>().join(",");
    std::fs::write(path, format!("[{body}]\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::presets::{table4, ExperimentScale};
    use dsm_core::MachineConfig;

    fn small_result() -> ExperimentResult {
        Experiment::new(MachineConfig::PAPER)
            .systems(table4(ExperimentScale::Reduced))
            .workloads(["ocean"])
            .threads(4)
            .run()
    }

    #[test]
    fn tables_render_every_workload_and_system() {
        let result = small_result();
        let table = format_normalized_table(&result);
        assert!(table.contains("ocean"));
        assert!(table.contains("CC-NUMA"));
        assert!(table.contains("R-NUMA"));
        assert!(table.contains("mean"));

        let t4 = format_table4(&result);
        assert!(t4.contains("ocean"));
        assert!(t4.contains("migrations"));

        let csv = to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.system_names.len());
        assert!(csv.starts_with("workload,system"));
    }

    #[test]
    fn json_output_covers_workloads_and_systems() {
        let result = small_result();
        let json = to_json(&result);
        assert!(json.contains("\"experiment\""));
        assert!(json.contains("\"workload\":\"ocean\""));
        assert!(json.contains("\"system\":\"R-NUMA\""));
        assert!(json.contains("\"normalized_time\""));
        assert!(json.contains("\"execution_time\""));
        assert!(json.contains("\"elapsed_seconds\""));
        // Balanced braces/brackets (cheap well-formedness check with no JSON
        // parser in the offline environment).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json_escape("a\"b\\c\n").contains("\\\""));

        let path = std::env::temp_dir().join("dsm-repro-report-test.json");
        write_json(&path, &result).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().trim(), json);
        write_json_all(&path, &[result.clone(), result]).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with('['));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalized_rows_match_table_dimensions() {
        let result = small_result();
        let rows = normalized_rows(&result);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.len(), result.system_names.len());
    }
}
