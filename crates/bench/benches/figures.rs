//! Criterion benchmarks: one group per figure/table of the paper.
//!
//! Each group measures the wall-clock cost of simulating a representative
//! workload on every system that figure compares (reduced scale), so
//! `cargo bench` both regenerates the comparisons and tracks the
//! simulator's own performance.  The full seven-workload sweeps are
//! produced by the `fig5`..`fig8` and `table4` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::presets::{self, ExperimentScale, SystemSet};
use dsm_core::{ClusterSimulator, MachineConfig};
use splash_workloads::{by_name, WorkloadConfig};

/// Benchmark every system of `set` on one representative workload.
fn bench_system_set(c: &mut Criterion, group_name: &str, set: &SystemSet, workload: &str) {
    let machine = MachineConfig::PAPER;
    let trace = by_name(workload)
        .expect("known workload")
        .generate(&WorkloadConfig::reduced());
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Baseline first, then every compared system.
    let mut systems = vec![set.baseline.clone()];
    systems.extend(set.systems.iter().cloned());
    for system in systems {
        let sim = ClusterSimulator::new(machine, system.clone());
        group.bench_with_input(
            BenchmarkId::new(workload, &system.name),
            &trace,
            |b, trace| b.iter(|| sim.run(trace)),
        );
    }
    group.finish();
}

fn fig5(c: &mut Criterion) {
    bench_system_set(
        c,
        "figure5_base_comparison",
        &presets::figure5(ExperimentScale::Reduced),
        "ocean",
    );
}

fn fig6(c: &mut Criterion) {
    bench_system_set(
        c,
        "figure6_slow_page_ops",
        &presets::figure6(ExperimentScale::Reduced),
        "lu",
    );
}

fn fig7(c: &mut Criterion) {
    bench_system_set(
        c,
        "figure7_long_latency",
        &presets::figure7(ExperimentScale::Reduced),
        "ocean",
    );
}

fn fig8(c: &mut Criterion) {
    bench_system_set(
        c,
        "figure8_hybrid",
        &presets::figure8(ExperimentScale::Reduced),
        "lu",
    );
}

fn table4(c: &mut Criterion) {
    bench_system_set(
        c,
        "table4_page_operations",
        &presets::table4(ExperimentScale::Reduced),
        "raytrace",
    );
}

/// Microbenchmark of trace generation itself (Table 2 workloads).
fn trace_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig::reduced();
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["lu", "ocean", "radix"] {
        group.bench_function(name, |b| {
            let w = by_name(name).expect("known workload");
            b.iter(|| w.generate(&cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5, fig6, fig7, fig8, table4, trace_generation);
criterion_main!(benches);
