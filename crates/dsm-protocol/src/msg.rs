//! Protocol message kinds and traffic accounting.
//!
//! The paper's comparison is fundamentally about *traffic*: how many remote
//! messages, and of what size, each technique generates.  Every transfer the
//! simulator performs over the interconnect is tagged with a [`MsgKind`] so
//! the harness can report message and byte counts per category.

use mem_trace::BLOCK_SIZE;
use serde::{Deserialize, Serialize};

/// Kinds of inter-node protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// Read request to a home node.
    ReadRequest,
    /// Read reply carrying one cache block.
    ReadReply,
    /// Read-exclusive / upgrade request to a home node.
    WriteRequest,
    /// Write reply carrying one cache block (plus ownership).
    WriteReply,
    /// Invalidate a remote copy.
    Invalidation,
    /// Acknowledgement of an invalidation.
    InvalidationAck,
    /// Write-back of a dirty block to its home.
    WriteBack,
    /// Intervention/forward request to the current owner of a dirty block.
    OwnerForward,
    /// Page-operation control message (flush request, migration notice,
    /// replica grant, switch-to-read-write request, ...).
    PageControl,
    /// One block of page data moved by a page operation (gather, copy,
    /// relocation refetch).
    PageDataBlock,
}

/// Fixed header size for every message, in bytes.
pub const MSG_HEADER_BYTES: u64 = 16;

impl MsgKind {
    /// Payload bytes carried by a message of this kind at the paper's
    /// 64-byte block size (excluding header).
    pub fn payload_bytes(self) -> u64 {
        self.payload_bytes_at(BLOCK_SIZE)
    }

    /// Payload bytes for `block_bytes`-sized cache blocks: data-carrying
    /// messages move exactly one block, so the traffic a figure reports
    /// scales with the swept block size.
    pub fn payload_bytes_at(self, block_bytes: u64) -> u64 {
        match self {
            MsgKind::ReadReply
            | MsgKind::WriteReply
            | MsgKind::WriteBack
            | MsgKind::PageDataBlock => block_bytes,
            MsgKind::ReadRequest
            | MsgKind::WriteRequest
            | MsgKind::Invalidation
            | MsgKind::InvalidationAck
            | MsgKind::OwnerForward
            | MsgKind::PageControl => 0,
        }
    }

    /// Total bytes on the wire at the paper's block size.
    pub fn total_bytes(self) -> u64 {
        MSG_HEADER_BYTES + self.payload_bytes()
    }

    /// Total bytes on the wire for `block_bytes`-sized blocks.
    pub fn total_bytes_at(self, block_bytes: u64) -> u64 {
        MSG_HEADER_BYTES + self.payload_bytes_at(block_bytes)
    }

    /// `true` if the message carries a data block.
    pub fn carries_data(self) -> bool {
        self.payload_bytes() > 0
    }

    /// All message kinds, for reporting.
    pub const ALL: [MsgKind; 10] = [
        MsgKind::ReadRequest,
        MsgKind::ReadReply,
        MsgKind::WriteRequest,
        MsgKind::WriteReply,
        MsgKind::Invalidation,
        MsgKind::InvalidationAck,
        MsgKind::WriteBack,
        MsgKind::OwnerForward,
        MsgKind::PageControl,
        MsgKind::PageDataBlock,
    ];

    fn index(self) -> usize {
        MsgKind::ALL
            .iter()
            .position(|k| *k == self)
            // dsm-lint: allow(panic-path, MsgKind::ALL enumerates every variant; position always finds self)
            .expect("kind present in ALL")
    }
}

/// Per-kind message and byte counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    messages: [u64; 10],
    bytes: [u64; 10],
}

impl TrafficStats {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild counters from per-kind arrays in [`MsgKind::ALL`] order —
    /// the inverse of reading [`TrafficStats::messages_of`] /
    /// [`TrafficStats::bytes_of`] per kind, for deserializing stored
    /// results (e.g. the sweep service's on-disk cache).
    pub fn from_counts(messages: [u64; 10], bytes: [u64; 10]) -> Self {
        TrafficStats { messages, bytes }
    }

    /// Record one message of `kind` at the paper's block size.
    pub fn record(&mut self, kind: MsgKind) {
        self.record_at(kind, BLOCK_SIZE);
    }

    /// Record one message of `kind` carrying `block_bytes`-sized data
    /// payloads.
    pub fn record_at(&mut self, kind: MsgKind, block_bytes: u64) {
        let i = kind.index();
        self.messages[i] += 1;
        self.bytes[i] += kind.total_bytes_at(block_bytes);
    }

    /// Messages of a given kind.
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.messages[kind.index()]
    }

    /// Bytes of a given kind.
    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes moved by page operations (control + page data blocks).
    pub fn page_operation_bytes(&self) -> u64 {
        self.bytes_of(MsgKind::PageControl) + self.bytes_of(MsgKind::PageDataBlock)
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.messages.len() {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_carry_a_block() {
        assert_eq!(MsgKind::ReadReply.payload_bytes(), BLOCK_SIZE);
        assert_eq!(MsgKind::ReadRequest.payload_bytes(), 0);
        assert!(MsgKind::WriteBack.carries_data());
        assert!(!MsgKind::Invalidation.carries_data());
        assert_eq!(
            MsgKind::PageDataBlock.total_bytes(),
            MSG_HEADER_BYTES + BLOCK_SIZE
        );
    }

    #[test]
    fn traffic_stats_accumulate_per_kind() {
        let mut t = TrafficStats::new();
        t.record(MsgKind::ReadRequest);
        t.record(MsgKind::ReadReply);
        t.record(MsgKind::ReadReply);
        assert_eq!(t.messages_of(MsgKind::ReadRequest), 1);
        assert_eq!(t.messages_of(MsgKind::ReadReply), 2);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(
            t.total_bytes(),
            MSG_HEADER_BYTES + 2 * (MSG_HEADER_BYTES + BLOCK_SIZE)
        );
    }

    #[test]
    fn page_operation_bytes_isolated() {
        let mut t = TrafficStats::new();
        t.record(MsgKind::PageControl);
        t.record(MsgKind::PageDataBlock);
        t.record(MsgKind::ReadReply);
        assert_eq!(
            t.page_operation_bytes(),
            MSG_HEADER_BYTES + MSG_HEADER_BYTES + BLOCK_SIZE
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficStats::new();
        let mut b = TrafficStats::new();
        a.record(MsgKind::WriteBack);
        b.record(MsgKind::WriteBack);
        b.record(MsgKind::Invalidation);
        a.merge(&b);
        assert_eq!(a.messages_of(MsgKind::WriteBack), 2);
        assert_eq!(a.messages_of(MsgKind::Invalidation), 1);
    }

    #[test]
    fn from_counts_round_trips() {
        let mut t = TrafficStats::new();
        t.record(MsgKind::ReadReply);
        t.record(MsgKind::PageControl);
        let messages = MsgKind::ALL.map(|k| t.messages_of(k));
        let bytes = MsgKind::ALL.map(|k| t.bytes_of(k));
        assert_eq!(TrafficStats::from_counts(messages, bytes), t);
    }

    #[test]
    fn all_kinds_are_indexable() {
        let mut t = TrafficStats::new();
        for kind in MsgKind::ALL {
            t.record(kind);
        }
        assert_eq!(t.total_messages(), MsgKind::ALL.len() as u64);
    }
}
