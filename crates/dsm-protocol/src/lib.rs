//! Directory-based DSM coherence mechanisms: the cluster-device hardware
//! shared by every system the paper studies.
//!
//! The crate provides the *mechanisms* of the DSM cluster device in Figure 2
//! of the paper — the block directory, the SRAM block cache, the S-COMA
//! page cache with fine-grain tags, the interconnect with per-node network
//! interfaces — while the *policies* that distinguish CC-NUMA,
//! CC-NUMA+MigRep and R-NUMA (miss counters, thresholds, page operations)
//! live in the `dsm-core` crate.

pub mod block_cache;
pub mod directory;
pub mod msg;
pub mod network;
pub mod page_cache;

pub use block_cache::{BlockCache, BlockCacheConfig, BlockState};
pub use directory::{Directory, DirectoryEntry, DirectoryState, ReadReply, WriteReply};
pub use msg::{MsgKind, TrafficStats};
pub use network::Interconnect;
pub use page_cache::{PageCache, PageCacheConfig};
