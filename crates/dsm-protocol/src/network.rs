//! Point-to-point interconnect with per-node network-interface contention.
//!
//! The paper assumes "a point-to-point network with a constant latency of 80
//! cycles but model\[s\] contention at the network interfaces accurately".  We
//! do the same: every message pays the constant wire latency, plus occupancy
//! at the sender's and receiver's network interfaces (NIs), which are FIFO
//! resources.  Intra-node transfers bypass the network entirely.

use crate::msg::{MsgKind, TrafficStats};
use mem_trace::NodeId;
use sim_engine::{Cycles, Resource};

/// Cycles of NI occupancy per message header.
const NI_HEADER_OCCUPANCY: u64 = 4;
/// Additional cycles of NI occupancy when a message carries a data block.
const NI_DATA_OCCUPANCY: u64 = 8;

/// The cluster interconnect.
#[derive(Debug, Clone)]
pub struct Interconnect {
    latency: Cycles,
    /// Cache-block payload size for byte accounting (a machine-geometry
    /// property; the paper's is 64 bytes).
    block_bytes: u64,
    send_ni: Vec<Resource>,
    recv_ni: Vec<Resource>,
    traffic: TrafficStats,
}

impl Interconnect {
    /// The paper's base network latency (80 processor cycles).
    pub const PAPER_LATENCY: Cycles = Cycles(80);

    /// Create an interconnect for `nodes` nodes with the given one-way wire
    /// latency, accounting data payloads at the paper's 64-byte block size.
    pub fn new(nodes: usize, latency: Cycles) -> Self {
        assert!(nodes > 0, "interconnect needs at least one node");
        Interconnect {
            latency,
            block_bytes: mem_trace::BLOCK_SIZE,
            send_ni: (0..nodes)
                .map(|i| Resource::new(format!("ni-tx[{i}]")))
                .collect(),
            recv_ni: (0..nodes)
                .map(|i| Resource::new(format!("ni-rx[{i}]")))
                .collect(),
            traffic: TrafficStats::new(),
        }
    }

    /// Account data payloads at `block_bytes` per block (block-size sweeps).
    pub fn with_block_bytes(mut self, block_bytes: u64) -> Self {
        self.block_bytes = block_bytes;
        self
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.send_ni.len()
    }

    fn occupancy(kind: MsgKind) -> Cycles {
        if kind.carries_data() {
            Cycles::new(NI_HEADER_OCCUPANCY + NI_DATA_OCCUPANCY)
        } else {
            Cycles::new(NI_HEADER_OCCUPANCY)
        }
    }

    /// Send a message of `kind` from `src` to `dst` at time `now`; returns
    /// the time the message is fully received at `dst`.
    ///
    /// Messages between a node and itself (possible when a "remote" page has
    /// actually been migrated home) skip the network and return `now`.
    pub fn send(&mut self, src: NodeId, dst: NodeId, now: Cycles, kind: MsgKind) -> Cycles {
        if src == dst {
            return now;
        }
        self.traffic.record_at(kind, self.block_bytes);
        let occupancy = Self::occupancy(kind);
        let injected = self.send_ni[src.index()].acquire(now, occupancy).finish;
        let arrived_at_ni = injected + self.latency;
        self.recv_ni[dst.index()]
            .acquire(arrived_at_ni, occupancy)
            .finish
    }

    /// Round trip of a request of `req` kind answered by a `reply` kind,
    /// plus `service` cycles of processing at the remote end.  Returns the
    /// completion time back at `src`.
    pub fn round_trip(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Cycles,
        req: MsgKind,
        reply: MsgKind,
        service: Cycles,
    ) -> Cycles {
        if src == dst {
            return now + service;
        }
        let request_arrival = self.send(src, dst, now, req);
        let reply_start = request_arrival + service;
        self.send(dst, src, reply_start, reply)
    }

    /// Traffic counters accumulated so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Total queueing delay across all NIs (a congestion indicator).
    pub fn total_ni_queue_delay(&self) -> Cycles {
        let tx: u64 = self.send_ni.iter().map(|r| r.stats().queued.raw()).sum();
        let rx: u64 = self.recv_ni.iter().map(|r| r.stats().queued.raw()).sum();
        Cycles::new(tx + rx)
    }

    /// Reset occupancy and traffic counters between runs.
    pub fn reset(&mut self) {
        for r in self.send_ni.iter_mut().chain(self.recv_ni.iter_mut()) {
            r.reset();
        }
        self.traffic = TrafficStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_plus_ni_occupancy() {
        let mut net = Interconnect::new(4, Interconnect::PAPER_LATENCY);
        let t = net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadRequest);
        // 4 (tx NI) + 80 (wire) + 4 (rx NI) = 88.
        assert_eq!(t, Cycles::new(88));
    }

    #[test]
    fn data_messages_occupy_longer() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        let t = net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadReply);
        // 12 + 80 + 12 = 104.
        assert_eq!(t, Cycles::new(104));
    }

    #[test]
    fn same_node_transfers_are_free() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        let t = net.send(NodeId(1), NodeId(1), Cycles::new(55), MsgKind::ReadReply);
        assert_eq!(t, Cycles::new(55));
        assert_eq!(net.traffic().total_messages(), 0);
    }

    #[test]
    fn round_trip_includes_service_time() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        let t = net.round_trip(
            NodeId(0),
            NodeId(1),
            Cycles::new(0),
            MsgKind::ReadRequest,
            MsgKind::ReadReply,
            Cycles::new(50),
        );
        // 88 out + 50 service + 104 back = 242.
        assert_eq!(t, Cycles::new(242));
        assert_eq!(net.traffic().total_messages(), 2);
    }

    #[test]
    fn local_round_trip_only_pays_service() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        let t = net.round_trip(
            NodeId(0),
            NodeId(0),
            Cycles::new(10),
            MsgKind::ReadRequest,
            MsgKind::ReadReply,
            Cycles::new(50),
        );
        assert_eq!(t, Cycles::new(60));
    }

    #[test]
    fn ni_contention_queues_messages() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        let t1 = net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadReply);
        let t2 = net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadReply);
        assert_eq!(t1, Cycles::new(104));
        // The second message waits 12 cycles for the sender NI.
        assert_eq!(t2, Cycles::new(116));
        assert!(net.total_ni_queue_delay() > Cycles::ZERO);
    }

    #[test]
    fn traffic_is_recorded_per_kind() {
        let mut net = Interconnect::new(3, Cycles::new(80));
        net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::Invalidation);
        net.send(
            NodeId(1),
            NodeId(0),
            Cycles::new(0),
            MsgKind::InvalidationAck,
        );
        assert_eq!(net.traffic().messages_of(MsgKind::Invalidation), 1);
        assert_eq!(net.traffic().messages_of(MsgKind::InvalidationAck), 1);
    }

    #[test]
    fn reset_clears_traffic_and_occupancy() {
        let mut net = Interconnect::new(2, Cycles::new(80));
        net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadReply);
        net.reset();
        assert_eq!(net.traffic().total_messages(), 0);
        assert_eq!(net.total_ni_queue_delay(), Cycles::ZERO);
        let t = net.send(NodeId(0), NodeId(1), Cycles::new(0), MsgKind::ReadReply);
        assert_eq!(t, Cycles::new(104));
    }
}
