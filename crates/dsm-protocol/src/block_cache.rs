//! The per-node SRAM block cache (cluster cache) of CC-NUMA.
//!
//! The CC-NUMA cluster device holds recently referenced *remote* blocks in a
//! small, fast SRAM cache.  The paper sizes it to the sum of the node's
//! processor caches (4 x 16 KB = 64 KB) so that it can maintain inclusion
//! with them, and evaluates a *perfect* CC-NUMA with an infinite block cache
//! as the normalization baseline.  Both variants are provided here.

use mem_trace::{BlockId, PageId};
use std::collections::HashMap;

/// State of a block held in the block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockState {
    /// Clean copy; home memory is up to date.
    Clean,
    /// Dirty copy; must be written back to the home on eviction or flush.
    Dirty,
}

/// Block-cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCacheConfig {
    /// Direct-mapped cache of the given capacity in bytes.
    Finite {
        /// Capacity in bytes.
        size_bytes: u64,
    },
    /// Unbounded cache: models the paper's "perfect CC-NUMA".
    Infinite,
}

impl BlockCacheConfig {
    /// The paper's base 64-KByte block cache (4 processors x 16 KB).
    pub const PAPER: BlockCacheConfig = BlockCacheConfig::Finite {
        size_bytes: 64 * 1024,
    };

    /// Number of lines for a finite configuration.
    pub fn lines(&self) -> Option<usize> {
        match self {
            BlockCacheConfig::Finite { size_bytes } => {
                Some((size_bytes / mem_trace::BLOCK_SIZE) as usize)
            }
            BlockCacheConfig::Infinite => None,
        }
    }
}

enum Storage {
    Finite {
        tags: Vec<Option<BlockId>>,
        states: Vec<BlockState>,
    },
    Infinite {
        blocks: HashMap<BlockId, BlockState>,
    },
}

/// A per-node block cache for remote data.
pub struct BlockCache {
    config: BlockCacheConfig,
    storage: Storage,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockCache {
    /// Create an empty block cache.
    ///
    /// # Panics
    /// Panics if a finite configuration has zero lines.
    pub fn new(config: BlockCacheConfig) -> Self {
        let storage = match config {
            BlockCacheConfig::Finite { size_bytes } => {
                let lines = (size_bytes / mem_trace::BLOCK_SIZE) as usize;
                assert!(lines > 0, "block cache must have at least one line");
                Storage::Finite {
                    tags: vec![None; lines],
                    states: vec![BlockState::Clean; lines],
                }
            }
            BlockCacheConfig::Infinite => Storage::Infinite {
                blocks: HashMap::new(),
            },
        };
        BlockCache {
            config,
            storage,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> BlockCacheConfig {
        self.config
    }

    /// `true` if `block` is present.
    pub fn contains(&self, block: BlockId) -> bool {
        self.state_of(block).is_some()
    }

    /// Present state of `block`, if cached.
    pub fn state_of(&self, block: BlockId) -> Option<BlockState> {
        match &self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    Some(states[idx])
                } else {
                    None
                }
            }
            Storage::Infinite { blocks } => blocks.get(&block).copied(),
        }
    }

    /// Look up `block`, recording a hit or miss.
    pub fn lookup(&mut self, block: BlockId) -> Option<BlockState> {
        let state = self.state_of(block);
        if state.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        state
    }

    /// Install `block`; returns the displaced victim `(block, state)` if the
    /// line was occupied by a different block.
    pub fn fill(&mut self, block: BlockId, state: BlockState) -> Option<(BlockId, BlockState)> {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.0 % tags.len() as u64) as usize;
                let victim = match tags[idx] {
                    Some(old) if old != block => {
                        self.evictions += 1;
                        Some((old, states[idx]))
                    }
                    _ => None,
                };
                tags[idx] = Some(block);
                states[idx] = state;
                victim
            }
            Storage::Infinite { blocks } => {
                blocks.insert(block, state);
                None
            }
        }
    }

    /// Mark a resident block dirty (a processor on this node wrote it).
    /// Returns `false` if the block is not resident.
    pub fn mark_dirty(&mut self, block: BlockId) -> bool {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    states[idx] = BlockState::Dirty;
                    true
                } else {
                    false
                }
            }
            Storage::Infinite { blocks } => match blocks.get_mut(&block) {
                Some(s) => {
                    *s = BlockState::Dirty;
                    true
                }
                None => false,
            },
        }
    }

    /// Remove `block` (remote invalidation); returns its state if present.
    pub fn invalidate(&mut self, block: BlockId) -> Option<BlockState> {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    tags[idx] = None;
                    Some(states[idx])
                } else {
                    None
                }
            }
            Storage::Infinite { blocks } => blocks.remove(&block),
        }
    }

    /// Remove every resident block belonging to `page` (page flush), and
    /// return them with their states.
    pub fn flush_page(&mut self, page: PageId) -> Vec<(BlockId, BlockState)> {
        let mut flushed = Vec::new();
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                for idx in 0..tags.len() {
                    if let Some(b) = tags[idx] {
                        if b.page() == page {
                            flushed.push((b, states[idx]));
                            tags[idx] = None;
                        }
                    }
                }
            }
            Storage::Infinite { blocks } => {
                let victims: Vec<BlockId> = blocks
                    .keys()
                    .copied()
                    .filter(|b| b.page() == page)
                    .collect();
                for b in victims {
                    let s = blocks.remove(&b).expect("just enumerated");
                    flushed.push((b, s));
                }
            }
        }
        flushed
    }

    /// Number of resident blocks.
    pub fn resident(&self) -> usize {
        match &self.storage {
            Storage::Finite { tags, .. } => tags.iter().filter(|t| t.is_some()).count(),
            Storage::Infinite { blocks } => blocks.len(),
        }
    }

    /// `(hits, misses, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::BLOCKS_PER_PAGE;

    fn tiny() -> BlockCache {
        BlockCache::new(BlockCacheConfig::Finite {
            size_bytes: 4 * mem_trace::BLOCK_SIZE,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(BlockId(1)), None);
        c.fill(BlockId(1), BlockState::Clean);
        assert_eq!(c.lookup(BlockId(1)), Some(BlockState::Clean));
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn conflict_evicts_previous_block() {
        let mut c = tiny(); // 4 lines: blocks 1 and 5 conflict
        c.fill(BlockId(1), BlockState::Dirty);
        let victim = c.fill(BlockId(5), BlockState::Clean);
        assert_eq!(victim, Some((BlockId(1), BlockState::Dirty)));
        assert!(!c.contains(BlockId(1)));
        assert!(c.contains(BlockId(5)));
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn refill_of_same_block_is_not_an_eviction() {
        let mut c = tiny();
        c.fill(BlockId(2), BlockState::Clean);
        assert_eq!(c.fill(BlockId(2), BlockState::Dirty), None);
        assert_eq!(c.state_of(BlockId(2)), Some(BlockState::Dirty));
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = tiny();
        c.fill(BlockId(3), BlockState::Clean);
        assert!(c.mark_dirty(BlockId(3)));
        assert_eq!(c.invalidate(BlockId(3)), Some(BlockState::Dirty));
        assert_eq!(c.invalidate(BlockId(3)), None);
        assert!(!c.mark_dirty(BlockId(3)));
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = BlockCache::new(BlockCacheConfig::Infinite);
        for i in 0..10_000u64 {
            assert_eq!(c.fill(BlockId(i), BlockState::Clean), None);
        }
        assert_eq!(c.resident(), 10_000);
        assert!(c.contains(BlockId(0)));
        assert!(c.contains(BlockId(9_999)));
        assert_eq!(c.counters().2, 0);
    }

    #[test]
    fn flush_page_removes_only_that_page() {
        let mut c = BlockCache::new(BlockCacheConfig::Infinite);
        let page = PageId(2);
        for b in page.blocks() {
            c.fill(b, BlockState::Clean);
        }
        let other = PageId(3).first_block();
        c.fill(other, BlockState::Dirty);
        let flushed = c.flush_page(page);
        assert_eq!(flushed.len(), BLOCKS_PER_PAGE as usize);
        assert!(c.contains(other));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn flush_page_on_finite_cache() {
        let mut c = BlockCache::new(BlockCacheConfig::PAPER);
        let page = PageId(0);
        c.fill(page.first_block(), BlockState::Dirty);
        c.fill(BlockId(page.first_block().0 + 1), BlockState::Clean);
        let flushed = c.flush_page(page);
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn paper_config_lines() {
        assert_eq!(BlockCacheConfig::PAPER.lines(), Some(1024));
        assert_eq!(BlockCacheConfig::Infinite.lines(), None);
    }
}
