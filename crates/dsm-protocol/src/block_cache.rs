//! The per-node SRAM block cache (cluster cache) of CC-NUMA.
//!
//! The CC-NUMA cluster device holds recently referenced *remote* blocks in a
//! small, fast SRAM cache.  The paper sizes it to the sum of the node's
//! processor caches (4 x 16 KB = 64 KB) so that it can maintain inclusion
//! with them, and evaluates a *perfect* CC-NUMA with an infinite block cache
//! as the normalization baseline.  Both variants are provided here.
//!
//! Blocks are addressed by [`BlockRef`]: the sparse id picks the
//! direct-mapped set (so conflict behaviour is a function of real
//! addresses), while the dense index keys the infinite variant's flat slab —
//! making the perfect cache's lookups array accesses and its page flushes
//! 64-slot scans instead of whole-table walks.

use mem_trace::{BlockRef, Geometry, PageRef, Slab};

/// State of a block held in the block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockState {
    /// Clean copy; home memory is up to date.
    Clean,
    /// Dirty copy; must be written back to the home on eviction or flush.
    Dirty,
}

/// Block-cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCacheConfig {
    /// Direct-mapped cache of the given capacity in bytes.
    Finite {
        /// Capacity in bytes.
        size_bytes: u64,
    },
    /// Unbounded cache: models the paper's "perfect CC-NUMA".
    Infinite,
}

impl BlockCacheConfig {
    /// The paper's base 64-KByte block cache (4 processors x 16 KB).
    pub const PAPER: BlockCacheConfig = BlockCacheConfig::Finite {
        size_bytes: 64 * 1024,
    };

    /// Number of lines for a finite configuration at the paper's 64-byte
    /// block size.
    pub fn lines(&self) -> Option<usize> {
        self.lines_at(mem_trace::BLOCK_SIZE)
    }

    /// Number of lines for a finite configuration with `block_bytes` lines
    /// (the byte budget is fixed; a block-size sweep changes how many lines
    /// it buys).
    pub fn lines_at(&self, block_bytes: u64) -> Option<usize> {
        match self {
            BlockCacheConfig::Finite { size_bytes } => Some((size_bytes / block_bytes) as usize),
            BlockCacheConfig::Infinite => None,
        }
    }
}

enum Storage {
    Finite {
        tags: Vec<Option<BlockRef>>,
        states: Vec<BlockState>,
    },
    Infinite {
        /// Dense per-block-index slots; `resident` counts the `Some`s.
        blocks: Slab<Option<BlockState>>,
        resident: usize,
    },
}

/// A per-node block cache for remote data.
pub struct BlockCache {
    config: BlockCacheConfig,
    geometry: Geometry,
    storage: Storage,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockCache {
    /// Create an empty block cache at the paper's geometry.
    ///
    /// # Panics
    /// Panics if a finite configuration has zero lines.
    pub fn new(config: BlockCacheConfig) -> Self {
        Self::with_geometry(config, Geometry::PAPER)
    }

    /// Create an empty block cache holding `geometry.block_bytes`-sized
    /// lines.
    ///
    /// # Panics
    /// Panics if a finite configuration has zero lines.
    pub fn with_geometry(config: BlockCacheConfig, geometry: Geometry) -> Self {
        let storage = match config.lines_at(geometry.block_bytes) {
            Some(lines) => {
                assert!(lines > 0, "block cache must have at least one line");
                Storage::Finite {
                    tags: vec![None; lines],
                    states: vec![BlockState::Clean; lines],
                }
            }
            None => Storage::Infinite {
                blocks: Slab::new(),
                resident: 0,
            },
        };
        BlockCache {
            config,
            geometry,
            storage,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> BlockCacheConfig {
        self.config
    }

    /// `true` if `block` is present.
    pub fn contains(&self, block: BlockRef) -> bool {
        self.state_of(block).is_some()
    }

    /// Present state of `block`, if cached.
    #[inline]
    pub fn state_of(&self, block: BlockRef) -> Option<BlockState> {
        match &self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.id.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    Some(states[idx])
                } else {
                    None
                }
            }
            Storage::Infinite { blocks, .. } => blocks.get(block.idx.index()).copied().flatten(),
        }
    }

    /// Look up `block`, recording a hit or miss.
    pub fn lookup(&mut self, block: BlockRef) -> Option<BlockState> {
        let state = self.state_of(block);
        if state.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        state
    }

    /// Install `block`; returns the displaced victim `(block, state)` if the
    /// line was occupied by a different block.
    pub fn fill(&mut self, block: BlockRef, state: BlockState) -> Option<(BlockRef, BlockState)> {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.id.0 % tags.len() as u64) as usize;
                let victim = match tags[idx] {
                    Some(old) if old != block => {
                        self.evictions += 1;
                        Some((old, states[idx]))
                    }
                    _ => None,
                };
                tags[idx] = Some(block);
                states[idx] = state;
                victim
            }
            Storage::Infinite { blocks, resident } => {
                let slot = blocks.entry(block.idx.index());
                if slot.is_none() {
                    *resident += 1;
                }
                *slot = Some(state);
                None
            }
        }
    }

    /// Mark a resident block dirty (a processor on this node wrote it).
    /// Returns `false` if the block is not resident.
    pub fn mark_dirty(&mut self, block: BlockRef) -> bool {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.id.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    states[idx] = BlockState::Dirty;
                    true
                } else {
                    false
                }
            }
            Storage::Infinite { blocks, .. } => {
                match blocks.get_mut(block.idx.index()).and_then(Option::as_mut) {
                    Some(s) => {
                        *s = BlockState::Dirty;
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Remove `block` (remote invalidation); returns its state if present.
    pub fn invalidate(&mut self, block: BlockRef) -> Option<BlockState> {
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                let idx = (block.id.0 % tags.len() as u64) as usize;
                if tags[idx] == Some(block) {
                    tags[idx] = None;
                    Some(states[idx])
                } else {
                    None
                }
            }
            Storage::Infinite { blocks, resident } => {
                match blocks.get_mut(block.idx.index()).map(Option::take) {
                    Some(Some(s)) => {
                        *resident -= 1;
                        Some(s)
                    }
                    _ => None,
                }
            }
        }
    }

    /// Remove every resident block belonging to `page` (page flush), and
    /// return them with their states.
    pub fn flush_page(&mut self, page: PageRef) -> Vec<(BlockRef, BlockState)> {
        let mut flushed = Vec::new();
        let geometry = self.geometry;
        match &mut self.storage {
            Storage::Finite { tags, states } => {
                for idx in 0..tags.len() {
                    if let Some(b) = tags[idx] {
                        if geometry.page_of_block_idx(b.idx) == page.idx {
                            flushed.push((b, states[idx]));
                            tags[idx] = None;
                        }
                    }
                }
            }
            Storage::Infinite { blocks, resident } => {
                // The page's blocks sit in `blocks_per_page` contiguous
                // slots.
                for offset in 0..geometry.blocks_per_page() {
                    let block = geometry.block_ref_at(page, offset);
                    if let Some(Some(s)) = blocks.get_mut(block.idx.index()).map(Option::take) {
                        *resident -= 1;
                        flushed.push((block, s));
                    }
                }
            }
        }
        flushed
    }

    /// Number of resident blocks.
    pub fn resident(&self) -> usize {
        match &self.storage {
            Storage::Finite { tags, .. } => tags.iter().filter(|t| t.is_some()).count(),
            Storage::Infinite { resident, .. } => *resident,
        }
    }

    /// `(hits, misses, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::{BlockId, BlockIdx, PageId, PageIdx, BLOCKS_PER_PAGE};

    /// Identity interning: block id n ↔ index n (a valid assignment when
    /// page ids are dense from zero, as in these tests).
    fn b(n: u64) -> BlockRef {
        BlockRef::new(BlockId(n), BlockIdx(n as u32))
    }

    fn p(n: u64) -> PageRef {
        PageRef::new(PageId(n), PageIdx(n as u32))
    }

    fn tiny() -> BlockCache {
        BlockCache::new(BlockCacheConfig::Finite {
            size_bytes: 4 * mem_trace::BLOCK_SIZE,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(b(1)), None);
        c.fill(b(1), BlockState::Clean);
        assert_eq!(c.lookup(b(1)), Some(BlockState::Clean));
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn conflict_evicts_previous_block() {
        let mut c = tiny(); // 4 lines: blocks 1 and 5 conflict
        c.fill(b(1), BlockState::Dirty);
        let victim = c.fill(b(5), BlockState::Clean);
        assert_eq!(victim, Some((b(1), BlockState::Dirty)));
        assert!(!c.contains(b(1)));
        assert!(c.contains(b(5)));
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn refill_of_same_block_is_not_an_eviction() {
        let mut c = tiny();
        c.fill(b(2), BlockState::Clean);
        assert_eq!(c.fill(b(2), BlockState::Dirty), None);
        assert_eq!(c.state_of(b(2)), Some(BlockState::Dirty));
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = tiny();
        c.fill(b(3), BlockState::Clean);
        assert!(c.mark_dirty(b(3)));
        assert_eq!(c.invalidate(b(3)), Some(BlockState::Dirty));
        assert_eq!(c.invalidate(b(3)), None);
        assert!(!c.mark_dirty(b(3)));
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = BlockCache::new(BlockCacheConfig::Infinite);
        for i in 0..10_000u64 {
            assert_eq!(c.fill(b(i), BlockState::Clean), None);
        }
        assert_eq!(c.resident(), 10_000);
        assert!(c.contains(b(0)));
        assert!(c.contains(b(9_999)));
        assert_eq!(c.counters().2, 0);
        assert!(c.mark_dirty(b(17)));
        assert!(!c.mark_dirty(b(20_000)));
        assert_eq!(c.invalidate(b(17)), Some(BlockState::Dirty));
        assert_eq!(c.resident(), 9_999);
    }

    #[test]
    fn flush_page_removes_only_that_page() {
        let mut c = BlockCache::new(BlockCacheConfig::Infinite);
        let page = p(2);
        for offset in 0..BLOCKS_PER_PAGE {
            c.fill(page.block_at(offset), BlockState::Clean);
        }
        let other = p(3).block_at(0);
        c.fill(other, BlockState::Dirty);
        let flushed = c.flush_page(page);
        assert_eq!(flushed.len(), BLOCKS_PER_PAGE as usize);
        assert!(c.contains(other));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn flush_page_on_finite_cache() {
        let mut c = BlockCache::new(BlockCacheConfig::PAPER);
        let page = p(0);
        c.fill(page.block_at(0), BlockState::Dirty);
        c.fill(page.block_at(1), BlockState::Clean);
        let flushed = c.flush_page(page);
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn paper_config_lines() {
        assert_eq!(BlockCacheConfig::PAPER.lines(), Some(1024));
        assert_eq!(BlockCacheConfig::Infinite.lines(), None);
    }
}
