//! The S-COMA page cache used by R-NUMA.
//!
//! R-NUMA relocates pages that suffer frequent capacity/conflict misses into
//! a region of the node's main memory managed as a *page cache*: page
//! frames are allocated locally, coherence is still maintained at block
//! granularity through per-block *fine-grain tags*, and a reverse
//! translation table maps local frames back to global addresses.  Practical
//! implementations bound the page cache to a fraction of memory (the paper's
//! base system uses 2.4 MB per node, 40x the block cache); the limit is what
//! creates the replacement traffic studied in Figures 5-8.
//!
//! This module models the frames, fine-grain tags, LRU replacement and the
//! occupancy counters.  The relocation *policy* (refetch counters and
//! thresholds) lives in `dsm-core`.
//!
//! Frames are a dense slab over interned [`PageIdx`]es — the per-block
//! lookup on the simulator's hot path is two array accesses and a bit test —
//! with a side list of allocated frames so the (rare) LRU victim scan walks
//! only the cache's occupancy, not the whole footprint.

use mem_trace::{BlockIdx, Geometry, PageId, PageIdx, PageRef, SharerSet, Slab, PAGE_SIZE};

/// Page-cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCacheConfig {
    /// At most this many bytes of main memory are usable as page frames.
    Finite {
        /// Capacity in bytes (rounded down to whole pages).
        size_bytes: u64,
    },
    /// Unbounded page cache (the paper's R-NUMA-Inf).
    Infinite,
}

impl PageCacheConfig {
    /// The paper's base 2.4-MByte page cache (40x the 64-KB block cache).
    pub const PAPER: PageCacheConfig = PageCacheConfig::Finite {
        size_bytes: 2_457_600,
    };

    /// The paper's halved page cache used in Section 6.4 (1.2 MB).
    pub const PAPER_HALF: PageCacheConfig = PageCacheConfig::Finite {
        size_bytes: 1_228_800,
    };

    /// Capacity in page frames at the paper's 4-KB page size (`None` for
    /// infinite).
    pub fn frames(&self) -> Option<usize> {
        self.frames_at(PAGE_SIZE)
    }

    /// Capacity in page frames for pages of `page_bytes` (`None` for
    /// infinite).  The byte budget is what the paper fixes; a page-size
    /// sweep changes how many frames it buys.
    pub fn frames_at(&self, page_bytes: u64) -> Option<usize> {
        match self {
            PageCacheConfig::Finite { size_bytes } => Some((size_bytes / page_bytes) as usize),
            PageCacheConfig::Infinite => None,
        }
    }
}

/// One allocated page frame: which blocks are present and which are dirty
/// (fine-grain tags, a [`SharerSet`] each so pages of more than 64 blocks
/// are representable).  The slab slot also remembers the sparse page id so
/// replacement victims can be reported as full [`PageRef`]s without
/// consulting the interner.
#[derive(Debug, Clone)]
struct Frame {
    allocated: bool,
    id: PageId,
    present: SharerSet,
    dirty: SharerSet,
    last_use: u64,
}

impl Default for Frame {
    fn default() -> Self {
        Frame {
            allocated: false,
            id: PageId(0),
            present: SharerSet::new(),
            dirty: SharerSet::new(),
            last_use: 0,
        }
    }
}

/// Result of asking for a frame for a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The page already has a frame.
    AlreadyPresent,
    /// A free frame was assigned.
    Allocated,
    /// The cache is full; the returned page was chosen (LRU) as the victim
    /// and has been deallocated to make room.  Its dirty-block count is
    /// returned so the caller can charge the flush traffic.
    Replaced {
        /// The evicted page.
        victim: PageRef,
        /// How many blocks of the victim were present.
        victim_blocks: u32,
        /// How many of those blocks were dirty (must be written back home).
        victim_dirty: u32,
    },
}

/// A node's S-COMA page cache.
#[derive(Debug, Clone)]
pub struct PageCache {
    config: PageCacheConfig,
    geometry: Geometry,
    frames: Slab<Frame>,
    /// Indices of currently allocated frames (the LRU scan set).
    allocated: Vec<u32>,
    clock: u64,
    allocations: u64,
    replacements: u64,
    blocks_installed: u64,
    block_hits: u64,
    block_misses: u64,
}

impl PageCache {
    /// Create an empty page cache at the paper's geometry.
    ///
    /// # Panics
    /// Panics if a finite configuration holds zero frames.
    pub fn new(config: PageCacheConfig) -> Self {
        Self::with_geometry(config, Geometry::PAPER)
    }

    /// Create an empty page cache whose frames hold `geometry.page_bytes`
    /// pages of `geometry.blocks_per_page()` fine-grain tags each.
    ///
    /// # Panics
    /// Panics if a finite configuration holds zero frames.
    pub fn with_geometry(config: PageCacheConfig, geometry: Geometry) -> Self {
        if let Some(frames) = config.frames_at(geometry.page_bytes) {
            assert!(frames > 0, "page cache must hold at least one frame");
        }
        PageCache {
            config,
            geometry,
            frames: Slab::new(),
            allocated: Vec::new(),
            clock: 0,
            allocations: 0,
            replacements: 0,
            blocks_installed: 0,
            block_hits: 0,
            block_misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> PageCacheConfig {
        self.config
    }

    /// Number of frames currently allocated.
    pub fn allocated_frames(&self) -> usize {
        self.allocated.len()
    }

    /// Capacity in frames (`None` if infinite).
    pub fn capacity_frames(&self) -> Option<usize> {
        self.config.frames_at(self.geometry.page_bytes)
    }

    /// Dense index of the page containing `block`, at this cache's geometry.
    #[inline]
    fn page_of(&self, block: BlockIdx) -> PageIdx {
        self.geometry.page_of_block_idx(block)
    }

    /// Index of `block` within its page, at this cache's geometry.
    #[inline]
    fn offset_of(&self, block: BlockIdx) -> usize {
        self.geometry.index_in_page_idx(block) as usize
    }

    /// `true` if `page` has a frame.
    pub fn contains_page(&self, page: PageIdx) -> bool {
        self.frames
            .get(page.index())
            .map(|f| f.allocated)
            .unwrap_or(false)
    }

    /// `true` if `block` is present in its page's frame.
    pub fn block_present(&self, block: BlockIdx) -> bool {
        self.frames
            .get(self.page_of(block).index())
            .map(|f| f.allocated && f.present.contains(self.offset_of(block)))
            .unwrap_or(false)
    }

    /// Allocate a frame for `page`, replacing the LRU page if necessary.
    pub fn allocate(&mut self, page: PageRef) -> AllocOutcome {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.frames.entry(page.idx.index());
        if slot.allocated {
            slot.last_use = clock;
            return AllocOutcome::AlreadyPresent;
        }
        let outcome = match self.capacity_frames() {
            Some(cap) if self.allocated.len() >= cap => {
                // LRU victim; ties (impossible with the monotonic clock, but
                // kept for robustness) break toward the smaller page id, as
                // the map-keyed implementation did.
                let (pos, victim_idx) = self
                    .allocated
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, idx)| {
                        // dsm-lint: allow(panic-path, the allocated list only holds indices handed out by the frame arena)
                        let f = self.frames.get(**idx as usize).expect("allocated frame");
                        (f.last_use, f.id.0)
                    })
                    .map(|(pos, idx)| (pos, *idx))
                    // dsm-lint: allow(panic-path, this branch runs only when allocation found no free frame so the allocated list is non-empty)
                    .expect("cache is full, so non-empty");
                self.allocated.swap_remove(pos);
                let frame = self
                    .frames
                    .get_mut(victim_idx as usize)
                    // dsm-lint: allow(panic-path, victim index came from the allocated list a few lines up)
                    .expect("allocated frame");
                let victim = PageRef::new(frame.id, PageIdx(victim_idx));
                let victim_blocks = frame.present.count();
                let victim_dirty = frame.dirty.count();
                *frame = Frame::default();
                self.replacements += 1;
                AllocOutcome::Replaced {
                    victim,
                    victim_blocks,
                    victim_dirty,
                }
            }
            _ => AllocOutcome::Allocated,
        };
        self.allocations += 1;
        self.allocated.push(page.idx.0);
        *self.frames.entry(page.idx.index()) = Frame {
            allocated: true,
            id: page.id,
            present: SharerSet::new(),
            dirty: SharerSet::new(),
            last_use: clock,
        };
        outcome
    }

    /// Explicitly deallocate `page` (e.g. migration of a relocated page).
    /// Returns `(blocks present, dirty blocks)` if it was allocated.
    pub fn deallocate(&mut self, page: PageIdx) -> Option<(u32, u32)> {
        let frame = self.frames.get_mut(page.index())?;
        if !frame.allocated {
            return None;
        }
        let counts = (frame.present.count(), frame.dirty.count());
        *frame = Frame::default();
        let pos = self
            .allocated
            .iter()
            .position(|idx| *idx == page.0)
            // dsm-lint: allow(panic-path, release is called only for pages the cache returned from allocate; the allocated list tracks every live frame)
            .expect("allocated list tracks every frame");
        self.allocated.swap_remove(pos);
        Some(counts)
    }

    /// Look up `block`; records a hit or a (fine-grain) miss.  A miss means
    /// the enclosing page has a frame but this block has not been fetched
    /// yet, or the page has no frame at all.
    #[inline]
    pub fn lookup_block(&mut self, block: BlockIdx) -> bool {
        self.clock += 1;
        let page = self.page_of(block).index();
        let offset = self.offset_of(block);
        let hit = match self.frames.get_mut(page) {
            Some(frame) if frame.allocated => {
                frame.last_use = self.clock;
                frame.present.contains(offset)
            }
            _ => false,
        };
        if hit {
            self.block_hits += 1;
        } else {
            self.block_misses += 1;
        }
        hit
    }

    /// Install a fetched block into its page's frame.  Returns `false` (and
    /// does nothing) if the page has no frame.
    pub fn install_block(&mut self, block: BlockIdx, dirty: bool) -> bool {
        let page = self.page_of(block).index();
        let offset = self.offset_of(block);
        match self.frames.get_mut(page) {
            Some(frame) if frame.allocated => {
                frame.present.insert(offset);
                if dirty {
                    frame.dirty.insert(offset);
                }
                self.blocks_installed += 1;
                true
            }
            _ => false,
        }
    }

    /// Mark a present block dirty (a local processor wrote it). Returns
    /// `false` if the block is not present.
    pub fn mark_dirty(&mut self, block: BlockIdx) -> bool {
        let page = self.page_of(block).index();
        let offset = self.offset_of(block);
        match self.frames.get_mut(page) {
            Some(frame) if frame.allocated && frame.present.contains(offset) => {
                frame.dirty.insert(offset);
                true
            }
            _ => false,
        }
    }

    /// Invalidate a block (remote write). Returns `true` if it was present.
    pub fn invalidate_block(&mut self, block: BlockIdx) -> bool {
        let page = self.page_of(block).index();
        let offset = self.offset_of(block);
        match self.frames.get_mut(page) {
            Some(frame) if frame.allocated => {
                let was_present = frame.present.remove(offset);
                frame.dirty.remove(offset);
                was_present
            }
            _ => false,
        }
    }

    /// Number of blocks present in `page`'s frame (0 if not allocated).
    pub fn blocks_present(&self, page: PageIdx) -> u32 {
        self.frames
            .get(page.index())
            .filter(|f| f.allocated)
            .map(|f| f.present.count())
            .unwrap_or(0)
    }

    /// Fragmentation of an allocated page frame: fraction of the frame's
    /// blocks that are *absent* (0.0 = fully populated). Returns `None` if
    /// the page has no frame.
    pub fn fragmentation(&self, page: PageIdx) -> Option<f64> {
        self.frames
            .get(page.index())
            .filter(|f| f.allocated)
            .map(|f| 1.0 - f.present.count() as f64 / self.geometry.blocks_per_page() as f64)
    }

    /// `(allocations, replacements, blocks installed, block hits, block misses)`.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.allocations,
            self.replacements,
            self.blocks_installed,
            self.block_hits,
            self.block_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity interning: page id n ↔ index n.
    fn p(n: u64) -> PageRef {
        PageRef::new(PageId(n), PageIdx(n as u32))
    }

    fn two_frame_cache() -> PageCache {
        PageCache::new(PageCacheConfig::Finite {
            size_bytes: 2 * PAGE_SIZE,
        })
    }

    #[test]
    fn paper_configs_hold_expected_frames() {
        assert_eq!(PageCacheConfig::PAPER.frames(), Some(600));
        assert_eq!(PageCacheConfig::PAPER_HALF.frames(), Some(300));
        assert_eq!(PageCacheConfig::Infinite.frames(), None);
    }

    #[test]
    fn allocate_and_install_blocks() {
        let mut pc = two_frame_cache();
        let page = p(7);
        assert_eq!(pc.allocate(page), AllocOutcome::Allocated);
        assert_eq!(pc.allocate(page), AllocOutcome::AlreadyPresent);
        let b = page.block_at(0).idx;
        assert!(!pc.lookup_block(b));
        assert!(pc.install_block(b, false));
        assert!(pc.lookup_block(b));
        assert_eq!(pc.blocks_present(page.idx), 1);
        assert!(pc.block_present(b));
    }

    #[test]
    fn install_into_unallocated_page_fails() {
        let mut pc = two_frame_cache();
        assert!(!pc.install_block(p(3).block_at(0).idx, false));
    }

    #[test]
    fn lru_replacement_when_full() {
        let mut pc = two_frame_cache();
        pc.allocate(p(1));
        pc.allocate(p(2));
        // Touch page 1 so page 2 becomes LRU.
        pc.lookup_block(p(1).block_at(0).idx);
        match pc.allocate(p(3)) {
            AllocOutcome::Replaced { victim, .. } => assert_eq!(victim, p(2)),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert!(pc.contains_page(p(1).idx));
        assert!(pc.contains_page(p(3).idx));
        assert!(!pc.contains_page(p(2).idx));
        assert_eq!(pc.counters().1, 1);
    }

    #[test]
    fn replacement_reports_victim_contents() {
        let mut pc = two_frame_cache();
        pc.allocate(p(1));
        let b0 = p(1).block_at(0).idx;
        let b1 = p(1).block_at(1).idx;
        pc.install_block(b0, true);
        pc.install_block(b1, false);
        pc.allocate(p(2));
        // Make page 1 LRU (page 2 was touched more recently by allocation).
        match pc.allocate(p(9)) {
            AllocOutcome::Replaced {
                victim,
                victim_blocks,
                victim_dirty,
            } => {
                assert_eq!(victim, p(1));
                assert_eq!(victim_blocks, 2);
                assert_eq!(victim_dirty, 1);
            }
            other => panic!("expected replacement, got {other:?}"),
        }
    }

    #[test]
    fn infinite_cache_never_replaces() {
        let mut pc = PageCache::new(PageCacheConfig::Infinite);
        for i in 0..5_000 {
            assert_ne!(
                std::mem::discriminant(&pc.allocate(p(i))),
                std::mem::discriminant(&AllocOutcome::Replaced {
                    victim: p(0),
                    victim_blocks: 0,
                    victim_dirty: 0
                })
            );
        }
        assert_eq!(pc.allocated_frames(), 5_000);
        assert_eq!(pc.counters().1, 0);
    }

    #[test]
    fn dirty_tracking_and_invalidation() {
        let mut pc = two_frame_cache();
        let page = p(4);
        let b = page.block_at(0).idx;
        pc.allocate(page);
        pc.install_block(b, false);
        assert!(pc.mark_dirty(b));
        assert!(pc.invalidate_block(b));
        assert!(!pc.block_present(b));
        assert!(!pc.mark_dirty(b), "absent block cannot be dirtied");
        assert!(!pc.invalidate_block(b));
    }

    #[test]
    fn deallocate_returns_contents() {
        let mut pc = two_frame_cache();
        let page = p(5);
        pc.allocate(page);
        pc.install_block(page.block_at(0).idx, true);
        assert_eq!(pc.deallocate(page.idx), Some((1, 1)));
        assert_eq!(pc.deallocate(page.idx), None);
        assert_eq!(pc.allocated_frames(), 0);
    }

    #[test]
    fn fragmentation_measures_absent_blocks() {
        let mut pc = PageCache::new(PageCacheConfig::Infinite);
        let page = p(6);
        assert_eq!(pc.fragmentation(page.idx), None);
        pc.allocate(page);
        assert_eq!(pc.fragmentation(page.idx), Some(1.0));
        for offset in 0..32 {
            pc.install_block(page.block_at(offset).idx, false);
        }
        let frag = pc.fragmentation(page.idx).unwrap();
        assert!((frag - 0.5).abs() < 1e-9);
    }
}
