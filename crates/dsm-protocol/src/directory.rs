//! The block directory of the DSM write-invalidate protocol.
//!
//! Coherence between cluster nodes is maintained at cache-block granularity
//! with a full-bit-vector directory: for every block of shared memory the
//! directory records whether the block is uncached, shared by a set of
//! nodes, or modified (owned) by exactly one node.  Within a node the
//! snoopy MOESI protocol keeps the four processor caches consistent; the
//! directory only sees *nodes*.
//!
//! Directory state is keyed by the dense [`BlockIdx`] the trace layer
//! interns (see [`mem_trace::intern`]): entries live in a flat slab indexed
//! by block index, so the per-miss directory transition is an array access,
//! and a page purge touches exactly the page's contiguous block slots.
//!
//! Sharer tracking is a [`SharerSet`]: one inline word for clusters of up
//! to 64 nodes (the exact bitmask semantics the directory always had,
//! allocation-free) and a boxed bitset beyond, so cluster size is a real
//! sweep axis instead of a hard cap.

use mem_trace::{BlockIdx, Geometry, NodeId, PageIdx, SharerSet, Slab};

/// Directory state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryState {
    /// No node caches the block; memory at the home is up to date.
    #[default]
    Uncached,
    /// One or more nodes hold read-only copies; memory is up to date.
    Shared,
    /// Exactly one node holds a (potentially dirty) exclusive copy.
    Modified,
}

/// A directory entry: state plus sharer set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirectoryEntry {
    /// Coherence state.
    pub state: DirectoryState,
    /// Nodes holding a copy.
    pub sharers: SharerSet,
}

impl DirectoryEntry {
    fn uncached() -> Self {
        DirectoryEntry::default()
    }

    /// Nodes currently holding a copy, ascending.
    pub fn sharer_nodes(&self) -> Vec<NodeId> {
        self.sharers.nodes()
    }

    /// Number of nodes currently holding a copy.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count()
    }

    /// `true` if `node` holds a copy.
    pub fn is_sharer(&self, node: NodeId) -> bool {
        self.sharers.contains(node.index())
    }
}

/// Where the data for a read/write reply comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Home memory supplies the block.
    HomeMemory,
    /// The current owner node forwards the (dirty) block.
    Owner(NodeId),
}

/// Outcome of a read request at the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadReply {
    /// Where the data comes from.
    pub source: DataSource,
    /// `true` if the requesting node already had a copy registered (an
    /// inclusion refresh rather than a new sharer).
    pub already_sharer: bool,
}

/// Outcome of a write (read-exclusive / upgrade) request at the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReply {
    /// Where the data comes from (`HomeMemory` if the requester only needs
    /// ownership, or already held the only copy).
    pub source: DataSource,
    /// Nodes whose copies must be invalidated (never contains the
    /// requester).
    pub invalidate: Vec<NodeId>,
}

/// Full-map directory covering every block of shared memory.
///
/// Entries are a dense slab over interned block indices: blocks never
/// referenced remotely stay in the implicit `Uncached` state (a
/// default-valued slot, or no slot at all).
#[derive(Debug, Clone)]
pub struct Directory {
    entries: Slab<DirectoryEntry>,
    geometry: Geometry,
    read_requests: u64,
    write_requests: u64,
    invalidations_sent: u64,
    forwards: u64,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory (all blocks uncached) at the paper's geometry.
    pub fn new() -> Self {
        Self::with_geometry(Geometry::PAPER)
    }

    /// An empty directory whose page purges walk `geometry.blocks_per_page()`
    /// contiguous slots.
    pub fn with_geometry(geometry: Geometry) -> Self {
        Directory {
            entries: Slab::new(),
            geometry,
            read_requests: 0,
            write_requests: 0,
            invalidations_sent: 0,
            forwards: 0,
        }
    }

    /// Current entry for `block` (implicitly `Uncached`).
    #[inline]
    pub fn entry(&self, block: BlockIdx) -> DirectoryEntry {
        self.entries
            .get(block.index())
            .cloned()
            .unwrap_or_else(DirectoryEntry::uncached)
    }

    /// The node holding `block` modified, if any — without cloning the
    /// sharer set (the simulator's hot-path query).
    #[inline]
    pub fn owner_of(&self, block: BlockIdx) -> Option<NodeId> {
        self.entries
            .get(block.index())
            .filter(|e| e.state == DirectoryState::Modified)
            .and_then(|e| e.sharers.first())
            .map(|i| NodeId(i as u16))
    }

    /// Handle a read request for `block` by `requester`.
    pub fn handle_read(&mut self, block: BlockIdx, requester: NodeId) -> ReadReply {
        self.read_requests += 1;
        let entry = self.entries.entry(block.index());
        let already_sharer = entry.sharers.contains(requester.index());
        let reply = match entry.state {
            DirectoryState::Uncached | DirectoryState::Shared => ReadReply {
                source: DataSource::HomeMemory,
                already_sharer,
            },
            DirectoryState::Modified => {
                // dsm-lint: allow(panic-path, DirectoryState::Modified is entered only when exactly one sharer registers a write; the sharer list cannot be empty in that state)
                let owner = NodeId(entry.sharers.first().expect("modified implies owner") as u16);
                if owner == requester {
                    // Requester already owns it (e.g. re-registration after a
                    // block-cache refresh); no transition needed.
                    ReadReply {
                        source: DataSource::HomeMemory,
                        already_sharer: true,
                    }
                } else {
                    self.forwards += 1;
                    ReadReply {
                        source: DataSource::Owner(owner),
                        already_sharer,
                    }
                }
            }
        };
        // After a read the block is shared by the previous holders plus the
        // requester, and memory is (or will be) up to date.
        entry.sharers.insert(requester.index());
        entry.state = DirectoryState::Shared;
        reply
    }

    /// Handle a write (read-exclusive) request for `block` by `requester`.
    pub fn handle_write(&mut self, block: BlockIdx, requester: NodeId) -> WriteReply {
        self.write_requests += 1;
        let entry = self.entries.entry(block.index());
        let reply = match entry.state {
            DirectoryState::Uncached => WriteReply {
                source: DataSource::HomeMemory,
                invalidate: Vec::new(),
            },
            DirectoryState::Shared => {
                let others: Vec<NodeId> = entry
                    .sharers
                    .iter()
                    .filter(|i| *i != requester.index())
                    .map(|i| NodeId(i as u16))
                    .collect();
                self.invalidations_sent += others.len() as u64;
                WriteReply {
                    source: DataSource::HomeMemory,
                    invalidate: others,
                }
            }
            DirectoryState::Modified => {
                // dsm-lint: allow(panic-path, DirectoryState::Modified is entered only when exactly one sharer registers a write; the sharer list cannot be empty in that state)
                let owner = NodeId(entry.sharers.first().expect("modified implies owner") as u16);
                if owner == requester {
                    WriteReply {
                        source: DataSource::HomeMemory,
                        invalidate: Vec::new(),
                    }
                } else {
                    self.forwards += 1;
                    self.invalidations_sent += 1;
                    WriteReply {
                        source: DataSource::Owner(owner),
                        invalidate: vec![owner],
                    }
                }
            }
        };
        entry.state = DirectoryState::Modified;
        entry.sharers.clear();
        entry.sharers.insert(requester.index());
        reply
    }

    /// A node silently dropped (evicted) its copy of `block`; if it held the
    /// block modified the caller is responsible for the write-back traffic.
    pub fn handle_eviction(&mut self, block: BlockIdx, node: NodeId) {
        if let Some(entry) = self.entries.get_mut(block.index()) {
            entry.sharers.remove(node.index());
            if entry.sharers.is_empty() {
                entry.state = DirectoryState::Uncached;
            } else if entry.state == DirectoryState::Modified {
                // The owner evicted; remaining copies (if any) are clean
                // shared copies.
                entry.state = DirectoryState::Shared;
            }
        }
    }

    /// Invalidate every cached copy of every block of `page` (page flush for
    /// migration/replication-related operations).  Returns, per block, the
    /// list of nodes that held a copy.
    ///
    /// Thanks to the contiguous block-index layout this touches exactly the
    /// page's `blocks_per_page` slots, never the rest of the table.
    pub fn purge_page(&mut self, page: PageIdx) -> Vec<(BlockIdx, Vec<NodeId>)> {
        let mut flushed = Vec::new();
        for block in self.geometry.block_indices(page) {
            if let Some(entry) = self.entries.get_mut(block.index()) {
                if !entry.sharers.is_empty() {
                    flushed.push((block, entry.sharer_nodes()));
                }
                *entry = DirectoryEntry::uncached();
            }
        }
        flushed
    }

    /// Number of blocks currently cached somewhere (non-`Uncached` entries).
    pub fn tracked_blocks(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state != DirectoryState::Uncached)
            .count()
    }

    /// `(read requests, write requests, invalidations sent, forwards)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.read_requests,
            self.write_requests,
            self.invalidations_sent,
            self.forwards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::BLOCKS_PER_PAGE;

    const B: BlockIdx = BlockIdx(42);

    #[test]
    fn read_of_uncached_block_comes_from_memory() {
        let mut dir = Directory::new();
        let r = dir.handle_read(B, NodeId(2));
        assert_eq!(r.source, DataSource::HomeMemory);
        assert!(!r.already_sharer);
        let e = dir.entry(B);
        assert_eq!(e.state, DirectoryState::Shared);
        assert!(e.is_sharer(NodeId(2)));
        assert_eq!(e.sharer_count(), 1);
    }

    #[test]
    fn multiple_readers_accumulate_sharers() {
        let mut dir = Directory::new();
        dir.handle_read(B, NodeId(0));
        dir.handle_read(B, NodeId(3));
        let r = dir.handle_read(B, NodeId(0));
        assert!(r.already_sharer);
        let e = dir.entry(B);
        assert_eq!(e.sharer_count(), 2);
        assert_eq!(e.sharer_nodes(), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut dir = Directory::new();
        dir.handle_read(B, NodeId(0));
        dir.handle_read(B, NodeId(1));
        dir.handle_read(B, NodeId(2));
        let w = dir.handle_write(B, NodeId(1));
        assert_eq!(w.source, DataSource::HomeMemory);
        assert_eq!(w.invalidate, vec![NodeId(0), NodeId(2)]);
        let e = dir.entry(B);
        assert_eq!(e.state, DirectoryState::Modified);
        assert_eq!(e.sharer_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn read_of_modified_block_forwards_from_owner() {
        let mut dir = Directory::new();
        dir.handle_write(B, NodeId(5));
        let r = dir.handle_read(B, NodeId(1));
        assert_eq!(r.source, DataSource::Owner(NodeId(5)));
        let e = dir.entry(B);
        assert_eq!(e.state, DirectoryState::Shared);
        assert_eq!(e.sharer_nodes(), vec![NodeId(1), NodeId(5)]);
    }

    #[test]
    fn write_to_block_owned_elsewhere_transfers_ownership() {
        let mut dir = Directory::new();
        dir.handle_write(B, NodeId(0));
        let w = dir.handle_write(B, NodeId(7));
        assert_eq!(w.source, DataSource::Owner(NodeId(0)));
        assert_eq!(w.invalidate, vec![NodeId(0)]);
        let e = dir.entry(B);
        assert_eq!(e.state, DirectoryState::Modified);
        assert_eq!(e.sharer_nodes(), vec![NodeId(7)]);
    }

    #[test]
    fn owner_rewrite_needs_no_invalidations() {
        let mut dir = Directory::new();
        dir.handle_write(B, NodeId(4));
        let w = dir.handle_write(B, NodeId(4));
        assert!(w.invalidate.is_empty());
        assert_eq!(w.source, DataSource::HomeMemory);
    }

    #[test]
    fn owner_reread_is_not_a_forward() {
        let mut dir = Directory::new();
        dir.handle_write(B, NodeId(4));
        let r = dir.handle_read(B, NodeId(4));
        assert_eq!(r.source, DataSource::HomeMemory);
        assert!(r.already_sharer);
        assert_eq!(dir.counters().3, 0, "no forward should be counted");
    }

    #[test]
    fn eviction_removes_sharer_and_degrades_state() {
        let mut dir = Directory::new();
        dir.handle_write(B, NodeId(2));
        dir.handle_eviction(B, NodeId(2));
        assert_eq!(dir.entry(B).state, DirectoryState::Uncached);
        assert_eq!(dir.entry(B).sharer_count(), 0);

        dir.handle_read(B, NodeId(0));
        dir.handle_read(B, NodeId(1));
        dir.handle_eviction(B, NodeId(0));
        let e = dir.entry(B);
        assert_eq!(e.state, DirectoryState::Shared);
        assert_eq!(e.sharer_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn purge_page_clears_every_block_of_that_page() {
        let mut dir = Directory::new();
        // Interned layout: page 0's blocks occupy indices 0..64, page 1's
        // occupy 64..128 (the per-page contiguity purge_page exploits).
        let page = PageIdx(0);
        let blocks: Vec<BlockIdx> = page.blocks().collect();
        dir.handle_read(blocks[0], NodeId(1));
        dir.handle_write(blocks[5], NodeId(2));
        // A block of a different page must be untouched.
        let other = PageIdx(1).blocks().next().unwrap();
        dir.handle_read(other, NodeId(6));

        let flushed = dir.purge_page(page);
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, blocks[0]);
        assert_eq!(flushed[1].0, blocks[5]);
        assert_eq!(dir.entry(blocks[0]).state, DirectoryState::Uncached);
        assert_eq!(dir.entry(blocks[5]).state, DirectoryState::Uncached);
        assert_eq!(dir.entry(other).state, DirectoryState::Shared);
        assert_eq!(dir.tracked_blocks(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut dir = Directory::new();
        dir.handle_read(B, NodeId(0));
        dir.handle_read(B, NodeId(1));
        dir.handle_write(B, NodeId(2));
        let (reads, writes, invals, _forwards) = dir.counters();
        assert_eq!(reads, 2);
        assert_eq!(writes, 1);
        assert_eq!(invals, 2);
    }

    #[test]
    fn block_index_geometry_matches_pages() {
        // The directory's layout assumption: BLOCKS_PER_PAGE consecutive
        // indices per page.
        assert_eq!(PageIdx(2).blocks().count(), BLOCKS_PER_PAGE as usize);
        assert_eq!(PageIdx(1).block(0), BlockIdx(BLOCKS_PER_PAGE as u32));
    }
}
