//! A stable min-heap event queue keyed by [`Cycles`].
//!
//! The cluster simulator keeps one logical "next event" per processor and
//! always advances the processor with the smallest local clock.  Ties are
//! broken by insertion order so that simulations are fully deterministic
//! regardless of heap internals.

use crate::cycles::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest time pops first,
        // and break ties by insertion sequence (earlier first).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the earliest pending event `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Drain every event in time order.
    pub fn drain_ordered(&mut self) -> Vec<(Cycles, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), "c");
        q.push(Cycles::new(10), "a");
        q.push(Cycles::new(20), "b");
        assert_eq!(q.pop(), Some((Cycles::new(10), "a")));
        assert_eq!(q.pop(), Some((Cycles::new(20), "b")));
        assert_eq!(q.pop(), Some((Cycles::new(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..16u32 {
            q.push(Cycles::new(5), i);
        }
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Cycles::new(42), ());
        q.push(Cycles::new(7), ());
        assert_eq!(q.peek_time(), Some(Cycles::new(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycles::new(42)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(Cycles::ZERO, 1);
        q.push(Cycles::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(10), 10);
        q.push(Cycles::new(5), 5);
        assert_eq!(q.pop(), Some((Cycles::new(5), 5)));
        q.push(Cycles::new(1), 1);
        q.push(Cycles::new(20), 20);
        assert_eq!(q.pop(), Some((Cycles::new(1), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(10), 10)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 20)));
    }
}
