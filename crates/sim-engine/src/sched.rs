//! The processor scheduler: a binary min-heap over `(clock, proc id)`.
//!
//! The cluster simulator always advances the processor with the smallest
//! local clock.  With one pending wakeup per processor, a heap makes that
//! choice O(log P) per step instead of the O(P) linear scan a flat list
//! costs — negligible at the paper's 32 processors, decisive for the
//! scaled-up clusters the harness targets.
//!
//! Ties on the clock are broken by **proc id** (smaller first).  Unlike the
//! insertion-order tie-break of [`crate::event::EventQueue`], the pop order
//! of simultaneous processors is a pure function of the schedule contents —
//! independent of the order events happened to be pushed — which makes the
//! simulator's interleaving trivially reproducible from a state dump.

use crate::cycles::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-heap of `(wakeup time, proc id)` pairs.
#[derive(Debug, Clone, Default)]
pub struct ProcScheduler {
    heap: BinaryHeap<Reverse<(Cycles, u16)>>,
}

impl ProcScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scheduler with capacity for `procs` pending wakeups.
    pub fn with_capacity(procs: usize) -> Self {
        ProcScheduler {
            heap: BinaryHeap::with_capacity(procs),
        }
    }

    /// Number of pending wakeups.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no wakeups are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `proc` to run at `time`.  O(log P).
    #[inline]
    pub fn push(&mut self, time: Cycles, proc: u16) {
        self.heap.push(Reverse((time, proc)));
    }

    /// The earliest pending wakeup time, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// The earliest pending `(time, proc)` wakeup without removing it —
    /// exactly what [`ProcScheduler::pop`] would return.  O(1).
    ///
    /// This is what makes the simulator's run-while-minimum fast path
    /// possible: a processor whose advanced clock still orders before this
    /// pair would be popped straight back, so the push/pop round trip can
    /// be skipped without perturbing the interleaving.
    #[inline]
    pub fn peek(&self) -> Option<(Cycles, u16)> {
        self.heap.peek().map(|Reverse((t, p))| (*t, *p))
    }

    /// Remove and return the earliest `(time, proc)` wakeup; ties pop the
    /// smallest proc id first.  O(log P).
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycles, u16)> {
        self.heap.pop().map(|Reverse((t, p))| (t, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = ProcScheduler::with_capacity(4);
        s.push(Cycles::new(30), 0);
        s.push(Cycles::new(10), 1);
        s.push(Cycles::new(20), 2);
        assert_eq!(s.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(s.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(s.pop(), Some((Cycles::new(30), 0)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn equal_clocks_pop_in_proc_id_order_regardless_of_push_order() {
        // Push in descending, ascending and shuffled id order: the pop
        // order must always be by proc id.
        let orders: [&[u16]; 3] = [&[3, 2, 1, 0], &[0, 1, 2, 3], &[2, 0, 3, 1]];
        for order in orders {
            let mut s = ProcScheduler::new();
            for &p in order {
                s.push(Cycles::new(5), p);
            }
            let popped: Vec<u16> = std::iter::from_fn(|| s.pop()).map(|(_, p)| p).collect();
            assert_eq!(popped, vec![0, 1, 2, 3], "push order {order:?}");
        }
    }

    #[test]
    fn time_dominates_proc_id() {
        let mut s = ProcScheduler::new();
        s.push(Cycles::new(7), 0);
        s.push(Cycles::new(5), 9);
        assert_eq!(s.pop(), Some((Cycles::new(5), 9)));
        assert_eq!(s.pop(), Some((Cycles::new(7), 0)));
    }

    #[test]
    fn peek_len_and_interleaving() {
        let mut s = ProcScheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        s.push(Cycles::new(42), 1);
        s.push(Cycles::new(7), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek_time(), Some(Cycles::new(7)));
        assert_eq!(s.pop(), Some((Cycles::new(7), 2)));
        s.push(Cycles::new(1), 3);
        assert_eq!(s.pop(), Some((Cycles::new(1), 3)));
        assert_eq!(s.pop(), Some((Cycles::new(42), 1)));
        assert!(s.is_empty());
    }
}
