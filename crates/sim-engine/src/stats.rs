//! Online summary statistics and fixed-bucket histograms.
//!
//! The experiment harness aggregates per-node miss counts, page-operation
//! counts and latencies across runs.  `OnlineStats` uses Welford's algorithm
//! so variance stays numerically stable over long simulations.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        // dsm-lint: allow(float-order, Welford update on a single-owner accumulator; per-proc stats merge in fixed proc-id order)
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with uniformly sized buckets over `[0, bucket_width * buckets)`.
/// Values beyond the last bucket are collected in an overflow bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record a value.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets (excluding overflow).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Count of values beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile: the upper edge of the bucket containing the
    /// `q`-quantile (q in \[0,1\]). Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_matches_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        a.push(5.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), before_mean);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before_mean);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4); // [0,10) [10,20) [20,30) [30,40)
        for v in [0, 5, 9, 10, 25, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(Histogram::new(1, 4).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = Histogram::new(0, 4);
    }
}
