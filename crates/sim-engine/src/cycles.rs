//! Processor-cycle time values.
//!
//! All latencies in the reproduced paper are expressed in 600 MHz processor
//! cycles (Table 3).  `Cycles` is a thin newtype over `u64` with saturating
//! arithmetic so that accumulating billions of cycles over a long simulation
//! can never wrap silently.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A duration or instant measured in processor clock cycles.
///
/// The paper models 600 MHz dual-issue processors; one cycle is therefore
/// 1/600 µs.  [`Cycles::as_micros`] performs that conversion for reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// Largest representable value; used as "never" / sentinel.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Processor clock frequency assumed by the paper (600 MHz).
    pub const CLOCK_MHZ: u64 = 600;

    /// Construct from a raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Convert to microseconds at the paper's 600 MHz clock.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / Self::CLOCK_MHZ as f64
    }

    /// Construct from microseconds at the paper's 600 MHz clock.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Cycles((us * Self::CLOCK_MHZ as f64).round() as u64)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// `true` if this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |acc, c| acc + c)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    #[inline]
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(18);
        assert_eq!(a + b, Cycles::new(118));
        assert_eq!(a - b, Cycles::new(82));
        assert_eq!(b - a, Cycles::ZERO, "subtraction saturates at zero");
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let max = Cycles::MAX;
        assert_eq!(max + Cycles::new(1), Cycles::MAX);
        assert_eq!(max * 2, Cycles::MAX);
        assert_eq!(Cycles::ZERO - Cycles::new(5), Cycles::ZERO);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Cycles::new(10);
        t += Cycles::new(5);
        assert_eq!(t, Cycles::new(15));
        t -= Cycles::new(20);
        assert_eq!(t, Cycles::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Cycles::new(7);
        let b = Cycles::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn microsecond_conversion_matches_600mhz_clock() {
        // Table 3: a 3000-cycle soft trap is 5 us at 600 MHz.
        assert!((Cycles::new(3000).as_micros() - 5.0).abs() < 1e-9);
        assert_eq!(Cycles::from_micros(5.0), Cycles::new(3000));
        // 50 us slow soft trap = 30000 cycles.
        assert_eq!(Cycles::from_micros(50.0), Cycles::new(30000));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = [1u64, 2, 3, 4].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Cycles::new(1) < Cycles::new(2));
        assert_eq!(format!("{}", Cycles::new(42)), "42");
        assert_eq!(format!("{:?}", Cycles::new(42)), "42cy");
    }
}
