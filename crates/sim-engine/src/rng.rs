//! Small deterministic pseudo-random number generators.
//!
//! The workload generators need reproducible randomness (particle positions,
//! sort keys, ray directions) and the simulator itself occasionally needs an
//! unbiased tie-breaker.  We provide SplitMix64 (for seeding and cheap
//! streams) and xoshiro256** (for higher-quality long streams) so that the
//! core simulation stack does not depend on the `rand` crate; the workload
//! crate layers `rand` on top where convenient.

/// SplitMix64: tiny, fast, passes BigCrush when used as a seeder.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation workloads; the slight modulo bias of widening multiply
        // is negligible for bounds far below 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next double uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256**: general-purpose 256-bit-state generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next value uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next double uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256::new(7);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_reasonably_uniform() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            buckets[(x >> 61) as usize] += 1;
        }
        for &count in &buckets {
            // Each of the 8 top-3-bit buckets should get roughly 1000 hits.
            assert!((600..1400).contains(&count), "bucket count {count}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_of_short_slices_is_noop_safe() {
        let mut rng = Xoshiro256::new(5);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
