//! Discrete-time simulation primitives shared by every crate in the
//! `dsm-repro` workspace.
//!
//! The workspace reproduces the simulation study of Lai & Falsafi
//! (SPAA 2000), which compares page migration/replication against
//! fine-grain memory caching (R-NUMA) on a cluster of SMP nodes.  All the
//! higher-level crates (node model, DSM protocol, the systems under study)
//! express timing in terms of the small vocabulary defined here:
//!
//! * [`Cycles`] — processor clock cycles, the unit of every cost in the
//!   paper's Table 3.
//! * [`Resource`] — a FIFO-served shared resource (memory bus, network
//!   interface) that adds queueing delay when contended.
//! * [`EventQueue`] — a stable min-heap for general timestamped payloads
//!   (ties break by insertion order).
//! * [`ProcScheduler`] — the cluster simulator's O(log P) processor
//!   scheduler: a min-heap over `(clock, proc id)` with a deterministic
//!   proc-id tie-break.
//! * [`rng::SplitMix64`] / [`rng::Xoshiro256`] — small deterministic PRNGs
//!   so that every simulation is exactly reproducible from a seed.
//! * [`stats`] — online summary statistics and histograms used by the
//!   experiment harness.

pub mod cycles;
pub mod event;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod stats;

pub use cycles::Cycles;
pub use event::EventQueue;
pub use resource::{Resource, ResourceStats};
pub use rng::{SplitMix64, Xoshiro256};
pub use sched::ProcScheduler;
pub use shard::{ClockWindow, Scheduler, ShardedScheduler};
pub use stats::{Histogram, OnlineStats};
