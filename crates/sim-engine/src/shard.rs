//! Shard-structured scheduling: the [`Scheduler`] abstraction and the
//! [`ShardedScheduler`] that splits one simulation's wakeups across
//! per-shard [`ProcScheduler`]s with deterministic cross-shard routing.
//!
//! # Why a sharded scheduler can be bit-exact
//!
//! The cluster simulator's interleaving is entirely determined by which
//! `(clock, proc)` pair pops next.  [`ProcScheduler`]'s tie-break (smaller
//! proc id first on equal clocks) makes that pop order a *pure function of
//! the schedule contents*, independent of push order.  `ShardedScheduler`
//! exploits exactly that property: wakeups are partitioned by the owning
//! shard (one [`ProcScheduler`] per shard), a wakeup scheduled from one
//! shard for a processor of another travels through a per-shard-pair
//! queue, and every queue is drained into the owning shard's heap before
//! any pop or peek decision.  After a drain the *multiset* of pending
//! wakeups equals what one big heap would hold, each shard's head is its
//! minimum, so the global minimum over shard heads — compared as
//! `(clock, proc id)`, the same total order — is the pair the single heap
//! would pop.  Queue arrival order is irrelevant by the pure-function
//! property, so the pop sequence is bit-identical to the serial scheduler
//! no matter how cross-shard messages interleave.
//!
//! # The conservative clock window
//!
//! [`ShardedScheduler::window`] exposes the classic conservative-parallel
//! horizon: the active shard may keep running while its local head orders
//! before the earliest head of any *other* shard, because no cross-shard
//! message can arrive timestamped earlier than its sender's clock (the
//! protocol applies remote effects at the issuing processor's clock — zero
//! lookahead).  The simulator uses the window to decide when a shard
//! hand-off (a barrier crossing in a threaded run) is required; with zero
//! lookahead that is every time the global minimum changes shards, which
//! is why the deterministic split — not speculative shard concurrency —
//! is the load-bearing design here (see ROADMAP's zero-lookahead note).

use crate::cycles::Cycles;
use crate::sched::ProcScheduler;
use std::collections::VecDeque;

/// The scheduling interface the simulator's run loop drives: push wakeups,
/// pop the global minimum, peek at it.  `peek` takes `&mut self` because a
/// sharded implementation must drain cross-shard queues before it can
/// answer.
pub trait Scheduler {
    /// Schedule `proc` to run at `time`.
    fn push(&mut self, time: Cycles, proc: u16);
    /// Remove and return the earliest `(time, proc)` wakeup; ties pop the
    /// smallest proc id first.
    fn pop(&mut self) -> Option<(Cycles, u16)>;
    /// What [`Scheduler::pop`] would return, without removing it.
    ///
    /// **Batch-horizon contract**: the returned head is invariant until
    /// the next [`Scheduler::push`] — implementations have no external
    /// input channel (a sharded scheduler's cross-shard queues are fed
    /// only by its own `push`), so a run loop executing a batch of events
    /// for one processor may cache this value as its wakeup horizon for
    /// the whole batch, refreshing only after a push.  The batched
    /// simulator loop depends on this to compare each event's advanced
    /// clock against the horizon without a per-event peek.
    fn peek(&mut self) -> Option<(Cycles, u16)>;
    /// Number of pending wakeups.
    fn len(&self) -> usize;
    /// `true` if no wakeups are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Scheduler for ProcScheduler {
    #[inline]
    fn push(&mut self, time: Cycles, proc: u16) {
        ProcScheduler::push(self, time, proc);
    }
    #[inline]
    fn pop(&mut self) -> Option<(Cycles, u16)> {
        ProcScheduler::pop(self)
    }
    #[inline]
    fn peek(&mut self) -> Option<(Cycles, u16)> {
        ProcScheduler::peek(self)
    }
    #[inline]
    fn len(&self) -> usize {
        ProcScheduler::len(self)
    }
}

/// The conservative progress window of the shard that popped last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockWindow {
    /// The shard whose processor is currently running.
    pub shard: u16,
    /// That shard's earliest pending wakeup.
    pub local: Option<(Cycles, u16)>,
    /// The earliest pending wakeup of any *other* shard — the clock up to
    /// which the active shard could run without cross-shard input.
    pub horizon: Option<Cycles>,
}

/// A [`Scheduler`] split into per-shard [`ProcScheduler`]s joined by
/// per-shard-pair cross-shard queues.  Pop order is bit-identical to a
/// single `ProcScheduler` holding the same wakeups (see module docs).
#[derive(Debug, Clone)]
pub struct ShardedScheduler {
    /// `shard_of[proc]` = owning shard (home node's shard).
    shard_of: Vec<u16>,
    /// One deterministic heap per shard.
    shards: Vec<ProcScheduler>,
    /// Cross-shard wakeups in flight, indexed `[from * S + to]` — the
    /// message-queue structure a threaded run would ship over channels.
    cross: Vec<VecDeque<(Cycles, u16)>>,
    /// Wakeups parked in `cross` (so `len` stays O(S²)-free).
    in_flight: usize,
    /// The shard whose processor popped last; its pushes go straight to
    /// its own heap, pushes for other shards go through `cross`.
    active: u16,
    /// Cross-shard hand-offs so far: pops where the global minimum moved
    /// to a different shard (each would be a barrier crossing threaded).
    handoffs: u64,
}

impl ShardedScheduler {
    /// A scheduler over `shards` shards with the given proc→shard table
    /// (as produced by `ShardMap::proc_table()` upstream).
    ///
    /// # Panics
    /// Panics if `shards == 0` or any table entry is out of range.
    pub fn new(shard_of: Vec<u16>, shards: u16) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            shard_of.iter().all(|&s| s < shards),
            "proc table references shard >= {shards}"
        );
        let s = shards as usize;
        let procs = shard_of.len();
        ShardedScheduler {
            shard_of,
            shards: (0..s)
                .map(|_| ProcScheduler::with_capacity(procs / s + 1))
                .collect(),
            cross: (0..s * s).map(|_| VecDeque::new()).collect(),
            in_flight: 0,
            active: 0,
            handoffs: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.shards.len() as u16
    }

    /// Cross-shard hand-offs so far (global minimum changed shards).
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Deliver every in-flight cross-shard wakeup to its owning shard's
    /// heap.  Called before any pop/peek decision; arrival order cannot
    /// affect subsequent pops (heap order is content-pure).
    fn drain_cross(&mut self) {
        if self.in_flight == 0 {
            return;
        }
        let s = self.shards.len();
        for from in 0..s {
            for to in 0..s {
                let q = &mut self.cross[from * s + to];
                while let Some((t, p)) = q.pop_front() {
                    self.shards[to].push(t, p);
                }
            }
        }
        self.in_flight = 0;
    }

    /// The shard whose head orders first by `(clock, proc id)`.
    fn min_shard(&self) -> Option<u16> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|head| (head, i as u16)))
            .min()
            .map(|(_, i)| i)
    }

    /// The active shard's conservative progress window.
    pub fn window(&mut self) -> ClockWindow {
        self.drain_cross();
        let shard = self.active;
        ClockWindow {
            shard,
            local: self.shards[shard as usize].peek(),
            horizon: self
                .shards
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != shard as usize)
                .filter_map(|(_, h)| h.peek_time())
                .min(),
        }
    }
}

impl Scheduler for ShardedScheduler {
    #[inline]
    fn push(&mut self, time: Cycles, proc: u16) {
        let to = self.shard_of[proc as usize];
        if to == self.active {
            self.shards[to as usize].push(time, proc);
        } else {
            // A protocol message to another shard: park it in the pair
            // queue; it is delivered before the next scheduling decision.
            let s = self.shards.len();
            self.cross[self.active as usize * s + to as usize].push_back((time, proc));
            self.in_flight += 1;
        }
    }

    fn pop(&mut self) -> Option<(Cycles, u16)> {
        self.drain_cross();
        let shard = self.min_shard()?;
        if shard != self.active {
            self.handoffs += 1;
            self.active = shard;
        }
        self.shards[shard as usize].pop()
    }

    fn peek(&mut self) -> Option<(Cycles, u16)> {
        self.drain_cross();
        self.min_shard()
            .and_then(|s| self.shards[s as usize].peek())
    }

    fn len(&self) -> usize {
        self.in_flight + self.shards.iter().map(|h| h.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Balanced contiguous proc→shard table (mirrors `ShardMap` upstream).
    fn table(procs: usize, shards: u16) -> Vec<u16> {
        (0..procs)
            .map(|p| ((p * shards as usize + shards as usize - 1) / procs).min(shards as usize - 1))
            .map(|s| s as u16)
            .collect()
    }

    #[test]
    fn matches_a_single_heap_under_random_workloads() {
        // Drive a ShardedScheduler and a plain ProcScheduler with the same
        // random push/pop schedule: every pop must agree, at every shard
        // count, including pushes issued "from" whatever shard was active.
        for shards in [1u16, 2, 3, 4, 7] {
            let mut rng = SplitMix64::new(0xC0FFEE ^ shards as u64);
            let mut sharded = ShardedScheduler::new(table(16, shards), shards);
            let mut flat = ProcScheduler::new();
            for step in 0..5_000u64 {
                if !rng.next_u64().is_multiple_of(3) {
                    let t = Cycles::new(rng.next_u64() % 64);
                    let p = (rng.next_u64() % 16) as u16;
                    Scheduler::push(&mut sharded, t, p);
                    Scheduler::push(&mut flat, t, p);
                } else {
                    assert_eq!(
                        Scheduler::peek(&mut sharded),
                        Scheduler::peek(&mut flat),
                        "peek diverged at step {step} ({shards} shards)"
                    );
                    assert_eq!(
                        Scheduler::pop(&mut sharded),
                        Scheduler::pop(&mut flat),
                        "pop diverged at step {step} ({shards} shards)"
                    );
                }
                assert_eq!(Scheduler::len(&sharded), Scheduler::len(&flat));
            }
            while let Some(got) = Scheduler::pop(&mut sharded) {
                assert_eq!(Some(got), Scheduler::pop(&mut flat));
            }
            assert!(Scheduler::is_empty(&flat));
        }
    }

    #[test]
    fn cross_shard_pushes_are_delivered_before_any_decision() {
        // 4 procs, 2 shards: procs 0-1 on shard 0, procs 2-3 on shard 1.
        let mut s = ShardedScheduler::new(vec![0, 0, 1, 1], 2);
        // Active shard starts at 0; a push for shard 1 parks in flight...
        Scheduler::push(&mut s, Cycles::new(5), 3);
        assert_eq!(Scheduler::len(&s), 1);
        // ...but peek/pop must still see it (drained first).
        assert_eq!(Scheduler::peek(&mut s), Some((Cycles::new(5), 3)));
        assert_eq!(Scheduler::pop(&mut s), Some((Cycles::new(5), 3)));
        assert_eq!(s.handoffs(), 1, "minimum moved from shard 0 to shard 1");
        // Now shard 1 is active; a push for proc 0 crosses back.
        Scheduler::push(&mut s, Cycles::new(6), 0);
        Scheduler::push(&mut s, Cycles::new(6), 2);
        // Equal clocks: proc id breaks the tie across shards.
        assert_eq!(Scheduler::pop(&mut s), Some((Cycles::new(6), 0)));
        assert_eq!(s.handoffs(), 2);
        assert_eq!(Scheduler::pop(&mut s), Some((Cycles::new(6), 2)));
        assert_eq!(s.handoffs(), 3);
        assert_eq!(Scheduler::pop(&mut s), None);
    }

    #[test]
    fn window_reports_local_head_and_remote_horizon() {
        let mut s = ShardedScheduler::new(vec![0, 0, 1, 1], 2);
        Scheduler::push(&mut s, Cycles::new(10), 0);
        Scheduler::push(&mut s, Cycles::new(3), 2);
        Scheduler::push(&mut s, Cycles::new(8), 3);
        let w = s.window();
        assert_eq!(w.shard, 0);
        assert_eq!(w.local, Some((Cycles::new(10), 0)));
        assert_eq!(w.horizon, Some(Cycles::new(3)));
        // Popping hands off to shard 1; its window sees shard 0's head.
        assert_eq!(Scheduler::pop(&mut s), Some((Cycles::new(3), 2)));
        let w = s.window();
        assert_eq!(w.shard, 1);
        assert_eq!(w.local, Some((Cycles::new(8), 3)));
        assert_eq!(w.horizon, Some(Cycles::new(10)));
        // Drain shard 1: horizon-only window.
        assert_eq!(Scheduler::pop(&mut s), Some((Cycles::new(8), 3)));
        let w = s.window();
        assert_eq!(w.local, None);
        assert_eq!(w.horizon, Some(Cycles::new(10)));
    }

    #[test]
    fn single_shard_degenerates_to_the_plain_scheduler() {
        let mut s = ShardedScheduler::new(vec![0; 4], 1);
        for p in [2u16, 0, 3, 1] {
            Scheduler::push(&mut s, Cycles::new(9), p);
        }
        assert_eq!(s.window().horizon, None);
        let popped: Vec<u16> = std::iter::from_fn(|| Scheduler::pop(&mut s))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(popped, vec![0, 1, 2, 3]);
        assert_eq!(s.handoffs(), 0);
    }
}
